//! LINT4: cross-file structural coverage checks.
//!
//! Two invariants that no single-file scan can see:
//!
//! 1. **Sanitizer rule coverage** — every `RULE<n>` the dynamic
//!    sanitizer defines in `crates/analysis/src/report.rs` must be
//!    proven by ≥ 1 *adversarial* test (a hand-built trace that MUST be
//!    flagged) and ≥ 1 *clean-twin* test (the corrected trace that must
//!    pass) in `crates/analysis/tests/`. A rule without an adversarial
//!    test may silently never fire; one without a clean twin may flag
//!    everything.
//! 2. **Config-knob coverage** — every public field of the workspace's
//!    experiment-facing config structs (`InferenceConfig` in
//!    `crates/models/src/common.rs`, `ServeConfig` in
//!    `crates/serve/src/lib.rs`, `FleetConfig` in
//!    `crates/serve/src/fleet.rs`) must be exercised by at least one
//!    bench bin or ablation under `crates/bench/src/`, otherwise the
//!    knob is dead weight that no experiment prices.

use crate::model::Workspace;
use crate::report::Finding;
use crate::rules::LintRule;

/// Where the sanitizer's rule catalogue lives.
const SANITIZER_REPORT: &str = "crates/analysis/src/report.rs";
/// Where its adversarial/clean-twin tests live.
const SANITIZER_TESTS_DIR: &str = "crates/analysis/tests/";
/// Experiment-facing config structs whose knobs a bench must price:
/// `(defining file, struct name)`. A struct whose file is absent from
/// the tree is skipped (fixture trees carry only what they test).
const KNOB_CONFIGS: [(&str, &str); 3] = [
    ("crates/models/src/common.rs", "InferenceConfig"),
    ("crates/serve/src/lib.rs", "ServeConfig"),
    ("crates/serve/src/fleet.rs", "FleetConfig"),
];
/// Where bench bins and ablations live.
const BENCH_SRC_DIR: &str = "crates/bench/src/";

/// Test-name fragments marking an adversarial (must-flag) test.
const ADVERSARIAL_MARKERS: [&str; 2] = ["flagged", "panics"];
/// Test-name fragments marking a clean-twin (must-pass) test.
const CLEAN_MARKERS: [&str; 4] = ["clean", "passes", "legal", "heals"];

/// Runs both structural checks over the loaded workspace.
pub fn scan_workspace(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    scan_sanitizer_coverage(ws, &mut out);
    scan_knob_coverage(ws, &mut out);
    out
}

/// Check 1: every sanitizer rule has an adversarial and a clean twin.
fn scan_sanitizer_coverage(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(report) = ws.file(SANITIZER_REPORT) else {
        return; // Fixture trees without an analysis crate skip check 1.
    };
    // Rule ids are string literals `"RULE<n>"` in the catalogue; read
    // them from the *raw* text (the lexer blanks literals).
    let mut rule_nums: Vec<u32> = Vec::new();
    for at in find_all(&report.raw, "\"RULE") {
        let digits: String = report.raw[at + 5..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(n) = digits.parse::<u32>() {
            if !rule_nums.contains(&n) {
                rule_nums.push(n);
            }
        }
    }
    rule_nums.sort_unstable();

    // Test function names across the sanitizer's integration tests.
    let mut test_fns: Vec<String> = Vec::new();
    for f in &ws.files {
        if f.rel_path.starts_with(SANITIZER_TESTS_DIR) {
            test_fns.extend(f.lex.fns.iter().map(|(_, n)| n.clone()));
        }
    }

    for n in rule_nums {
        let prefix = format!("rule{n}_");
        let named: Vec<&String> = test_fns.iter().filter(|t| t.contains(&prefix)).collect();
        let has_adversarial = named
            .iter()
            .any(|t| ADVERSARIAL_MARKERS.iter().any(|m| t.contains(m)));
        let has_clean = named
            .iter()
            .any(|t| CLEAN_MARKERS.iter().any(|m| t.contains(m)));
        let line = line_of_pattern(&report.raw, &format!("\"RULE{n}\""));
        if !has_adversarial {
            out.push(coverage_finding(
                report.rel_path.clone(),
                line,
                format!(
                    "sanitizer RULE{n} has no adversarial test (no \
                     `rule{n}_*` test whose name marks it as flagged) under \
                     {SANITIZER_TESTS_DIR}"
                ),
                format!("RULE{n} adversarial coverage"),
            ));
        }
        if !has_clean {
            out.push(coverage_finding(
                report.rel_path.clone(),
                line,
                format!(
                    "sanitizer RULE{n} has no clean-twin test (no `rule{n}_*` \
                     test whose name marks it as clean/passing) under \
                     {SANITIZER_TESTS_DIR}"
                ),
                format!("RULE{n} clean-twin coverage"),
            ));
        }
    }
}

/// Check 2: every knob of every [`KNOB_CONFIGS`] struct is exercised
/// by a bench.
fn scan_knob_coverage(ws: &Workspace, out: &mut Vec<Finding>) {
    // One concatenated haystack over all bench sources is enough: we
    // only ask "is the knob mentioned anywhere", not where.
    let mut bench_code = String::new();
    for f in &ws.files {
        if f.rel_path.starts_with(BENCH_SRC_DIR) {
            bench_code.push_str(&f.lex.cleaned);
            bench_code.push('\n');
        }
    }
    for (file, name) in KNOB_CONFIGS {
        let Some(config) = ws.file(file) else {
            continue; // Fixture trees carry only the configs they test.
        };
        for (line, field) in config_fields(&config.lex.cleaned, name) {
            let exercised = word_present(&bench_code, &format!("with_{field}"))
                || word_present(&bench_code, &field)
                || builder_fns(config, &field)
                    .iter()
                    .any(|b| word_present(&bench_code, b));
            if !exercised {
                out.push(coverage_finding(
                    config.rel_path.clone(),
                    line,
                    format!(
                        "{name} knob `{field}` is exercised by no bench \
                         bin or ablation under {BENCH_SRC_DIR}"
                    ),
                    format!("{name}::{field}"),
                ));
            }
        }
    }
}

fn coverage_finding(file: String, line: usize, message: String, excerpt: String) -> Finding {
    Finding {
        rule: LintRule::StructuralCoverage,
        file,
        line,
        function: None,
        excerpt,
        message,
        suggestion: LintRule::StructuralCoverage.suggestion(),
    }
}

/// Builder-method aliases for a config field: every fn in the config
/// file whose body assigns `self.<field> =` (e.g. `with_neighbors` sets
/// `n_neighbors`). A bench exercising the builder exercises the knob.
fn builder_fns(config: &crate::model::SourceFile, field: &str) -> Vec<String> {
    let assign = format!("self.{field} ");
    let mut fns = Vec::new();
    for at in find_all(&config.lex.cleaned, &assign) {
        let rest = config.lex.cleaned[at + assign.len()..].trim_start();
        if !rest.starts_with('=') || rest.starts_with("==") {
            continue;
        }
        if let Some(name) = config.lex.enclosing_fn(line_of(&config.lex.cleaned, at)) {
            if !fns.iter().any(|f| f == name) {
                fns.push(name.to_string());
            }
        }
    }
    fns
}

/// Public field `(line, name)` pairs of `pub struct <name> { … }`.
fn config_fields(cleaned: &str, name: &str) -> Vec<(usize, String)> {
    let decl = format!("pub struct {name}");
    let Some(at) = cleaned.find(&decl) else {
        return Vec::new();
    };
    let Some(open_rel) = cleaned[at..].find('{') else {
        return Vec::new();
    };
    let open = at + open_rel;
    let mut depth = 0usize;
    let mut end = open;
    for (i, b) in cleaned.as_bytes()[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &cleaned[open + 1..end];
    let mut fields = Vec::new();
    let mut offset = 0usize;
    for seg in body.split(',') {
        // `pub <ident>: <ty>` — attributes/docs are already blanked.
        if let Some(p) = seg.find("pub ") {
            let rest = &seg[p + 4..];
            if let Some(colon) = rest.find(':') {
                let ident = rest[..colon].trim();
                if !ident.is_empty() && ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    let field_at = open + 1 + offset + p;
                    fields.push((line_of(cleaned, field_at), ident.to_string()));
                }
            }
        }
        offset += seg.len() + 1;
    }
    fields
}

/// All occurrences of `pattern` (no boundary requirement).
fn find_all(haystack: &str, pattern: &str) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut from = 0usize;
    while let Some(p) = haystack[from..].find(pattern) {
        offs.push(from + p);
        from += p + pattern.len().max(1);
    }
    offs
}

/// Whether `word` appears with identifier boundaries on both sides.
fn word_present(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(p) = haystack[from..].find(word) {
        let at = from + p;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len().max(1);
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// 1-based line of the first occurrence of `pattern` (1 if absent).
fn line_of_pattern(s: &str, pattern: &str) -> usize {
    s.find(pattern).map_or(1, |at| line_of(s, at))
}

/// 1-based line number of byte offset `at`.
fn line_of(s: &str, at: usize) -> usize {
    1 + s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;
    use std::path::PathBuf;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("/synthetic"),
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::from_source(p, s.to_string()))
                .collect(),
        }
    }

    const REPORT_TWO_RULES: &str = r#"
        pub fn id(self) -> &'static str {
            match self {
                R::A => "RULE1",
                R::B => "RULE2",
            }
        }
    "#;

    #[test]
    fn missing_adversarial_or_clean_twin_is_flagged() {
        let tests = "#[test]\nfn rule1_bad_is_flagged() {}\n\
                     #[test]\nfn rule1_clean_twin_passes() {}\n\
                     #[test]\nfn rule2_bad_is_flagged() {}\n";
        let w = ws(vec![
            ("crates/analysis/src/report.rs", REPORT_TWO_RULES),
            ("crates/analysis/tests/adversarial.rs", tests),
        ]);
        let findings = scan_workspace(&w);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("RULE2"));
        assert!(findings[0].message.contains("clean-twin"));
    }

    #[test]
    fn full_coverage_passes() {
        let tests = "#[test]\nfn rule1_bad_is_flagged() {}\n\
                     #[test]\nfn rule1_clean_twin_passes() {}\n\
                     #[test]\nfn rule2_overlap_is_legal() {}\n\
                     #[test]\nfn rule2_bad_is_flagged() {}\n";
        let w = ws(vec![
            ("crates/analysis/src/report.rs", REPORT_TWO_RULES),
            ("crates/analysis/tests/adversarial.rs", tests),
        ]);
        assert!(scan_workspace(&w).is_empty());
    }

    #[test]
    fn unexercised_config_knob_is_flagged() {
        let config = "pub struct InferenceConfig {\n\
                      pub batch_size: usize,\n\
                      pub dead_knob: bool,\n\
                      }\n";
        let bench = "fn main() { let c = InferenceConfig::default().with_batch_size(8); }\n";
        let w = ws(vec![
            ("crates/models/src/common.rs", config),
            ("crates/bench/src/bin/sweep.rs", bench),
        ]);
        let findings = scan_workspace(&w);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("dead_knob"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn builder_alias_counts_as_exercised() {
        // The builder name (`with_neighbors`) differs from the field
        // (`n_neighbors`); the assignment inside it links the two.
        let config = "pub struct InferenceConfig { pub n_neighbors: usize }\n\
                      impl InferenceConfig {\n\
                      pub fn with_neighbors(mut self, n: usize) -> Self {\n\
                      self.n_neighbors = n; self } }\n";
        let bench = "fn main() { let c = InferenceConfig::default().with_neighbors(20); }\n";
        let w = ws(vec![
            ("crates/models/src/common.rs", config),
            ("crates/bench/src/bin/sweep.rs", bench),
        ]);
        assert!(scan_workspace(&w).is_empty(), "{:#?}", scan_workspace(&w));
    }

    #[test]
    fn bare_field_mention_counts_as_exercised() {
        let config = "pub struct InferenceConfig { pub shards: usize }\n";
        let bench = "fn main() { let mut c = InferenceConfig::default(); c.shards = 4; }\n";
        let w = ws(vec![
            ("crates/models/src/common.rs", config),
            ("crates/bench/src/bin/sweep.rs", bench),
        ]);
        assert!(scan_workspace(&w).is_empty());
    }

    #[test]
    fn unexercised_serve_config_knob_is_flagged() {
        let config = "pub struct ServeConfig {\n\
                      pub queue_bound: usize,\n\
                      pub ghost_knob: bool,\n\
                      }\n";
        let bench = "fn main() { let c = ServeConfig { queue_bound: 8 }; }\n";
        let w = ws(vec![
            ("crates/serve/src/lib.rs", config),
            ("crates/bench/src/bin/sweep.rs", bench),
        ]);
        let findings = scan_workspace(&w);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("ServeConfig"));
        assert!(findings[0].message.contains("ghost_knob"));
    }

    #[test]
    fn fleet_config_knobs_are_checked_independently_of_serve() {
        // Both serve-crate configs are scanned; a bench covering one
        // does not excuse a hole in the other.
        let serve = "pub struct ServeConfig { pub seed: u64 }\n";
        let fleet = "pub struct FleetConfig {\n\
                     pub policy: usize,\n\
                     pub orphan_knob: u64,\n\
                     }\n";
        let bench = "fn main() { let s = 1; let seed = s; let policy = 0; }\n";
        let w = ws(vec![
            ("crates/serve/src/lib.rs", serve),
            ("crates/serve/src/fleet.rs", fleet),
            ("crates/bench/src/bin/sweep.rs", bench),
        ]);
        let findings = scan_workspace(&w);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("FleetConfig"));
        assert!(findings[0].message.contains("orphan_knob"));
        assert_eq!(findings[0].line, 3);
    }
}
