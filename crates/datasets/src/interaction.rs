//! JODIE-format bipartite interaction streams: Wikipedia, Reddit, LastFM.
//!
//! Users occupy node ids `0..n_users`; items (pages, subreddits, songs)
//! occupy `n_users..n_users + n_items`. Item popularity and user activity
//! are both power-law distributed; inter-event gaps are exponential-ish.

use dgnn_graph::{EventStream, TemporalEvent};
use dgnn_tensor::{Initializer, TensorRng};

use crate::power_law::PowerLawSampler;
use crate::scale::Scale;
use crate::types::TemporalDataset;

/// Shape parameters of a bipartite interaction dataset.
struct BipartiteConfig {
    name: &'static str,
    full_users: usize,
    full_items: usize,
    full_events: usize,
    edge_dim: usize,
    node_dim: usize,
    /// Popularity skew (higher = heavier head).
    item_alpha: f64,
    user_alpha: f64,
}

fn generate(cfg: &BipartiteConfig, scale: Scale, seed: u64) -> TemporalDataset {
    let n_users = scale.apply(cfg.full_users, 16);
    let n_items = scale.apply(cfg.full_items, 8);
    let n_events = scale.apply(cfg.full_events, 256);
    let n_nodes = n_users + n_items;

    let mut rng = TensorRng::seed(seed);
    let items = PowerLawSampler::new(n_items, cfg.item_alpha);
    let users = PowerLawSampler::new(n_users, cfg.user_alpha);

    let mut t = 0.0f64;
    let events: Vec<TemporalEvent> = (0..n_events)
        .map(|i| {
            t += rng.uniform_f64(0.05, 2.0);
            TemporalEvent {
                src: users.sample(&mut rng),
                dst: n_users + items.sample(&mut rng),
                time: t,
                feature_idx: i,
            }
        })
        .collect();
    let stream = EventStream::new(n_nodes, events).expect("generated events are sorted");

    let mut trng = TensorRng::seed(seed ^ 0x9e3779b97f4a7c15);
    TemporalDataset {
        name: cfg.name,
        stream,
        node_features: trng.init(&[n_nodes, cfg.node_dim], Initializer::Normal(1.0)),
        edge_features: trng.init(&[n_events, cfg.edge_dim], Initializer::Normal(1.0)),
    }
}

/// Wikipedia edit stream (JODIE): ~8.2k editors, 1k pages, 157k edits,
/// 172-dimensional LIWC edge features.
pub fn wikipedia(scale: Scale, seed: u64) -> TemporalDataset {
    generate(
        &BipartiteConfig {
            name: "wikipedia",
            full_users: 8_227,
            full_items: 1_000,
            full_events: 157_474,
            edge_dim: 172,
            node_dim: 172,
            item_alpha: 1.1,
            user_alpha: 1.3,
        },
        scale,
        seed,
    )
}

/// Reddit post stream (JODIE): ~10k users, 984 subreddits, 672k posts,
/// 172-dimensional edge features. Denser per-window than Wikipedia —
/// the property behind EvolveGCN's larger Reddit memcpy share (Fig 7i/j).
pub fn reddit(scale: Scale, seed: u64) -> TemporalDataset {
    generate(
        &BipartiteConfig {
            name: "reddit",
            full_users: 10_000,
            full_items: 984,
            full_events: 672_447,
            edge_dim: 172,
            node_dim: 172,
            item_alpha: 1.0,
            user_alpha: 1.1,
        },
        scale,
        seed,
    )
}

/// LastFM listening stream (JODIE): ~1k users, 1k songs, 1.29M plays,
/// featureless edges (dimension 2 placeholder as in the reference code).
pub fn lastfm(scale: Scale, seed: u64) -> TemporalDataset {
    generate(
        &BipartiteConfig {
            name: "lastfm",
            full_users: 980,
            full_items: 1_000,
            full_events: 1_293_103,
            edge_dim: 2,
            node_dim: 128,
            item_alpha: 1.2,
            user_alpha: 0.9,
        },
        scale,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikipedia_shape_matches_config() {
        let d = wikipedia(Scale::Tiny, 1);
        assert_eq!(d.name, "wikipedia");
        assert_eq!(d.edge_dim(), 172);
        assert_eq!(d.stream.len(), d.edge_features.dims()[0]);
        assert_eq!(d.stream.n_nodes(), d.node_features.dims()[0]);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = reddit(Scale::Tiny, 7);
        let b = reddit(Scale::Tiny, 7);
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.edge_features, b.edge_features);
    }

    #[test]
    fn different_seeds_differ() {
        let a = lastfm(Scale::Tiny, 1);
        let b = lastfm(Scale::Tiny, 2);
        assert_ne!(a.stream, b.stream);
    }

    #[test]
    fn events_are_bipartite() {
        let d = wikipedia(Scale::Tiny, 3);
        let n_users = Scale::Tiny.apply(8_227, 16);
        for e in d.stream.events() {
            assert!(e.src < n_users, "src must be a user");
            assert!(e.dst >= n_users, "dst must be an item");
        }
    }

    #[test]
    fn item_popularity_is_skewed() {
        let d = wikipedia(Scale::Small, 5);
        let n_users = Scale::Small.apply(8_227, 16);
        let n_items = Scale::Small.apply(1_000, 8);
        let mut counts = vec![0usize; n_items];
        for e in d.stream.events() {
            counts[e.dst - n_users] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = counts[..n_items / 10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(head as f64 > 0.4 * total as f64, "head {head} of {total}");
    }

    #[test]
    fn scales_order_event_counts() {
        let t = wikipedia(Scale::Tiny, 1).stream.len();
        let s = wikipedia(Scale::Small, 1).stream.len();
        assert!(s > 5 * t);
    }
}
