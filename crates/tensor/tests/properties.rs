//! Property-based tests over the tensor algebra.

use dgnn_tensor::{Initializer, Tensor, TensorRng};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(m, n, seed)| {
        TensorRng::seed(seed).init(&[m, n], Initializer::Uniform(2.0))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(t in small_matrix(8)) {
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, tt);
    }

    #[test]
    fn matmul_identity_left_and_right(t in small_matrix(8)) {
        let (m, n) = (t.dims()[0], t.dims()[1]);
        t.matmul(&Tensor::eye(n)).unwrap().assert_close(&t, 1e-4);
        Tensor::eye(m).matmul(&t).unwrap().assert_close(&t, 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(
        (m, k, n, s1, s2, s3) in (1usize..6, 1usize..6, 1usize..6, any::<u64>(), any::<u64>(), any::<u64>())
    ) {
        let a = TensorRng::seed(s1).init(&[m, k], Initializer::Uniform(1.0));
        let b = TensorRng::seed(s2).init(&[k, n], Initializer::Uniform(1.0));
        let c = TensorRng::seed(s3).init(&[k, n], Initializer::Uniform(1.0));
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        lhs.assert_close(&rhs, 1e-3);
    }

    #[test]
    fn transpose_reverses_matmul(
        (m, k, n, s1, s2) in (1usize..6, 1usize..6, 1usize..6, any::<u64>(), any::<u64>())
    ) {
        let a = TensorRng::seed(s1).init(&[m, k], Initializer::Uniform(1.0));
        let b = TensorRng::seed(s2).init(&[k, n], Initializer::Uniform(1.0));
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        lhs.assert_close(&rhs, 1e-4);
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_matrix(8)) {
        let p = t.softmax_rows().unwrap();
        let (m, n) = (p.dims()[0], p.dims()[1]);
        for i in 0..m {
            let mut row_sum = 0.0f32;
            for j in 0..n {
                let v = p.at(&[i, j]).unwrap();
                prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
                row_sum += v;
            }
            prop_assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_then_scatter_round_trips(t in small_matrix(8), seed in any::<u64>()) {
        let m = t.dims()[0];
        let mut rng = TensorRng::seed(seed);
        let k = rng.index(m) + 1;
        // Distinct indices so scatter exactly undoes gather.
        let mut idx: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            idx.swap(i, rng.index(i + 1));
        }
        idx.truncate(k);
        let g = t.gather_rows(&idx).unwrap();
        let back = t.scatter_rows(&idx, &g).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn concat_cols_preserves_rows(a in small_matrix(6), seed in any::<u64>()) {
        let m = a.dims()[0];
        let b = TensorRng::seed(seed).init(&[m, 3], Initializer::Uniform(1.0));
        let c = a.concat_cols(&b).unwrap();
        prop_assert_eq!(c.dims()[0], m);
        prop_assert_eq!(c.dims()[1], a.dims()[1] + 3);
        for i in 0..m {
            prop_assert_eq!(c.at(&[i, 0]).unwrap(), a.at(&[i, 0]).unwrap());
            prop_assert_eq!(
                c.at(&[i, a.dims()[1]]).unwrap(),
                b.at(&[i, 0]).unwrap()
            );
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(t in small_matrix(8)) {
        let r = t.relu();
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(r.relu(), r);
    }

    #[test]
    fn sigmoid_tanh_identity(t in small_matrix(6)) {
        // tanh(x) = 2·sigmoid(2x) − 1
        let lhs = t.tanh();
        let rhs = t.scale(2.0).sigmoid().scale(2.0).add_scalar(-1.0);
        lhs.assert_close(&rhs, 1e-5);
    }

    #[test]
    fn sum_rows_matches_total(t in small_matrix(8)) {
        let total: f32 = t.sum();
        let rowsum = t.sum_rows().unwrap().sum();
        prop_assert!((total - rowsum).abs() < 1e-3 * (1.0 + total.abs()));
    }
}
