//! Evaluates the paper's §5 optimization proposals (which the authors
//! left unevaluated) on the simulator:
//!
//! * Fig 10 — pipelined EvolveGCN (RNN of step t+1 overlaps GNN of t);
//! * §5.1.1 — overlap TGAT's CPU sampling with GPU compute;
//! * §5.2.2 — delta snapshot transfer under sliding-window similarity.
//!
//! Usage: `ablation_optimizations [--scale ...]`

use dgnn_bench::parse_opts;
use dgnn_datasets::{bitcoin_alpha, wikipedia};
use dgnn_models::optim::{
    delta_snapshot_evolvegcn, jodie_tbatch, overlapped_prep_evolvegcn, overlapped_sampling_tgat,
    pipelined_evolvegcn,
};
use dgnn_models::{
    EvolveGcn, EvolveGcnConfig, EvolveGcnVersion, InferenceConfig, Tgat, TgatConfig,
};
use dgnn_profile::TextTable;

fn main() {
    let opts = parse_opts();
    let mut t = TextTable::new(
        "Sec 5 — proposed optimizations, evaluated",
        &["optimization", "baseline (ms)", "optimized (ms)", "speedup"],
    );
    let fmt = |r: dgnn_models::optim::AblationResult| {
        vec![
            format!("{:.2}", r.baseline.as_millis_f64()),
            format!("{:.2}", r.optimized.as_millis_f64()),
            format!("{:.2}x", r.speedup()),
        ]
    };

    let egcn_cfg = InferenceConfig::default().with_max_units(12);
    let mut egcn = EvolveGcn::new(
        bitcoin_alpha(opts.scale, opts.seed),
        EvolveGcnConfig {
            hidden: 100,
            version: EvolveGcnVersion::O,
        },
        opts.seed,
    );
    let r = pipelined_evolvegcn(&mut egcn, &egcn_cfg).expect("pipelined run");
    let mut row = vec!["Fig 10: pipelined EvolveGCN (RNN || GNN)".to_string()];
    row.extend(fmt(r));
    t.row(&row);

    let mut egcn = EvolveGcn::new(
        bitcoin_alpha(opts.scale, opts.seed),
        EvolveGcnConfig {
            hidden: 100,
            version: EvolveGcnVersion::O,
        },
        opts.seed,
    );
    let r = overlapped_prep_evolvegcn(&mut egcn, &egcn_cfg).expect("prep overlap run");
    let mut row = vec!["5.1.1: overlap EvolveGCN prep+upload with compute".to_string()];
    row.extend(fmt(r));
    t.row(&row);

    let tgat_cfg = InferenceConfig::default()
        .with_batch_size(200)
        .with_max_units(4);
    let mut tgat = Tgat::new(
        wikipedia(opts.scale, opts.seed),
        TgatConfig::default(),
        opts.seed,
    );
    let r = overlapped_sampling_tgat(&mut tgat, &tgat_cfg).expect("overlap run");
    let mut row = vec!["5.1.1: overlap TGAT sampling with compute".to_string()];
    row.extend(fmt(r));
    t.row(&row);

    for similarity in [0.5, 0.9] {
        let mut egcn = EvolveGcn::new(
            bitcoin_alpha(opts.scale, opts.seed),
            EvolveGcnConfig {
                hidden: 100,
                version: EvolveGcnVersion::O,
            },
            opts.seed,
        );
        let r =
            delta_snapshot_evolvegcn(&mut egcn, &egcn_cfg, similarity).expect("delta-transfer run");
        let mut row = vec![format!(
            "5.2.2: delta snapshot transfer (similarity {similarity})"
        )];
        row.extend(fmt(r));
        t.row(&row);
    }

    let jodie_cfg = InferenceConfig::default()
        .with_batch_size(128)
        .with_max_units(2);
    let data = wikipedia(opts.scale, opts.seed);
    let r = jodie_tbatch(&data, &jodie_cfg, opts.seed).expect("jodie ablation");
    let mut row = vec!["3.3: JODIE t-batch vs per-event schedule".to_string()];
    row.extend(fmt(r));
    t.row(&row);

    print!("{}", t.render());
}
