//! Temporal neighbor sampling — the paper's workload-imbalance culprit.
//!
//! TGAT (and TGN) sample a fixed number of *past* neighbors for every
//! target node, honoring event time: only interactions strictly earlier
//! than the query time are eligible. The reference implementations keep a
//! per-node, time-sorted adjacency and use **bisection** plus index
//! sorting, which produces the irregular CPU memory traffic Section 4.2
//! blames for starving the GPU. Sampling here returns both the sample and
//! a [`SampleCost`] so the executor can charge that CPU time faithfully.

use dgnn_tensor::TensorRng;

use crate::{EventStream, NodeId};

/// One sampled temporal neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledNeighbor {
    /// Neighbor node id.
    pub node: NodeId,
    /// Time of the interaction that created the edge.
    pub time: f64,
    /// Edge-feature row of that interaction.
    pub feature_idx: usize,
}

/// Work performed by a sampling call, for host-cost pricing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleCost {
    /// Comparison/index operations (bisection steps, RNG draws, sorts).
    pub ops: u64,
    /// Bytes touched with irregular access (adjacency rows, gathers).
    pub irregular_bytes: u64,
}

impl SampleCost {
    /// Accumulates another cost.
    pub fn add(&mut self, other: SampleCost) {
        self.ops += other.ops;
        self.irregular_bytes += other.irregular_bytes;
    }
}

/// How neighbors are drawn from the eligible past.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// The `k` most recent interactions before the query time.
    MostRecent,
    /// `k` uniform draws (with replacement) from the eligible past —
    /// TGAT's `--uniform` flag.
    Uniform,
}

/// Per-node, time-sorted adjacency built from an event stream.
///
/// Each undirected occurrence is indexed on both endpoints, matching the
/// reference TGAT preprocessing.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalAdjacency {
    // Parallel arrays per node, sorted by time.
    neighbors: Vec<Vec<NodeId>>,
    times: Vec<Vec<f64>>,
    feature_idx: Vec<Vec<usize>>,
}

impl TemporalAdjacency {
    /// Builds the adjacency index from a stream.
    pub fn from_stream(stream: &EventStream) -> Self {
        let n = stream.n_nodes();
        let mut adj = TemporalAdjacency {
            neighbors: vec![Vec::new(); n],
            times: vec![Vec::new(); n],
            feature_idx: vec![Vec::new(); n],
        };
        for e in stream.events() {
            adj.neighbors[e.src].push(e.dst);
            adj.times[e.src].push(e.time);
            adj.feature_idx[e.src].push(e.feature_idx);
            adj.neighbors[e.dst].push(e.src);
            adj.times[e.dst].push(e.time);
            adj.feature_idx[e.dst].push(e.feature_idx);
        }
        // Events arrive time-sorted, so per-node lists are already sorted.
        adj
    }

    /// Number of nodes indexed.
    pub fn n_nodes(&self) -> usize {
        self.neighbors.len()
    }

    /// Total degree (interactions) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors[node].len()
    }

    /// Bisection: number of interactions of `node` strictly before `t`,
    /// together with the number of comparison steps taken.
    pub fn count_before(&self, node: NodeId, t: f64) -> (usize, u64) {
        let times = &self.times[node];
        let idx = times.partition_point(|&x| x < t);
        let steps = (times.len().max(1) as f64).log2().ceil() as u64 + 1;
        (idx, steps)
    }
}

/// Draws temporal neighbor samples and accounts their CPU cost.
#[derive(Debug)]
pub struct NeighborSampler {
    rng: TensorRng,
    strategy: SampleStrategy,
}

impl NeighborSampler {
    /// Creates a sampler with a fixed seed.
    pub fn new(strategy: SampleStrategy, seed: u64) -> Self {
        NeighborSampler {
            rng: TensorRng::seed(seed),
            strategy,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SampleStrategy {
        self.strategy
    }

    /// Samples up to `k` neighbors of `node` that interacted strictly
    /// before `t`. Returns fewer than `k` (possibly zero) when the
    /// eligible past is smaller — only for [`SampleStrategy::MostRecent`];
    /// uniform sampling draws with replacement and always returns `k`
    /// unless the past is empty.
    pub fn sample(
        &mut self,
        adj: &TemporalAdjacency,
        node: NodeId,
        t: f64,
        k: usize,
    ) -> (Vec<SampledNeighbor>, SampleCost) {
        let (eligible, bisect_steps) = adj.count_before(node, t);
        let mut cost = SampleCost {
            ops: bisect_steps,
            // The bisection touches log(d) scattered cache lines of 64 B.
            irregular_bytes: bisect_steps * 64,
        };
        if eligible == 0 {
            return (Vec::new(), cost);
        }
        let pick = |i: usize| SampledNeighbor {
            node: adj.neighbors[node][i],
            time: adj.times[node][i],
            feature_idx: adj.feature_idx[node][i],
        };
        let picked: Vec<SampledNeighbor> = match self.strategy {
            SampleStrategy::MostRecent => {
                let take = k.min(eligible);
                (eligible - take..eligible).map(pick).collect()
            }
            SampleStrategy::Uniform => {
                let mut idx: Vec<usize> = (0..k).map(|_| self.rng.index(eligible)).collect();
                // Reference implementation sorts sampled indices so the
                // gather walks forward — the "node index sorting" the
                // paper mentions.
                idx.sort_unstable();
                cost.ops += (k as f64 * (k.max(2) as f64).log2()) as u64;
                idx.into_iter().map(pick).collect()
            }
        };
        // Each picked neighbor gathers one adjacency record (~16 B) plus
        // one cache line of feature pointer indirection.
        cost.ops += picked.len() as u64;
        cost.irregular_bytes += picked.len() as u64 * 80;
        (picked, cost)
    }

    /// Recursive k-hop sampling: layer `l` samples `ks[l]` neighbors of
    /// every node sampled at layer `l-1`. Returns the flattened frontier
    /// per layer (layer 0 = the roots) and the accumulated cost.
    pub fn sample_khop(
        &mut self,
        adj: &TemporalAdjacency,
        roots: &[(NodeId, f64)],
        ks: &[usize],
    ) -> (Vec<Vec<SampledNeighbor>>, SampleCost) {
        let mut cost = SampleCost::default();
        let mut layers: Vec<Vec<SampledNeighbor>> = vec![roots
            .iter()
            .map(|&(node, time)| SampledNeighbor {
                node,
                time,
                feature_idx: usize::MAX,
            })
            .collect()];
        for &k in ks {
            let prev = layers.last().expect("at least the root layer");
            let mut next = Vec::with_capacity(prev.len() * k);
            for s in prev.clone() {
                let (picked, c) = self.sample(adj, s.node, s.time, k);
                cost.add(c);
                next.extend(picked);
            }
            layers.push(next);
        }
        (layers, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TemporalEvent;

    fn stream() -> EventStream {
        let events = vec![
            TemporalEvent {
                src: 0,
                dst: 1,
                time: 1.0,
                feature_idx: 0,
            },
            TemporalEvent {
                src: 0,
                dst: 2,
                time: 2.0,
                feature_idx: 1,
            },
            TemporalEvent {
                src: 1,
                dst: 2,
                time: 3.0,
                feature_idx: 2,
            },
            TemporalEvent {
                src: 0,
                dst: 3,
                time: 4.0,
                feature_idx: 3,
            },
        ];
        EventStream::new(4, events).unwrap()
    }

    #[test]
    fn adjacency_indexes_both_endpoints() {
        let adj = TemporalAdjacency::from_stream(&stream());
        assert_eq!(adj.degree(0), 3);
        assert_eq!(adj.degree(2), 2);
        assert_eq!(adj.degree(3), 1);
    }

    #[test]
    fn count_before_respects_strictness() {
        let adj = TemporalAdjacency::from_stream(&stream());
        assert_eq!(adj.count_before(0, 2.0).0, 1); // only t=1.0
        assert_eq!(adj.count_before(0, 4.5).0, 3);
        assert_eq!(adj.count_before(3, 4.0).0, 0);
    }

    #[test]
    fn most_recent_returns_latest_first_eligible() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let mut s = NeighborSampler::new(SampleStrategy::MostRecent, 1);
        let (picked, cost) = s.sample(&adj, 0, 4.5, 2);
        assert_eq!(picked.len(), 2);
        // The two most recent: times 2.0 and 4.0.
        assert_eq!(picked[0].time, 2.0);
        assert_eq!(picked[1].time, 4.0);
        assert!(cost.ops > 0 && cost.irregular_bytes > 0);
    }

    #[test]
    fn all_samples_precede_query_time() {
        let adj = TemporalAdjacency::from_stream(&stream());
        for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
            let mut s = NeighborSampler::new(strategy, 9);
            let (picked, _) = s.sample(&adj, 0, 3.0, 10);
            assert!(!picked.is_empty());
            assert!(picked.iter().all(|n| n.time < 3.0));
        }
    }

    #[test]
    fn empty_past_returns_nothing() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let mut s = NeighborSampler::new(SampleStrategy::Uniform, 2);
        let (picked, cost) = s.sample(&adj, 2, 2.0, 5);
        assert!(picked.is_empty());
        assert!(cost.ops > 0, "bisection still costs");
    }

    #[test]
    fn uniform_draws_with_replacement_fill_k() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let mut s = NeighborSampler::new(SampleStrategy::Uniform, 3);
        let (picked, _) = s.sample(&adj, 0, 4.5, 8);
        assert_eq!(picked.len(), 8);
    }

    #[test]
    fn khop_layers_expand() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let mut s = NeighborSampler::new(SampleStrategy::MostRecent, 4);
        let (layers, cost) = s.sample_khop(&adj, &[(0, 4.5)], &[2, 2]);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].len(), 1);
        assert_eq!(layers[1].len(), 2);
        assert!(layers[2].len() <= 4);
        assert!(cost.irregular_bytes > 0);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let run = |seed| {
            let mut s = NeighborSampler::new(SampleStrategy::Uniform, seed);
            s.sample(&adj, 0, 4.5, 6).0
        };
        assert_eq!(run(5), run(5));
    }
}
