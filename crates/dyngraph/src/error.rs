use std::fmt;

/// Error produced by graph construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referenced a node beyond the declared node count.
    NodeOutOfBounds {
        /// Offending node id.
        node: usize,
        /// Declared node count.
        n_nodes: usize,
    },
    /// Event timestamps were not non-decreasing.
    UnsortedEvents {
        /// Index of the first out-of-order event.
        index: usize,
    },
    /// A timestamp was NaN or infinite.
    InvalidTimestamp {
        /// Index of the offending event.
        index: usize,
    },
    /// The operation requires a non-empty input.
    EmptyInput {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A window parameter was zero or otherwise degenerate.
    InvalidWindow {
        /// Human-readable description.
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, n_nodes } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {n_nodes} nodes"
                )
            }
            GraphError::UnsortedEvents { index } => {
                write!(f, "event stream is not time-sorted at index {index}")
            }
            GraphError::InvalidTimestamp { index } => {
                write!(f, "event {index} has a non-finite timestamp")
            }
            GraphError::EmptyInput { op } => write!(f, "`{op}` requires a non-empty input"),
            GraphError::InvalidWindow { reason } => write!(f, "invalid window: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_informatively() {
        let e = GraphError::NodeOutOfBounds {
            node: 9,
            n_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
