//! Continuous-time dynamic graphs: timestamped interaction events.

use crate::{GraphError, NodeId, Result};

/// One timestamped interaction `(src, dst)` at time `time`, optionally
/// carrying an edge-feature row index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalEvent {
    /// Source node (e.g. the user in a bipartite interaction graph).
    pub src: NodeId,
    /// Destination node (e.g. the item).
    pub dst: NodeId,
    /// Event time in seconds since stream start.
    pub time: f64,
    /// Row into the stream's edge-feature matrix.
    pub feature_idx: usize,
}

/// A time-sorted stream of interaction events over `n_nodes` nodes —
/// the input representation of the continuous-time models (JODIE, TGN,
/// TGAT, DyRep, LDG).
#[derive(Debug, Clone, PartialEq)]
pub struct EventStream {
    n_nodes: usize,
    events: Vec<TemporalEvent>,
}

impl EventStream {
    /// Creates a stream after validating node bounds, timestamp finiteness
    /// and non-decreasing time order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`],
    /// [`GraphError::InvalidTimestamp`] or [`GraphError::UnsortedEvents`].
    pub fn new(n_nodes: usize, events: Vec<TemporalEvent>) -> Result<Self> {
        let mut prev = f64::NEG_INFINITY;
        for (i, e) in events.iter().enumerate() {
            if e.src >= n_nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: e.src,
                    n_nodes,
                });
            }
            if e.dst >= n_nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: e.dst,
                    n_nodes,
                });
            }
            if !e.time.is_finite() {
                return Err(GraphError::InvalidTimestamp { index: i });
            }
            if e.time < prev {
                return Err(GraphError::UnsortedEvents { index: i });
            }
            prev = e.time;
        }
        Ok(EventStream { n_nodes, events })
    }

    /// Number of nodes in the stream's node table.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// All events, time-sorted.
    pub fn events(&self) -> &[TemporalEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event (0 for an empty stream).
    pub fn end_time(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time)
    }

    /// Events whose time lies in `[t0, t1)`.
    pub fn events_in(&self, t0: f64, t1: f64) -> &[TemporalEvent] {
        let start = self.events.partition_point(|e| e.time < t0);
        let end = self.events.partition_point(|e| e.time < t1);
        &self.events[start..end]
    }

    /// Splits the stream into consecutive mini-batches of `batch_size`
    /// events (the continuous-time models' inference unit). The last
    /// batch may be short.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = &[TemporalEvent]> {
        assert!(batch_size > 0, "batch size must be positive");
        self.events.chunks(batch_size)
    }

    /// Approximate bytes of one event record when marshalled for a PCIe
    /// transfer (src, dst, time, feature index).
    pub const EVENT_BYTES: u64 = 24;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, time: f64) -> TemporalEvent {
        TemporalEvent {
            src,
            dst,
            time,
            feature_idx: 0,
        }
    }

    #[test]
    fn new_validates_order_and_bounds() {
        assert!(EventStream::new(3, vec![ev(0, 1, 1.0), ev(1, 2, 2.0)]).is_ok());
        assert!(matches!(
            EventStream::new(3, vec![ev(0, 1, 2.0), ev(1, 2, 1.0)]),
            Err(GraphError::UnsortedEvents { index: 1 })
        ));
        assert!(matches!(
            EventStream::new(2, vec![ev(0, 5, 1.0)]),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            EventStream::new(2, vec![ev(0, 1, f64::NAN)]),
            Err(GraphError::InvalidTimestamp { index: 0 })
        ));
    }

    #[test]
    fn events_in_window() {
        let s = EventStream::new(
            4,
            vec![ev(0, 1, 0.0), ev(1, 2, 1.0), ev(2, 3, 2.0), ev(3, 0, 3.0)],
        )
        .unwrap();
        let w = s.events_in(1.0, 3.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].time, 1.0);
        assert_eq!(w[1].time, 2.0);
        assert!(s.events_in(5.0, 6.0).is_empty());
    }

    #[test]
    fn batches_chunk_in_order() {
        let s = EventStream::new(
            4,
            (0..10).map(|i| ev(i % 4, (i + 1) % 4, i as f64)).collect(),
        )
        .unwrap();
        let sizes: Vec<usize> = s.batches(4).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn end_time_handles_empty() {
        let s = EventStream::new(2, vec![]).unwrap();
        assert_eq!(s.end_time(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        assert!(EventStream::new(2, vec![ev(0, 1, 1.0), ev(1, 0, 1.0)]).is_ok());
    }
}
