//! Criterion benchmarks of the simulator's own host-side performance:
//! the substrate operations every experiment leans on. These measure
//! real wall-clock (not simulated time), so regressions in the
//! reproduction infrastructure itself are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dgnn_datasets::{wikipedia, Scale};
use dgnn_device::{ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, TransferDir};
use dgnn_graph::{NeighborSampler, SampleStrategy, TBatcher, TemporalAdjacency};
use dgnn_tensor::{Initializer, TensorRng};

fn bench_tensor_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor");
    for &n in &[32usize, 128] {
        let a = TensorRng::seed(1).init(&[n, n], Initializer::Uniform(1.0));
        let b = TensorRng::seed(2).init(&[n, n], Initializer::Uniform(1.0));
        g.bench_function(format!("matmul_{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    let m = TensorRng::seed(3).init(&[256, 64], Initializer::Uniform(1.0));
    g.bench_function("softmax_rows_256x64", |bench| {
        bench.iter(|| black_box(m.softmax_rows().unwrap()))
    });
    g.bench_function("gather_rows_256", |bench| {
        let idx: Vec<usize> = (0..256).map(|i| (i * 7) % 256).collect();
        bench.iter(|| black_box(m.gather_rows(&idx).unwrap()))
    });
    g.finish();
}

fn bench_graph_substrate(c: &mut Criterion) {
    let data = wikipedia(Scale::Tiny, 1);
    let mut g = c.benchmark_group("graph");
    g.bench_function("temporal_adjacency_build", |bench| {
        bench.iter(|| black_box(TemporalAdjacency::from_stream(&data.stream)))
    });
    let adj = TemporalAdjacency::from_stream(&data.stream);
    let t_end = data.stream.end_time();
    g.bench_function("sample_khop_2x20", |bench| {
        bench.iter_batched(
            || NeighborSampler::new(SampleStrategy::Uniform, 7),
            |mut s| black_box(s.sample_khop(&adj, &[(0, t_end)], &[20, 20])),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("tbatch_build_full_stream", |bench| {
        bench.iter(|| black_box(TBatcher::new().build_stream(&data.stream)))
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.bench_function("launch_1000_kernels", |bench| {
        bench.iter(|| {
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            ex.ensure_context();
            for _ in 0..1_000 {
                ex.launch(KernelDesc::gemm("k", 64, 64, 64));
            }
            black_box(ex.now())
        })
    });
    g.bench_function("mixed_schedule_100_iterations", |bench| {
        bench.iter(|| {
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            for _ in 0..100 {
                ex.scope("iter", |ex| {
                    ex.host(HostWork::irregular("sample", 10_000, 4_096));
                    ex.transfer(TransferDir::H2D, 1 << 16);
                    ex.launch(KernelDesc::gemm("mm", 128, 64, 128));
                    ex.transfer(TransferDir::D2H, 1 << 12);
                });
            }
            black_box(ex.timeline().len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tensor_ops, bench_graph_substrate, bench_executor
}
criterion_main!(benches);
