//! Dataset scale control.

/// How large a generated dataset should be.
///
/// `Tiny` keeps unit tests and CI fast; `Small` is the default for the
/// experiment harness; `Full` approaches the real datasets' published
/// sizes (and the paper's runtimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// ~1% of real size; for tests.
    Tiny,
    /// ~10% of real size; default for experiments.
    #[default]
    Small,
    /// Real published size.
    Full,
}

impl Scale {
    /// Multiplier applied to event/snapshot counts.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.01,
            Scale::Small => 0.1,
            Scale::Full => 1.0,
        }
    }

    /// Scales a full-size count, keeping at least `min`.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "rounded scaled count fits usize"
    )]
    pub fn apply(self, full: usize, min: usize) -> usize {
        ((full as f64 * self.factor()).round() as usize).max(min)
    }

    /// Parses from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_scales_and_clamps() {
        assert_eq!(Scale::Tiny.apply(10_000, 50), 100);
        assert_eq!(Scale::Tiny.apply(100, 50), 50);
        assert_eq!(Scale::Full.apply(10_000, 50), 10_000);
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn default_is_small() {
        assert_eq!(Scale::default(), Scale::Small);
    }
}
