//! Layer normalization (ASTGNN's attention blocks).

use dgnn_device::{DeviceTensor, Dispatcher};
use dgnn_tensor::{OpDescriptor, Tensor, TensorError, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

/// Row-wise layer normalization with learned gain and bias.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    gain: Param,
    bias: Param,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over feature width `dim`.
    pub fn new(dim: usize, _rng: &mut TensorRng) -> Self {
        LayerNorm {
            gain: Param::new("gain", Tensor::ones(&[dim])),
            bias: Param::new("bias", Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalized feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Normalizes each row of `x: [m, dim]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` is not `[m, dim]`.
    pub fn forward(&self, dx: &mut Dispatcher, x: &DeviceTensor) -> Result<DeviceTensor> {
        if x.data().rank() != 2 || x.data().dims()[1] != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: x.data().dims().to_vec(),
                rhs: vec![0, self.dim],
            });
        }
        let (m, n) = (x.data().dims()[0], self.dim);
        dx.ensure_resident(x);
        let out = dx.fused(OpDescriptor::reduce("layer_norm", m, n), x.scale(), || {
            let mut out = vec![0.0f32; m * n];
            for i in 0..m {
                let row = &x.data().as_slice()[i * n..(i + 1) * n];
                let mean: f32 = row.iter().sum::<f32>() / n as f32;
                let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
                let inv = 1.0 / (var + self.eps).sqrt();
                for j in 0..n {
                    out[i * n + j] = (row[j] - mean) * inv * self.gain.value.as_slice()[j]
                        + self.bias.value.as_slice()[j];
                }
            }
            Tensor::from_vec(out, &[m, n])
        })?;
        Ok(dx.adopt(out, x.scale()))
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.gain, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, PlatformSpec};
    use dgnn_tensor::Initializer;

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    #[test]
    fn rows_become_zero_mean_unit_var() {
        let mut rng = TensorRng::seed(1);
        let ln = LayerNorm::new(8, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let x = DeviceTensor::host(TensorRng::seed(2).init(&[4, 8], Initializer::Normal(5.0)));
        let y = ln.forward(&mut dx, &x).unwrap();
        for i in 0..4 {
            let row = y.data().row(i).unwrap();
            let mean = row.mean().unwrap();
            let var = row.norm_sq() / 8.0 - mean * mean;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn constant_rows_are_stable() {
        let mut rng = TensorRng::seed(3);
        let ln = LayerNorm::new(4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let y = ln
            .forward(&mut dx, &DeviceTensor::host(Tensor::full(&[2, 4], 7.0)))
            .unwrap();
        assert!(y.data().all_finite());
        assert!(y.data().as_slice().iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn wrong_width_errors() {
        let mut rng = TensorRng::seed(4);
        let ln = LayerNorm::new(4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        assert!(ln
            .forward(&mut dx, &DeviceTensor::host(Tensor::zeros(&[2, 5])))
            .is_err());
    }
}
