//! Queue-driven pool autoscaling with explicit warm-up pricing.
//!
//! The autoscaler watches fleet-wide queue depth at every arrival and
//! decides to scale out (spawn a pool whose replicas each pay the full
//! context + model-init warm-up before serving their first request —
//! the paper's §4.4 cost, now a *scaling* penalty) or scale in (drain
//! the least-loaded pool and stop accruing its replica-seconds). The
//! decision function is pure: given the same virtual clock and queue
//! readings it always answers the same, so fleet runs replay
//! bit-identically.

use dgnn_device::DurationNs;

/// Autoscaler thresholds. All comparisons are against *per-pool
/// average* queue depth so the thresholds keep meaning as the fleet
/// grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Lower bound on routable pools (≥ 1). Scale-in never goes below.
    pub min_pools: usize,
    /// Upper bound on pools ever spawned concurrently.
    pub max_pools: usize,
    /// Scale out when queued requests exceed `scale_out_queue` per
    /// active pool.
    pub scale_out_queue: usize,
    /// Scale in when the load would still sit at or under
    /// `scale_in_queue` per pool with one pool fewer.
    pub scale_in_queue: usize,
    /// How long the low-load condition must hold before scaling in.
    /// Guards against draining a pool in the trough of a burst cycle.
    pub idle_window: DurationNs,
    /// Minimum gap between any two scale decisions. Lets a freshly
    /// spawned pool finish provisioning (and absorb queue) before the
    /// next reading can trigger again.
    pub cooldown: DurationNs,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_pools: 1,
            max_pools: 8,
            scale_out_queue: 8,
            scale_in_queue: 2,
            idle_window: DurationNs::from_millis(500),
            cooldown: DurationNs::from_millis(250),
        }
    }
}

/// Direction of a scale decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// Spawn one pool; its replicas pay provisioning warm-up.
    Out,
    /// Drain one pool; it serves its queue, then retires.
    In,
}

/// One scale decision, for the report's audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Virtual time of the decision.
    pub at: DurationNs,
    /// Direction.
    pub kind: ScaleKind,
    /// Routable pools after the decision took effect.
    pub pools_after: usize,
    /// Fleet-wide queued requests that triggered it.
    pub trigger_queued: usize,
}

/// Deterministic queue-depth autoscaler.
///
/// Call [`Autoscaler::decide`] at every arrival with the current
/// virtual time, total queued requests, and routable pool count; it
/// returns the action to take, if any, and records it.
///
/// ```
/// use dgnn_device::DurationNs;
/// use dgnn_serve::{Autoscaler, AutoscalerConfig, ScaleKind};
///
/// let cfg = AutoscalerConfig {
///     min_pools: 1,
///     max_pools: 4,
///     scale_out_queue: 4,
///     scale_in_queue: 1,
///     idle_window: DurationNs::from_millis(10),
///     cooldown: DurationNs::ZERO,
/// };
/// let mut scaler = Autoscaler::new(cfg);
/// // 9 queued on 2 pools = 4.5 per pool > 4: scale out.
/// let d = scaler.decide(DurationNs::from_millis(1), 9, 2);
/// assert_eq!(d, Some(ScaleKind::Out));
/// // Low load must persist for idle_window before scaling in.
/// assert_eq!(scaler.decide(DurationNs::from_millis(2), 0, 3), None);
/// let d = scaler.decide(DurationNs::from_millis(13), 0, 3);
/// assert_eq!(d, Some(ScaleKind::In));
/// ```
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    cooldown_until: DurationNs,
    low_since: Option<DurationNs>,
    events: Vec<ScaleEvent>,
}

impl Autoscaler {
    /// Builds an autoscaler.
    ///
    /// # Panics
    ///
    /// Panics when `min_pools` is zero or exceeds `max_pools`.
    #[must_use]
    pub fn new(cfg: AutoscalerConfig) -> Self {
        assert!(cfg.min_pools >= 1, "autoscaler needs min_pools >= 1");
        assert!(
            cfg.min_pools <= cfg.max_pools,
            "autoscaler needs min_pools <= max_pools"
        );
        Autoscaler {
            cfg,
            cooldown_until: DurationNs::ZERO,
            low_since: None,
            events: Vec::new(),
        }
    }

    /// The configured thresholds.
    #[must_use]
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Scale decisions taken so far, in virtual-time order.
    #[must_use]
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    /// Evaluates the thresholds at one arrival. `queued_total` counts
    /// requests waiting across all routable pools; `active_pools` is
    /// the routable pool count (draining pools excluded). Returns the
    /// action the fleet must apply, already recorded in [`events`].
    ///
    /// [`events`]: Autoscaler::events
    pub fn decide(
        &mut self,
        now: DurationNs,
        queued_total: usize,
        active_pools: usize,
    ) -> Option<ScaleKind> {
        // Scale out: queue pressure above threshold × pools.
        if queued_total > self.cfg.scale_out_queue * active_pools {
            self.low_since = None;
            if active_pools < self.cfg.max_pools && now >= self.cooldown_until {
                return Some(self.record(now, ScaleKind::Out, active_pools + 1, queued_total));
            }
            return None;
        }

        // Scale in: the remaining pools could absorb the load.
        let can_shrink = active_pools > self.cfg.min_pools
            && queued_total <= self.cfg.scale_in_queue * (active_pools - 1);
        if !can_shrink {
            self.low_since = None;
            return None;
        }
        let since = *self.low_since.get_or_insert(now);
        if now >= since + self.cfg.idle_window && now >= self.cooldown_until {
            self.low_since = None;
            return Some(self.record(now, ScaleKind::In, active_pools - 1, queued_total));
        }
        None
    }

    fn record(
        &mut self,
        at: DurationNs,
        kind: ScaleKind,
        pools_after: usize,
        trigger_queued: usize,
    ) -> ScaleKind {
        self.cooldown_until = at + self.cfg.cooldown;
        self.events.push(ScaleEvent {
            at,
            kind,
            pools_after,
            trigger_queued,
        });
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscalerConfig {
        AutoscalerConfig {
            min_pools: 1,
            max_pools: 4,
            scale_out_queue: 4,
            scale_in_queue: 1,
            idle_window: DurationNs::from_millis(10),
            cooldown: DurationNs::from_millis(5),
        }
    }

    fn ms(v: u64) -> DurationNs {
        DurationNs::from_millis(v)
    }

    #[test]
    fn scales_out_under_queue_pressure() {
        let mut s = Autoscaler::new(cfg());
        assert_eq!(s.decide(ms(1), 9, 2), Some(ScaleKind::Out));
        let ev = s.events()[0];
        assert_eq!(ev.kind, ScaleKind::Out);
        assert_eq!(ev.pools_after, 3);
        assert_eq!(ev.trigger_queued, 9);
    }

    #[test]
    fn respects_max_pools_and_cooldown() {
        let mut s = Autoscaler::new(cfg());
        // At the ceiling: no scale-out no matter the pressure.
        assert_eq!(s.decide(ms(1), 100, 4), None);
        // Below the ceiling but inside cooldown after a decision.
        assert_eq!(s.decide(ms(2), 20, 2), Some(ScaleKind::Out));
        assert_eq!(s.decide(ms(3), 40, 3), None, "cooldown must gate");
        assert_eq!(s.decide(ms(8), 40, 3), Some(ScaleKind::Out));
    }

    #[test]
    fn scale_in_timer_resets_on_pressure() {
        let mut relaxed = cfg();
        relaxed.max_pools = 3; // pressure can't trigger Out at 3 pools
        let mut s = Autoscaler::new(relaxed);
        assert_eq!(s.decide(ms(0), 0, 3), None);
        assert_eq!(s.decide(ms(4), 50, 3), None, "at max_pools: no Out");
        // Timer restarted at the next low reading; 10 ms must elapse anew.
        assert_eq!(s.decide(ms(6), 0, 3), None);
        assert_eq!(s.decide(ms(12), 0, 3), None);
        assert_eq!(s.decide(ms(16), 0, 3), Some(ScaleKind::In));
        assert_eq!(s.events().last().unwrap().pools_after, 2);
    }

    #[test]
    fn never_drops_below_min_pools() {
        let mut s = Autoscaler::new(cfg());
        assert_eq!(s.decide(ms(0), 0, 1), None);
        assert_eq!(s.decide(ms(100), 0, 1), None, "min_pools floor holds");
    }

    #[test]
    #[should_panic(expected = "min_pools >= 1")]
    fn zero_min_pools_rejected() {
        let mut bad = cfg();
        bad.min_pools = 0;
        let _ = Autoscaler::new(bad);
    }
}
