//! Cross-generator property tests: invariants every synthetic dataset
//! must satisfy regardless of seed.

use dgnn_datasets::{
    bitcoin_alpha, github, iso17, lastfm, pems, reddit, sbm, social_evolution, wikipedia,
    Scale, TemporalDataset,
};
use proptest::prelude::*;

fn temporal_generators() -> Vec<(&'static str, fn(Scale, u64) -> TemporalDataset)> {
    vec![
        ("wikipedia", wikipedia),
        ("reddit", reddit),
        ("lastfm", lastfm),
        ("social_evolution", social_evolution),
        ("github", github),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn temporal_datasets_are_internally_consistent(seed in any::<u64>()) {
        for (name, gen) in temporal_generators() {
            let d = gen(Scale::Tiny, seed);
            prop_assert_eq!(d.name, name);
            // Feature tables line up with the stream.
            prop_assert_eq!(d.node_features.dims()[0], d.stream.n_nodes());
            prop_assert_eq!(d.edge_features.dims()[0], d.stream.len());
            prop_assert!(d.node_features.all_finite(), "{name}");
            prop_assert!(d.edge_features.all_finite(), "{name}");
            // Feature indices address the edge-feature table.
            for e in d.stream.events() {
                prop_assert!(e.feature_idx < d.stream.len(), "{name}");
            }
            // Timestamps strictly ordered enough for batching.
            let times: Vec<f64> = d.stream.events().iter().map(|e| e.time).collect();
            prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "{name}");
        }
    }

    #[test]
    fn snapshot_datasets_stay_in_node_bounds(seed in any::<u64>()) {
        for d in [bitcoin_alpha(Scale::Tiny, seed), sbm(Scale::Tiny, seed)] {
            let n = d.n_nodes();
            for snap in d.snapshots.iter() {
                prop_assert_eq!(snap.graph.n_nodes(), n);
                for (s, t, w) in snap.graph.iter_edges() {
                    prop_assert!(s < n && t < n);
                    prop_assert!(w.is_finite());
                }
            }
        }
    }

    #[test]
    fn pems_signal_is_finite_for_any_seed(seed in any::<u64>()) {
        let d = pems(Scale::Tiny, seed);
        prop_assert!(d.signal.all_finite());
        prop_assert_eq!(d.sensor_graph.n_nodes(), d.n_sensors());
    }

    #[test]
    fn iso17_frames_are_uniform(seed in any::<u64>()) {
        let d = iso17(Scale::Tiny, seed);
        let frames = d.frames_per_molecule();
        for mol in &d.molecules {
            prop_assert_eq!(mol.len(), frames);
            for snap in mol.iter() {
                prop_assert_eq!(snap.graph.n_nodes(), d.n_atoms);
            }
        }
        prop_assert_eq!(
            d.positions.dims()[0],
            d.n_molecules() * frames
        );
    }

    #[test]
    fn generators_never_collide_across_seeds(seed in 0u64..1_000) {
        let a = wikipedia(Scale::Tiny, seed);
        let b = wikipedia(Scale::Tiny, seed + 1);
        prop_assert_ne!(a.stream, b.stream);
    }
}
