//! Structured sanitizer diagnostics: rules, hazards, and the report.

use std::fmt;

use dgnn_device::TensorId;

/// The eight hazard classes the sanitizer checks (see `DESIGN.md` §3e
/// for RULE1–RULE6, §3g for RULE7 and §3i for RULE8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardRule {
    /// A device-side read of a tensor whose defining H2D upload (or
    /// adopt) has no happens-before edge to it — the copy may not have
    /// landed when the kernel runs.
    ReadBeforeTransfer,
    /// A device-side access after the buffer was downloaded or released,
    /// with no re-upload in between.
    UseAfterRelease,
    /// Conflicting cross-lane accesses to one buffer with no
    /// `record_event`/`wait_event` chain ordering them (or a wait on an
    /// event index the active fork never recorded).
    MissingWait,
    /// Per-lane virtual clocks moved backwards, lane events overlap on
    /// one lane, or a join's serial clock precedes a lane clock.
    ClockMonotonicity,
    /// Coalesce-staged bytes not conserved: staged ≠ flushed, priced
    /// transfers don't cover the crossings, or a priced record doesn't
    /// match its timeline event.
    ByteConservation,
    /// A claimed GPU busy fraction disagrees with the interval-union
    /// reference computed from the timeline (per-event sums double-count
    /// overlapping kernels).
    BusyFraction,
    /// A streaming-graph sample that reads a delta region not
    /// happens-before-ordered after the append that wrote it: the
    /// snapshot's visible prefix contains an append whose Host-lane
    /// work completes after the read begins (or was never logged at
    /// all), or the ingest watermark / visibility instants regressed
    /// across appends.
    SampleAfterAppend,
    /// Cross-device peer bytes not conserved: a dispatcher-logged peer
    /// crossing was never priced on an interconnect edge, a priced peer
    /// record doesn't match its timeline event (category, bytes, route,
    /// destination device), or a transfer was priced between a device
    /// and itself.
    PeerConservation,
}

impl HazardRule {
    /// All rules, in report order.
    pub const ALL: [HazardRule; 8] = [
        HazardRule::ReadBeforeTransfer,
        HazardRule::UseAfterRelease,
        HazardRule::MissingWait,
        HazardRule::ClockMonotonicity,
        HazardRule::ByteConservation,
        HazardRule::BusyFraction,
        HazardRule::SampleAfterAppend,
        HazardRule::PeerConservation,
    ];

    /// Stable rule identifier (`RULE1`..`RULE8`).
    pub fn id(self) -> &'static str {
        match self {
            HazardRule::ReadBeforeTransfer => "RULE1",
            HazardRule::UseAfterRelease => "RULE2",
            HazardRule::MissingWait => "RULE3",
            HazardRule::ClockMonotonicity => "RULE4",
            HazardRule::ByteConservation => "RULE5",
            HazardRule::BusyFraction => "RULE6",
            HazardRule::SampleAfterAppend => "RULE7",
            HazardRule::PeerConservation => "RULE8",
        }
    }

    /// Human-readable rule slug.
    pub fn slug(self) -> &'static str {
        match self {
            HazardRule::ReadBeforeTransfer => "read-before-transfer",
            HazardRule::UseAfterRelease => "use-after-release",
            HazardRule::MissingWait => "missing-wait",
            HazardRule::ClockMonotonicity => "clock-monotonicity",
            HazardRule::ByteConservation => "byte-conservation",
            HazardRule::BusyFraction => "busy-fraction",
            HazardRule::SampleAfterAppend => "sample-after-append",
            HazardRule::PeerConservation => "peer-conservation",
        }
    }

    /// Suggested fix attached to every hazard of this rule.
    pub fn suggestion(self) -> &'static str {
        match self {
            HazardRule::ReadBeforeTransfer => {
                "record an event on the uploading lane after the copy and \
                 wait on it from the consuming lane (lane_handoff) before \
                 the kernel reads the tensor"
            }
            HazardRule::UseAfterRelease => {
                "re-upload the tensor with ensure_resident before reusing \
                 it, or move the download/release after the last access"
            }
            HazardRule::MissingWait => {
                "order the two lanes with record_event/wait_event \
                 (lane_handoff) between the conflicting accesses, and only \
                 wait on events recorded by the active fork"
            }
            HazardRule::ClockMonotonicity => {
                "check fork/join pairing: lane clocks must never rewind, \
                 lane events must not overlap on one lane, and the joined \
                 serial clock must cover every lane"
            }
            HazardRule::ByteConservation => {
                "call flush_transfers before the dispatcher is dropped (and \
                 once per batch on the copy lane) so every staged byte is \
                 priced exactly once"
            }
            HazardRule::BusyFraction => {
                "compute busy fractions as an interval union over the \
                 window (gpu_busy_fraction), never as a per-event duration \
                 sum, which double-counts overlapping kernels"
            }
            HazardRule::SampleAfterAppend => {
                "cap the sampled snapshot at the events whose append work \
                 completed by the read's start (view_prefix over the \
                 visibility watermark), append in ingest order, and never \
                 let the watermark or visibility instants move backwards"
            }
            HazardRule::PeerConservation => {
                "price every cross-device fetch through Dispatcher::\
                 peer_transfer on the destination device so the crossing \
                 and its interconnect pricing stay paired, and never fetch \
                 from the device the work already runs on"
            }
        }
    }
}

impl fmt::Display for HazardRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.slug())
    }
}

/// One detected hazard, with enough provenance to locate it.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// Violated rule.
    pub rule: HazardRule,
    /// What happened, with byte counts / clock values where relevant.
    pub message: String,
    /// Components involved (e.g. `["copy", "compute"]`).
    pub lanes: Vec<&'static str>,
    /// Offending trace record indices, in program order.
    pub records: Vec<usize>,
    /// Related timeline event indices (best effort).
    pub events: Vec<usize>,
    /// Buffer the hazard concerns, when tensor-attributed.
    pub tensor: Option<TensorId>,
    /// Suggested fix (from [`HazardRule::suggestion`]).
    pub suggestion: &'static str,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)?;
        if !self.lanes.is_empty() {
            write!(f, " (lanes: {})", self.lanes.join(" vs "))?;
        }
        if let Some(t) = self.tensor {
            write!(f, " (tensor #{t})")?;
        }
        if !self.records.is_empty() {
            write!(f, " (trace records {:?})", self.records)?;
        }
        if !self.events.is_empty() {
            write!(f, " (timeline events {:?})", self.events)?;
        }
        write!(f, "\n    fix: {}", self.suggestion)
    }
}

/// What the sanitizer looked at (for "zero hazards" to be meaningful).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeStats {
    /// Trace records replayed.
    pub trace_records: usize,
    /// Timeline events checked.
    pub timeline_events: usize,
    /// Distinct tensors tracked.
    pub tensors: usize,
    /// Stream forks observed.
    pub forks: usize,
    /// Residence crossings observed (immediate + staged).
    pub crossings: usize,
    /// Priced PCIe bytes, indexed `[H2D, D2H]`.
    pub priced_bytes: [u64; 2],
    /// Streaming-graph appends replayed (RULE7 coverage).
    pub graph_appends: usize,
    /// Streaming-graph sample reads replayed (RULE7 coverage).
    pub graph_samples: usize,
    /// Rows served from the device-resident feature cache (legitimately
    /// unpriced — excluded from every byte-conservation ledger).
    pub cache_hit_rows: u64,
    /// Bytes those cache-served rows would otherwise have moved H2D.
    pub cache_hit_bytes: u64,
    /// Cross-device peer crossings replayed (RULE8 coverage).
    pub peer_crossings: usize,
    /// Bytes priced on interconnect edges (direct peer + host-staged).
    pub peer_bytes: u64,
}

/// The sanitizer's verdict over one recorded execution.
#[derive(Debug, Clone, Default)]
pub struct SanitizerReport {
    /// Detected hazards, in detection (program) order.
    pub hazards: Vec<Hazard>,
    /// Coverage statistics.
    pub stats: SanitizeStats,
}

impl SanitizerReport {
    /// Whether no hazard was detected.
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }

    /// Number of hazards of one rule.
    pub fn count(&self, rule: HazardRule) -> usize {
        self.hazards.iter().filter(|h| h.rule == rule).count()
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(
            f,
            "sanitizer: {} hazard(s) over {} trace records, {} timeline \
             events, {} tensors, {} fork(s), {} crossing(s), {} B H2D / {} B D2H priced, \
             {} graph append(s) / {} sample(s), {} cache-hit row(s) ({} B unpriced), \
             {} peer crossing(s) ({} B on interconnect)",
            self.hazards.len(),
            s.trace_records,
            s.timeline_events,
            s.tensors,
            s.forks,
            s.crossings,
            s.priced_bytes[0],
            s.priced_bytes[1],
            s.graph_appends,
            s.graph_samples,
            s.cache_hit_rows,
            s.cache_hit_bytes,
            s.peer_crossings,
            s.peer_bytes,
        )?;
        for h in &self.hazards {
            writeln!(f, "  {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_stable_and_distinct() {
        let ids: Vec<&str> = HazardRule::ALL.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            vec!["RULE1", "RULE2", "RULE3", "RULE4", "RULE5", "RULE6", "RULE7", "RULE8"]
        );
        let slugs: Vec<&str> = HazardRule::ALL.iter().map(|r| r.slug()).collect();
        assert_eq!(slugs.len(), 8);
        assert!(slugs.contains(&"sample-after-append"));
        assert!(slugs.contains(&"peer-conservation"));
    }

    #[test]
    fn report_renders_hazards_and_counts() {
        let mut r = SanitizerReport::default();
        assert!(r.is_clean());
        r.hazards.push(Hazard {
            rule: HazardRule::MissingWait,
            message: "conflicting access".into(),
            lanes: vec!["copy", "compute"],
            records: vec![3, 7],
            events: vec![],
            tensor: Some(42),
            suggestion: HazardRule::MissingWait.suggestion(),
        });
        assert!(!r.is_clean());
        assert_eq!(r.count(HazardRule::MissingWait), 1);
        assert_eq!(r.count(HazardRule::BusyFraction), 0);
        let text = r.render();
        assert!(text.contains("RULE3 missing-wait"));
        assert!(text.contains("tensor #42"));
        assert!(text.contains("fix:"));
    }
}
