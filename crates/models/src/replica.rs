//! Replica handles: recipes for materializing fresh model instances.
//!
//! A serving layer keeps *sessions* (warm executors with resident
//! weights) alive across requests, but rebuilds the *model struct* per
//! service so that every request's numerics depend only on the handle's
//! seed-deterministic recipe — never on mutable state a previous
//! request left behind. The struct rebuild is host-side Rust work the
//! simulator does not price; the priced warm-up (context init, weight
//! upload) is exactly what the warm session amortizes.
//!
//! `dgnn-bench` provides handles for the full 8-model zoo
//! (`zoo_handles`), binding each model to its paper dataset.

use crate::common::DgnnModel;

/// Factory closure producing a fresh, identically-seeded model instance
/// on every call.
pub type ModelFactory = Box<dyn Fn() -> Box<dyn DgnnModel> + Send + Sync>;

/// A named recipe for building replicas of one model.
///
/// Two instances built from the same handle are bit-identical: the
/// factory must close over its dataset and seed, not over mutable
/// state. [`ReplicaHandle::build`] is therefore safe to call once per
/// served batch.
pub struct ReplicaHandle {
    name: String,
    factory: ModelFactory,
}

impl std::fmt::Debug for ReplicaHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaHandle")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ReplicaHandle {
    /// Creates a handle from a model name and factory.
    pub fn new(
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn DgnnModel> + Send + Sync + 'static,
    ) -> Self {
        ReplicaHandle {
            name: name.into(),
            factory: Box::new(factory),
        }
    }

    /// The model name this handle builds (e.g. `"tgat"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Materializes a fresh replica.
    pub fn build(&self) -> Box<dyn DgnnModel> {
        (self.factory)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{InferenceConfig, RunSummary};
    use crate::registry::{all_model_infos, ModelInfo};
    use dgnn_device::Executor;

    struct Stub;

    impl DgnnModel for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn info(&self) -> ModelInfo {
            all_model_infos()[0].clone()
        }
        fn param_bytes(&self) -> u64 {
            1024
        }
        fn param_tensors(&self) -> u64 {
            2
        }
        fn activation_bytes(&self, _cfg: &InferenceConfig) -> u64 {
            512
        }
        fn infer(
            &mut self,
            _ex: &mut Executor,
            _cfg: &InferenceConfig,
        ) -> crate::Result<RunSummary> {
            Ok(RunSummary::new(1, dgnn_device::DurationNs::ZERO, 0.5))
        }
    }

    #[test]
    fn handle_builds_fresh_instances() {
        let h = ReplicaHandle::new("stub", || Box::new(Stub) as Box<dyn DgnnModel>);
        assert_eq!(h.name(), "stub");
        let a = h.build();
        let b = h.build();
        assert_eq!(a.name(), b.name());
        assert_eq!(a.param_bytes(), 1024);
        assert!(format!("{h:?}").contains("stub"));
    }
}
