//! TGN — Temporal Graph Networks (Rossi et al., 2020).
//!
//! Continuous-time model with a per-node **memory** table. Each batch:
//! 1. packs the batch's interactions on the CPU and ships edge features
//!    and timestamps to the GPU,
//! 2. samples recent temporal neighbors (CPU),
//! 3. **message passing**: fetches the memory rows of every touched node
//!    (sources, destinations, neighbors) — the frequent CPU↔GPU memory
//!    exchange of Fig 5(b) — and computes messages,
//! 4. updates memory with a GRU, computes embeddings with attention,
//! 5. writes updated memory rows back to the CPU side.
//!
//! Message passing's transfer volume makes it dominate at large batch
//! sizes (79% at 64k in Fig 7a) and drives GPU utilization *down* as
//! batch size grows (Fig 6c). All kernels route through the
//! [`Dispatcher`]; the memory exchange is expressed as staged
//! [`DeviceTensor`]s whose residence crossings *are* the transfers.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{DeviceTensor, Dispatcher, Executor, HostWork};
use dgnn_graph::{NeighborSampler, SampleStrategy, TemporalAdjacency};
use dgnn_nn::{EmbeddingTable, GruCell, Linear, Module, MultiHeadAttention, Time2Vec};
use dgnn_tensor::{OpDescriptor, Tensor, TensorRng};

use crate::common::{representative, DgnnModel, InferenceConfig, RunSummary};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per event for batch packing (vectorized numpy-style
/// preprocessing — cheap per element).
const PREP_CALL_OPS: u64 = 30;
/// Framework ops per event for vectorized temporal sampling (much
/// cheaper than TGAT's per-node Python bisect loop).
const SAMPLE_CALL_OPS: u64 = 120;

/// TGN hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgnConfig {
    /// Memory/embedding dimension.
    pub dim: usize,
    /// Time-embedding dimension.
    pub time_dim: usize,
    /// Attention heads in the embedding module.
    pub heads: usize,
}

impl Default for TgnConfig {
    fn default() -> Self {
        TgnConfig {
            dim: 172,
            time_dim: 100,
            heads: 2,
        }
    }
}

/// The TGN model bound to a dataset.
#[derive(Debug)]
pub struct Tgn {
    data: TemporalDataset,
    adj: TemporalAdjacency,
    cfg: TgnConfig,
    memory: EmbeddingTable,
    message_fn: Linear,
    memory_updater: GruCell,
    embed_attn: MultiHeadAttention,
    time_enc: Time2Vec,
    predictor: Linear,
}

impl Tgn {
    /// Builds TGN over an interaction dataset.
    pub fn new(data: TemporalDataset, cfg: TgnConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let adj = TemporalAdjacency::from_stream(&data.stream);
        let d = cfg.dim;
        let msg_in = 2 * d + data.edge_dim() + cfg.time_dim;
        Tgn {
            adj,
            memory: EmbeddingTable::new(data.stream.n_nodes(), d, &mut rng),
            message_fn: Linear::new(msg_in, d, &mut rng),
            memory_updater: GruCell::new(d, d, &mut rng),
            embed_attn: MultiHeadAttention::new(d, cfg.heads, &mut rng),
            time_enc: Time2Vec::new(cfg.time_dim, &mut rng),
            predictor: Linear::new(2 * d, 1, &mut rng),
            data,
            cfg,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![
            &self.memory,
            &self.message_fn,
            &self.memory_updater,
            &self.embed_attn,
            &self.time_enc,
            &self.predictor,
        ]
    }

    /// Memory rows touched per batch: two endpoints plus sampled
    /// neighbors per event.
    fn touched_rows(&self, batch: usize, k: usize) -> u64 {
        (batch * (2 + k)) as u64
    }
}

impl DgnnModel for Tgn {
    fn name(&self) -> &'static str {
        "tgn"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "tgn")
            .expect("tgn registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        // TGN stages memory rows through reused pinned buffers; only the
        // per-batch output embeddings are freshly allocated, which keeps
        // its per-batch warm-up nearly flat (Table 2).
        (cfg.batch_size * self.cfg.dim * 4 * 2) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let k = cfg.n_neighbors.clamp(1, 10);
        let d = self.cfg.dim;
        let sampler = NeighborSampler::new(SampleStrategy::MostRecent, cfg.seed);
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::new(ex);
            for batch in &batches {
                let bsz = batch.len();
                let rep = representative(bsz);
                let scale = bsz as f64 / rep as f64;
                let touched = self.touched_rows(bsz, k);

                // 1. Batch preparation + edge features to GPU.
                dx.scope("batch_prep", |dx| {
                    dx.host(HostWork::sequential(
                        "pack_batch",
                        bsz as u64 * PREP_CALL_OPS,
                        bsz as u64 * dgnn_graph::EventStream::EVENT_BYTES,
                    ));
                });
                let edge_payload = DeviceTensor::host_scaled(
                    Tensor::zeros(&[1, self.data.edge_dim() + 2]),
                    bsz as f64,
                );
                dx.scope("memcpy_h2d", |dx| dx.ensure_resident(&edge_payload));

                // 2. Temporal neighbor sampling on the CPU — the CSR
                // batch engine, one root per batch event.
                let rep_neighbors = dx.scope("sampling", |dx| {
                    let roots: Vec<(usize, f64)> =
                        batch.iter().take(rep).map(|e| (e.src, e.time)).collect();
                    let (rep_samples, cost) = sampler.sample_batch(&self.adj, &roots, k);
                    let s = (bsz as u64).div_ceil(rep as u64);
                    let parallelism = if cfg.parallel_sampling { bsz as u64 } else { 1 };
                    dx.host(HostWork {
                        label: "temporal_sampling",
                        ops: cost.ops * s / 4 + (bsz * 2) as u64 * SAMPLE_CALL_OPS,
                        seq_bytes: 0,
                        irregular_bytes: cost.irregular_bytes * s / 4,
                        parallelism,
                    });
                    rep_samples
                });

                let rep_src: Vec<usize> = batch.iter().take(rep).map(|e| e.src).collect();

                // 3. Message passing: memory exchange + message kernels.
                let rep_msgs = dx.scope("message_passing", |dx| -> Result<DeviceTensor> {
                    // The memory rows of every touched node cross PCIe
                    // both ways — the Fig 5(b) exchange, derived from the
                    // residence of the staged row blocks.
                    let mem_in = DeviceTensor::host_scaled(
                        Tensor::zeros(&[rep, 2 * d]),
                        touched as f64 / rep as f64,
                    );
                    dx.ensure_resident(&mem_in);
                    let staged_out =
                        dx.adopt(Tensor::zeros(&[rep, d]), touched as f64 / rep as f64);
                    dx.download(&staged_out);

                    let src_mem = self.memory.lookup_scaled(dx, &rep_src, scale)?;
                    let dst: Vec<usize> = batch.iter().take(rep).map(|e| e.dst).collect();
                    let dst_mem = self.memory.lookup_scaled(dx, &dst, scale)?;
                    let feats: Vec<usize> = batch.iter().take(rep).map(|e| e.feature_idx).collect();
                    let edge = self.data.edge_features.gather_rows(&feats)?;
                    let deltas = Tensor::from_vec(
                        batch.iter().take(rep).map(|e| e.time as f32).collect(),
                        &[rep],
                    )?;
                    let deltas = dx.adopt(deltas, scale);
                    let time = self.time_enc.forward(dx, &deltas)?;
                    let raw = src_mem
                        .data()
                        .concat_cols(dst_mem.data())?
                        .concat_cols(&edge)?
                        .concat_cols(time.data())?;
                    let raw = dx.adopt(raw, scale);
                    let msgs = self.message_fn.forward(dx, &raw)?;
                    // Per-node aggregation of messages has no dense
                    // functional counterpart; charge the reduce directly.
                    dx.charge(OpDescriptor::reduce("message_agg", bsz, k.max(1)), 1.0);
                    Ok(msgs)
                })?;

                // 4. Memory update (GRU) + embedding (attention).
                let new_mem = dx.scope("memory_update", |dx| -> Result<DeviceTensor> {
                    let prev = self.memory.lookup_scaled(dx, &rep_src, scale)?;
                    self.memory_updater
                        .forward(dx, &rep_msgs, &prev)
                        .map_err(Into::into)
                })?;
                self.memory.update(&mut dx, &rep_src, &new_mem)?;

                let emb = dx.scope("embedding", |dx| -> Result<DeviceTensor> {
                    // Keys/values: one event's sampled neighbors plus its
                    // source, standing in for the full batch (scale bsz);
                    // the queries are the rep updated-memory rows.
                    let kv_ids: Vec<usize> = rep_neighbors
                        .first()
                        .map(|s| s.iter().map(|n| n.node).collect::<Vec<_>>())
                        .unwrap_or_default()
                        .into_iter()
                        .chain(rep_src.first().copied())
                        .collect();
                    let kv = self.memory.lookup_scaled(dx, &kv_ids, bsz as f64)?;
                    self.embed_attn
                        .forward(dx, &new_mem, &kv, &kv)
                        .map_err(Into::into)
                })?;

                // 5. Prediction + memory write-back.
                dx.scope("prediction", |dx| -> Result<()> {
                    let pair = dx.adopt(emb.data().concat_cols(emb.data())?, scale);
                    checksum += self.predictor.forward(dx, &pair)?.data().sum();
                    Ok(())
                })?;
                let writeback = dx.adopt(Tensor::zeros(&[rep, d]), touched as f64 / rep as f64);
                dx.scope("memcpy_d2h", |dx| dx.download(&writeback));
                iterations += 1;
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{wikipedia, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> Tgn {
        Tgn::new(wikipedia(Scale::Tiny, 1), TgnConfig::default(), 7)
    }

    fn cfg(bs: usize) -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(bs)
            .with_neighbors(10)
            .with_max_units(3)
    }

    #[test]
    fn runs_and_profiles() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let s = m.run(&mut ex, &cfg(100)).unwrap();
        assert_eq!(s.iterations, 3);
        assert!(s.checksum.is_finite());
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.breakdown.share_of("message_passing") > 0.0);
    }

    #[test]
    fn message_passing_dominates_large_batches() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(500)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        let share = p.breakdown.share_of("message_passing");
        assert!(share > 0.4, "message passing share {share}");
    }

    #[test]
    fn utilization_decreases_with_batch_size() {
        let util = |bs: usize| {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg(bs)).unwrap();
            InferenceProfile::capture(&ex, "inference")
                .utilization
                .busy_fraction
        };
        let small = util(32);
        let large = util(512);
        assert!(
            large < small,
            "util should fall with batch size: {small} -> {large}"
        );
    }

    #[test]
    fn memory_table_evolves() {
        let mut m = build();
        let before = m.memory.table().clone();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(64)).unwrap();
        assert_ne!(&before, m.memory.table());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(64)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cpu_mode_works() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let s = m.run(&mut ex, &cfg(64)).unwrap();
        assert!(s.inference_time.as_nanos() > 0);
    }
}
