//! # dgnn-tensor
//!
//! Dense `f32` tensor math substrate for the DGNN bottleneck-analysis
//! reproduction suite.
//!
//! The crate provides a small, deterministic, row-major tensor type
//! ([`Tensor`]) together with the operations the eight profiled dynamic
//! graph neural networks need: matrix multiplication, element-wise
//! arithmetic, activations, reductions, softmax, concatenation, slicing
//! and gathers. Everything executes on the host CPU; *simulated* device
//! timing lives one layer up in `dgnn-device`, which charges a cost model
//! for each operation while this crate supplies the functional result.
//!
//! FLOP/byte estimators (see [`cost`]) are exposed so the device layer can
//! price each kernel without recomputing shapes.
//!
//! ```
//! use dgnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), dgnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c, a);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod error;
mod init;
mod shape;
mod tensor;

pub mod cost;
pub mod ops;
pub mod par;

pub use cost::{OpDescriptor, OpKind};
pub use error::TensorError;
pub use init::{Initializer, TensorRng};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
