//! LINT4 clean twin (1/4): same two-rule catalogue.

pub enum HazardRule {
    OverlapOnLane,
    GapBeforeDependency,
}

impl HazardRule {
    pub fn id(self) -> &'static str {
        match self {
            HazardRule::OverlapOnLane => "RULE1",
            HazardRule::GapBeforeDependency => "RULE2",
        }
    }
}
