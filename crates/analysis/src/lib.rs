//! `dgnn-analysis` — a compute-sanitizer-style hazard checker for the
//! simulated stream machine.
//!
//! The virtual platform in `dgnn-device` executes models on a three-lane
//! CUDA-style stream machine (host / copy / compute) with virtual
//! per-lane clocks, `record_event`/`wait_event` synchronization and
//! fork/join boundaries. Just like real asynchronous GPU code, a model
//! driver can be *numerically* correct while its recorded schedule is
//! racy: a kernel consuming a buffer whose H2D copy it never waited on,
//! a download racing a compute-lane producer, coalesce-staged bytes that
//! were never flushed into a priced transfer.
//!
//! This crate replays the causal provenance log
//! ([`ExecTrace`](dgnn_device::ExecTrace), recorded by
//! [`Executor::enable_tracing`](dgnn_device::Executor::enable_tracing))
//! together with the [`Timeline`](dgnn_device::Timeline) through a
//! vector-clock happens-before engine and checks eight hazard
//! rules (see [`HazardRule`]) — including RULE7, which guards the
//! streaming delta-log graph: a sample must never read an appended
//! region whose ingest work had not completed by the read's start,
//! and RULE8, which balances cross-device peer traffic per device
//! pair. It is entirely post-hoc: run the model,
//! then [`audit`] the executor. Tracing off means zero cost and nothing
//! to analyze.
//!
//! ```
//! use dgnn_device::{Executor, PlatformSpec, ExecMode};
//!
//! let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
//! ex.enable_tracing();
//! // ... drive a model ...
//! let report = dgnn_analysis::audit(&ex);
//! assert!(report.is_clean(), "{report}");
//! ```

#![forbid(unsafe_code)]

mod hb;
mod report;
mod rules;

pub use report::{Hazard, HazardRule, SanitizeStats, SanitizerReport};
pub use rules::{sanitize, BusyClaim, SanitizeOptions};

use dgnn_device::{DurationNs, Executor};

/// Audits a finished (or in-flight) executor: replays its provenance
/// trace against its timeline and additionally cross-checks the
/// whole-run GPU busy fraction ([`Timeline::gpu_busy_fraction`]) against
/// an independently computed interval union (RULE6).
///
/// # Panics
///
/// Panics if tracing was never enabled on `ex` — auditing an empty trace
/// would vacuously pass, which is worse than failing loudly. Call
/// [`Executor::enable_tracing`] before running the model.
///
/// [`Timeline::gpu_busy_fraction`]: dgnn_device::Timeline::gpu_busy_fraction
/// [`Executor::enable_tracing`]: dgnn_device::Executor::enable_tracing
pub fn audit(ex: &Executor) -> SanitizerReport {
    let trace = ex.trace().expect(
        "sanitizer: provenance tracing is off — call Executor::enable_tracing() \
         before running the model so there is a trace to audit",
    );
    let timeline = ex.timeline();
    let span_end = timeline.span_end();
    let claim = BusyClaim {
        win_start: DurationNs::ZERO,
        win_end: span_end,
        fraction: timeline.gpu_busy_fraction(DurationNs::ZERO, span_end),
    };
    let opts = SanitizeOptions {
        busy_claim: Some(claim),
        ..SanitizeOptions::default()
    };
    sanitize(timeline, trace, &opts)
}
