//! Functional time encoders: Bochner (TGAT) and Time2Vec.

use dgnn_device::{DeviceTensor, Dispatcher};
use dgnn_tensor::{Initializer, OpDescriptor, Tensor, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

/// TGAT's Bochner time encoding:
/// `Φ(t) = sqrt(1/d) · [cos(ω₁ t + b₁), …, cos(ω_d t + b_d)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BochnerTimeEncoder {
    omega: Param,
    phase: Param,
    dim: usize,
}

impl BochnerTimeEncoder {
    /// Creates an encoder of output width `dim`. Frequencies follow the
    /// reference implementation's geometric ladder `10^{-i·4/d}`.
    pub fn new(dim: usize, rng: &mut TensorRng) -> Self {
        let omega = Tensor::from_vec(
            (0..dim)
                .map(|i| 10f32.powf(-(i as f32) * 4.0 / dim as f32))
                .collect(),
            &[dim],
        )
        .expect("constructed length matches");
        BochnerTimeEncoder {
            omega: Param::new("omega", omega),
            phase: Param::new("phase", rng.init(&[dim], Initializer::Uniform(1.0))),
            dim,
        }
    }

    /// Encoding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a batch of time deltas `[n] → [n, dim]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `deltas` is not rank 1.
    pub fn forward(&self, dx: &mut Dispatcher, deltas: &DeviceTensor) -> Result<DeviceTensor> {
        let n = deltas.data().len();
        dx.ensure_resident(deltas);
        let desc = OpDescriptor::elementwise("time_encode", n * self.dim, 3, 2);
        let out = dx.fused(desc, deltas.scale(), || {
            let scale = (1.0 / self.dim as f32).sqrt();
            let mut data = Vec::with_capacity(n * self.dim);
            for &t in deltas.data().as_slice() {
                for j in 0..self.dim {
                    let w = self.omega.value.as_slice()[j];
                    let b = self.phase.value.as_slice()[j];
                    data.push(scale * (w * t + b).cos());
                }
            }
            Tensor::from_vec(data, &[n, self.dim])
        })?;
        Ok(dx.adopt(out, deltas.scale()))
    }
}

impl Module for BochnerTimeEncoder {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.omega, &self.phase]
    }
}

/// Time2Vec: one linear component plus `d−1` periodic components,
/// `[ω₀t + b₀, sin(ω₁t + b₁), …]` (TGN's time embedding).
#[derive(Debug, Clone, PartialEq)]
pub struct Time2Vec {
    omega: Param,
    phase: Param,
    dim: usize,
}

impl Time2Vec {
    /// Creates a Time2Vec encoder of width `dim` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize, rng: &mut TensorRng) -> Self {
        assert!(dim >= 1, "Time2Vec needs at least the linear component");
        Time2Vec {
            omega: Param::new("omega", rng.init(&[dim], Initializer::Uniform(1.0))),
            phase: Param::new("phase", rng.init(&[dim], Initializer::Uniform(1.0))),
            dim,
        }
    }

    /// Encoding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes time deltas `[n] → [n, dim]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `deltas` is not rank 1.
    pub fn forward(&self, dx: &mut Dispatcher, deltas: &DeviceTensor) -> Result<DeviceTensor> {
        let n = deltas.data().len();
        dx.ensure_resident(deltas);
        let desc = OpDescriptor::elementwise("time2vec", n * self.dim, 3, 2);
        let out = dx.fused(desc, deltas.scale(), || {
            let mut data = Vec::with_capacity(n * self.dim);
            for &t in deltas.data().as_slice() {
                for j in 0..self.dim {
                    let v = self.omega.value.as_slice()[j] * t + self.phase.value.as_slice()[j];
                    data.push(if j == 0 { v } else { v.sin() });
                }
            }
            Tensor::from_vec(data, &[n, self.dim])
        })?;
        Ok(dx.adopt(out, deltas.scale()))
    }
}

impl Module for Time2Vec {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.omega, &self.phase]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, PlatformSpec};

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    fn dt(t: Tensor) -> DeviceTensor {
        DeviceTensor::host(t)
    }

    #[test]
    fn bochner_shape_and_bound() {
        let mut rng = TensorRng::seed(1);
        let enc = BochnerTimeEncoder::new(16, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let t = dt(Tensor::from_vec(vec![0.0, 1.0, 100.0], &[3]).unwrap());
        let e = enc.forward(&mut dx, &t).unwrap();
        assert_eq!(e.data().dims(), &[3, 16]);
        let bound = (1.0f32 / 16.0).sqrt() + 1e-6;
        assert!(e.data().as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn bochner_distinguishes_deltas() {
        let mut rng = TensorRng::seed(2);
        let enc = BochnerTimeEncoder::new(8, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let t = dt(Tensor::from_vec(vec![0.5, 5.0], &[2]).unwrap());
        let e = enc.forward(&mut dx, &t).unwrap();
        assert_ne!(e.data().row(0).unwrap(), e.data().row(1).unwrap());
    }

    #[test]
    fn time2vec_first_component_is_linear() {
        let mut rng = TensorRng::seed(3);
        let enc = Time2Vec::new(4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let t = dt(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let e = enc.forward(&mut dx, &t).unwrap();
        // Linear component: equal second differences.
        let v: Vec<f32> = (0..3).map(|i| e.data().at(&[i, 0]).unwrap()).collect();
        assert!(((v[2] - v[1]) - (v[1] - v[0])).abs() < 1e-5);
        // Periodic components bounded by 1.
        for i in 0..3 {
            for j in 1..4 {
                assert!(e.data().at(&[i, j]).unwrap().abs() <= 1.0);
            }
        }
    }

    #[test]
    fn encoders_register_params_and_dispatch() {
        let mut rng = TensorRng::seed(4);
        let enc = BochnerTimeEncoder::new(8, &mut rng);
        assert_eq!(enc.param_tensor_count(), 2);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        enc.forward(&mut dx, &dt(Tensor::zeros(&[5]))).unwrap();
        assert_eq!(dx.executor().timeline().len(), 1);
    }
}
