//! Reductions and softmax (the reduction kernel family).

use crate::cost::OpDescriptor;
use crate::{Result, Tensor, TensorError};

/// Descriptor of [`Tensor::softmax_rows`] over an `[m, n]` matrix.
pub fn softmax_rows_desc(m: usize, n: usize) -> OpDescriptor {
    OpDescriptor::reduce("softmax_rows", m, n)
}

/// Descriptor of a plain reduction ([`Tensor::sum_rows`],
/// [`Tensor::mean_rows`], [`Tensor::sum`], [`Tensor::max`]) over an
/// `[m, n]` extent.
pub fn reduce_desc(m: usize, n: usize) -> OpDescriptor {
    OpDescriptor::reduce("reduce", m, n)
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for empty tensors.
    pub fn mean(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::EmptyInput { op: "mean" });
        }
        Ok(self.sum() / self.len() as f32)
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for empty tensors.
    pub fn max(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::EmptyInput { op: "max" });
        }
        Ok(self
            .as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max))
    }

    /// Sums a rank-2 tensor over rows: `[m, n] → [n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless rank is 2.
    pub fn sum_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            let row = &self.as_slice()[i * n..(i + 1) * n];
            for (acc, v) in out.iter_mut().zip(row) {
                *acc += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Mean of a rank-2 tensor over rows: `[m, n] → [n]`.
    ///
    /// This is the mean aggregator in message passing.
    ///
    /// # Errors
    ///
    /// Returns rank errors as in [`Tensor::sum_rows`] and
    /// [`TensorError::EmptyInput`] when `m == 0`.
    pub fn mean_rows(&self) -> Result<Tensor> {
        let m = self.dims().first().copied().unwrap_or(0);
        if m == 0 {
            return Err(TensorError::EmptyInput { op: "mean_rows" });
        }
        Ok(self.sum_rows()?.scale(1.0 / m as f32))
    }

    /// Row-wise softmax of a rank-2 tensor, numerically stabilized by
    /// subtracting each row's maximum.
    ///
    /// ```
    /// use dgnn_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), dgnn_tensor::TensorError> {
    /// let logits = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2])?;
    /// let p = logits.softmax_rows()?;
    /// assert!((p.at(&[0, 0])? - 0.5).abs() < 1e-6);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless rank is 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.as_slice()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - mx).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for j in 0..n {
                out[i * n + j] /= denom;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// Dot product with another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        self.shape().check_same(rhs.shape(), "dot")?;
        Ok(self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_max() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean().unwrap(), 2.5);
        assert_eq!(t.max().unwrap(), 4.0);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::zeros(&[0]);
        assert!(t.mean().is_err());
        assert!(t.max().is_err());
    }

    #[test]
    fn sum_rows_and_mean_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_rows().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.mean_rows().unwrap().as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = t.softmax_rows().unwrap();
        for i in 0..2 {
            let row: f32 = (0..3).map(|j| p.at(&[i, j]).unwrap()).sum();
            assert!((row - 1.0).abs() < 1e-6);
            assert!(p.at(&[i, 2]).unwrap() > p.at(&[i, 0]).unwrap());
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let p = t.softmax_rows().unwrap();
        assert!(p.all_finite());
        assert!((p.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert!(a.dot(&Tensor::zeros(&[3])).is_err());
    }
}
