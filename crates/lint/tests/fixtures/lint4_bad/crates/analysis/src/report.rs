//! LINT4 adversarial fixture (1/4): a sanitizer catalogue with two
//! rules; RULE2 has no clean-twin test in the tests directory.

pub enum HazardRule {
    OverlapOnLane,
    GapBeforeDependency,
}

impl HazardRule {
    pub fn id(self) -> &'static str {
        match self {
            HazardRule::OverlapOnLane => "RULE1",
            HazardRule::GapBeforeDependency => "RULE2",
        }
    }
}
