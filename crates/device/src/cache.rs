//! Device-resident feature cache: hot rows skip the PCIe crossing.
//!
//! The paper's bottleneck #3 is data movement — MolDGNN spends 80–90%
//! of its GPU working time in memcpy, TGN 79% in message passing — and
//! transfer *coalescing* (PR 3) only reduced the per-transfer overhead,
//! not the bytes: every neighbor feature still crossed PCIe on every
//! batch. On power-law graphs that is enormously wasteful, because a
//! small set of hub nodes appears in almost every sampled neighborhood.
//! FAST (see `PAPERS.md`) shows the big wins come from co-optimizing
//! sampling with memory I/O so hot rows never leave the device.
//!
//! [`FeatureCache`] models exactly that mitigation: a
//! configurable-capacity LRU over device-resident rows keyed by
//! ([`TensorClass`], row id), with per-entry hotness counters and
//! hit/miss/eviction statistics. A hit means the row is already in GPU
//! memory and its H2D transfer is *skipped entirely*; a miss prices the
//! fetch and inserts the row, evicting the least-recently-used entry
//! when full. Only *pricing* changes — model numerics are bit-identical
//! with the cache on or off, because the cached payloads are
//! pricing-level stand-ins (the functional tensors flow through
//! `adopt`).
//!
//! Determinism: lookups use a `HashMap` strictly for O(1) point access
//! (never iterated), and recency order lives in a `BTreeMap` keyed by a
//! monotone logical tick — eviction picks the smallest tick, which is a
//! deterministic choice independent of hasher state or thread count.

use std::collections::{BTreeMap, HashMap};

/// Logical class of rows a [`FeatureCache`] holds. Keys are only
/// meaningful within a class (node id 7's feature row and node id 7's
/// memory row are different cache lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TensorClass {
    /// Static per-node input features (TGAT/TGN neighbor features,
    /// MolDGNN per-frame adjacency/coordinate rows).
    NodeFeature,
    /// Per-edge features and timestamps.
    EdgeFeature,
    /// Recurrent per-node memory/embedding state (TGN memory rows).
    NodeMemory,
}

impl TensorClass {
    /// All classes, in a fixed order (the index order of
    /// [`TensorClass::index`]).
    pub const ALL: [TensorClass; 3] = [
        TensorClass::NodeFeature,
        TensorClass::EdgeFeature,
        TensorClass::NodeMemory,
    ];

    /// Stable lowercase name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TensorClass::NodeFeature => "node_feature",
            TensorClass::EdgeFeature => "edge_feature",
            TensorClass::NodeMemory => "node_memory",
        }
    }

    /// Index into per-class tables ([`TensorClass::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            TensorClass::NodeFeature => 0,
            TensorClass::EdgeFeature => 1,
            TensorClass::NodeMemory => 2,
        }
    }
}

/// Aggregate hit/miss/eviction counters of one cache (or a sum over
/// several — see [`CacheStats::accumulate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes that found their row resident (H2D skipped).
    pub hits: u64,
    /// Probes that missed and paid the fetch.
    pub misses: u64,
    /// Rows evicted to make room.
    pub evictions: u64,
    /// Bytes served from the device instead of crossing PCIe.
    pub hit_bytes: u64,
    /// Bytes fetched over PCIe on misses.
    pub miss_bytes: u64,
}

impl CacheStats {
    /// Total probes.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }

    /// Adds another cache's counters (for fleet-wide aggregation).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.hit_bytes += other.hit_bytes;
        self.miss_bytes += other.miss_bytes;
    }
}

/// Per-[`TensorClass`] [`CacheStats`], indexed by [`TensorClass::index`].
/// The per-class split is what exposes, e.g., MolDGNN's edge-feature
/// misses that a summed total hides.
pub type ClassCacheStats = [CacheStats; 3];

/// Sums two per-class stat tables element-wise (fleet aggregation).
pub fn accumulate_class_stats(into: &mut ClassCacheStats, other: &ClassCacheStats) {
    for (dst, src) in into.iter_mut().zip(other.iter()) {
        dst.accumulate(src);
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// Recency tick of the most recent touch (key into the LRU order).
    tick: u64,
    /// Times this row was probed while resident (hotness counter).
    hotness: u64,
    /// Device bytes the row occupies (freed on eviction).
    bytes: u64,
}

/// A deterministic LRU cache of device-resident rows.
///
/// Capacity is counted in *rows*, not bytes: the cached unit is one
/// feature/memory row, matching how the drivers key it (one row per
/// node or per frame slab). Byte accounting still flows to the GPU
/// [`crate::MemoryTracker`] via the executor, which charges the row's
/// size on insert and frees it on eviction.
///
/// ```
/// use dgnn_device::{FeatureCache, TensorClass};
///
/// let mut cache = FeatureCache::new(2);
/// assert!(!cache.probe_insert(TensorClass::NodeFeature, 7, 256).0); // miss
/// assert!(cache.probe_insert(TensorClass::NodeFeature, 7, 256).0); // hit
/// cache.probe_insert(TensorClass::NodeFeature, 8, 256);
/// // A third row evicts the least recently touched one (id 7).
/// let (_, evicted) = cache.probe_insert(TensorClass::NodeFeature, 9, 256);
/// assert_eq!(evicted, 256);
/// assert_eq!(cache.stats().evictions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FeatureCache {
    capacity: usize,
    /// Point lookups only — never iterated (hasher order would break
    /// bit-determinism).
    map: HashMap<(TensorClass, u64), Entry>,
    /// Recency order: tick → key. Ticks are unique (monotone counter),
    /// so `BTreeMap` iteration order is the deterministic LRU order.
    lru: BTreeMap<u64, (TensorClass, u64)>,
    tick: u64,
    stats: CacheStats,
    /// Per-class breakdown of `stats` ([`TensorClass::index`] order).
    class_stats: ClassCacheStats,
}

impl FeatureCache {
    /// Creates an empty cache holding at most `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a zero-capacity cache cannot
    /// hold the row it just fetched; disable the cache instead.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "feature cache capacity must be >= 1 row");
        FeatureCache {
            capacity,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            class_stats: ClassCacheStats::default(),
        }
    }

    /// Maximum resident rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no row is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Lifetime counters broken down per row class
    /// ([`TensorClass::index`] order). Evictions are attributed to the
    /// class of the *victim* row, so the per-class eviction counts also
    /// sum to the aggregate.
    pub fn class_stats(&self) -> &ClassCacheStats {
        &self.class_stats
    }

    /// Whether a row is resident (does not touch recency or stats).
    pub fn contains(&self, class: TensorClass, key: u64) -> bool {
        self.map.contains_key(&(class, key))
    }

    /// Times the row was probed while resident (0 when absent).
    pub fn hotness(&self, class: TensorClass, key: u64) -> u64 {
        self.map.get(&(class, key)).map_or(0, |e| e.hotness)
    }

    /// Device bytes currently pinned by resident rows.
    pub fn resident_bytes(&self) -> u64 {
        // Summed over the deterministic LRU order, not the hash map.
        self.lru.values().map(|k| self.map[k].bytes).sum()
    }

    /// Probes for `(class, key)` and, on a miss, inserts it as a
    /// `row_bytes`-byte resident row (evicting the LRU row if full).
    ///
    /// Returns `(hit, evicted_bytes)`: `hit` says whether the H2D fetch
    /// can be skipped, and `evicted_bytes` is how much device memory
    /// the eviction released (0 on hits and non-evicting misses) so the
    /// caller can balance its memory tracker.
    pub fn probe_insert(&mut self, class: TensorClass, key: u64, row_bytes: u64) -> (bool, u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&(class, key)) {
            self.lru.remove(&e.tick);
            self.lru.insert(tick, (class, key));
            e.tick = tick;
            e.hotness += 1;
            self.stats.hits += 1;
            self.stats.hit_bytes += e.bytes;
            self.class_stats[class.index()].hits += 1;
            self.class_stats[class.index()].hit_bytes += e.bytes;
            return (true, 0);
        }
        self.stats.misses += 1;
        self.stats.miss_bytes += row_bytes;
        self.class_stats[class.index()].misses += 1;
        self.class_stats[class.index()].miss_bytes += row_bytes;
        let mut evicted = 0u64;
        if self.map.len() >= self.capacity {
            // The smallest tick is the least recently used row.
            let (&old_tick, &victim) = self.lru.iter().next().expect("full cache has entries");
            self.lru.remove(&old_tick);
            let gone = self.map.remove(&victim).expect("lru entry is mapped");
            evicted = gone.bytes;
            self.stats.evictions += 1;
            self.class_stats[victim.0.index()].evictions += 1;
        }
        self.map.insert(
            (class, key),
            Entry {
                tick,
                hotness: 0,
                bytes: row_bytes,
            },
        );
        self.lru.insert(tick, (class, key));
        (false, evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_then_hotness() {
        let mut c = FeatureCache::new(4);
        assert!(!c.probe_insert(TensorClass::NodeFeature, 1, 64).0);
        assert!(c.probe_insert(TensorClass::NodeFeature, 1, 64).0);
        assert!(c.probe_insert(TensorClass::NodeFeature, 1, 64).0);
        assert_eq!(c.hotness(TensorClass::NodeFeature, 1), 2);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!((s.hit_bytes, s.miss_bytes), (128, 64));
    }

    #[test]
    fn classes_do_not_collide() {
        let mut c = FeatureCache::new(4);
        c.probe_insert(TensorClass::NodeFeature, 9, 64);
        assert!(!c.probe_insert(TensorClass::NodeMemory, 9, 64).0);
        assert!(c.contains(TensorClass::NodeFeature, 9));
        assert!(c.contains(TensorClass::NodeMemory, 9));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_row() {
        let mut c = FeatureCache::new(2);
        c.probe_insert(TensorClass::NodeFeature, 1, 10);
        c.probe_insert(TensorClass::NodeFeature, 2, 20);
        c.probe_insert(TensorClass::NodeFeature, 1, 10); // refresh id 1
        let (hit, evicted) = c.probe_insert(TensorClass::NodeFeature, 3, 30);
        assert!(!hit);
        assert_eq!(evicted, 20, "id 2 was least recently used");
        assert!(!c.contains(TensorClass::NodeFeature, 2));
        assert!(c.contains(TensorClass::NodeFeature, 1));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.resident_bytes(), 40);
    }

    #[test]
    fn repeated_working_set_is_all_hits_after_warmup() {
        let mut c = FeatureCache::new(8);
        for round in 0..5 {
            for key in 0..8u64 {
                let (hit, _) = c.probe_insert(TensorClass::EdgeFeature, key, 16);
                assert_eq!(hit, round > 0);
            }
        }
        let s = c.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 32);
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn probe_sequence_is_deterministic() {
        let run = || {
            let mut c = FeatureCache::new(3);
            let keys = [5u64, 1, 9, 5, 2, 9, 7, 1, 5];
            let outcomes: Vec<(bool, u64)> = keys
                .iter()
                .map(|&k| c.probe_insert(TensorClass::NodeFeature, k, 32))
                .collect();
            (outcomes, c.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = FeatureCache::new(0);
    }

    #[test]
    fn class_stats_partition_the_aggregate() {
        let mut c = FeatureCache::new(2);
        c.probe_insert(TensorClass::NodeFeature, 1, 10);
        c.probe_insert(TensorClass::NodeFeature, 1, 10); // hit
        c.probe_insert(TensorClass::EdgeFeature, 1, 20);
        // Evicts the NodeFeature row (coldest): the eviction is charged
        // to the victim's class.
        c.probe_insert(TensorClass::NodeMemory, 1, 30);
        let per = c.class_stats();
        let nf = per[TensorClass::NodeFeature.index()];
        let ef = per[TensorClass::EdgeFeature.index()];
        let nm = per[TensorClass::NodeMemory.index()];
        assert_eq!((nf.hits, nf.misses, nf.evictions), (1, 1, 1));
        assert_eq!((ef.hits, ef.misses, ef.evictions), (0, 1, 0));
        assert_eq!((nm.hits, nm.misses, nm.evictions), (0, 1, 0));
        // Per-class rows sum to the aggregate, every field.
        let mut summed = CacheStats::default();
        for s in per {
            summed.accumulate(s);
        }
        assert_eq!(summed, c.stats());
    }

    #[test]
    fn class_indices_are_stable() {
        for (i, class) in TensorClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }
}
