//! Minimal self-timed benchmark harness.
//!
//! The `[[bench]]` targets run with `harness = false`, so each bench
//! binary drives this runner directly: no external benchmarking crate
//! is needed and `cargo bench` works offline. Measurements are real
//! wall-clock (not simulated time) so regressions in the reproduction
//! infrastructure itself stay visible.

use std::time::{Duration, Instant};

/// The one sanctioned wall-clock read in the workspace.
///
/// Every other crate simulates time; bench binaries that need real
/// timings route them through here so `dgnn-lint`'s LINT2 allowlist
/// stays a single file. Wall time is **report-only**: it is printed
/// next to results and never feeds back into simulated pricing,
/// sampling or any other decision path.
pub fn walltime() -> Instant {
    Instant::now()
}

/// Runs `f` for `samples` timed iterations (after one untimed warm-up)
/// and prints mean/min/max wall-clock per iteration.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t0 = walltime();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    let total: Duration = times.iter().sum();
    #[expect(clippy::cast_possible_truncation, reason = "sample counts are tiny")]
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt(mean),
        fmt(min),
        fmt(max),
        times.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0usize;
        bench("noop", 3, || count += 1);
        // One warm-up + three samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn fmt_picks_sensible_units() {
        assert!(fmt(Duration::from_nanos(120)).ends_with("ns"));
        assert!(fmt(Duration::from_micros(120)).ends_with("µs"));
        assert!(fmt(Duration::from_millis(120)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(12)).ends_with(" s"));
    }
}
