//! LINT4 adversarial fixture (4/4): the sweep touches `batch_size` but
//! never `dead_knob`.

fn main() {
    let cfg = InferenceConfig::default().with_batch_size(8);
    run(cfg);
}
