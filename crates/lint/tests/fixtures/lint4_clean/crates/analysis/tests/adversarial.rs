//! LINT4 clean twin (2/4): every rule has an adversarial test and a
//! clean twin.

#[test]
fn rule1_overlap_on_lane_is_flagged() {}

#[test]
fn rule1_serial_twin_passes() {}

#[test]
fn rule2_gap_before_dependency_is_flagged() {}

#[test]
fn rule2_spaced_dependency_is_legal() {}
