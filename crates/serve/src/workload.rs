//! Deterministic request-stream generation.
//!
//! Arrivals follow a Poisson process: inter-arrival gaps are drawn from
//! an exponential distribution via inverse-transform sampling on a
//! seeded [`TensorRng`], then rounded to integer (≥ 1) virtual
//! nanoseconds so two requests never share an instant and every
//! downstream computation stays bit-deterministic. Each request is
//! independently assigned a model from a weighted mix.

use dgnn_device::DurationNs;
use dgnn_tensor::TensorRng;

/// One inference request: a query for one unit of work (one mini-batch
/// at the target model's configured batch size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Dense request id (arrival order).
    pub id: usize,
    /// Index into the served model mix.
    pub model: usize,
    /// Virtual arrival time.
    pub arrival: DurationNs,
}

/// Generates `n` requests at `rate_rps` expected arrivals per simulated
/// second, with models drawn from `weights` (need not be normalized).
///
/// # Panics
///
/// Panics when `rate_rps` is not positive, `weights` is empty, or the
/// weights sum to zero.
pub fn generate(seed: u64, n: usize, rate_rps: f64, weights: &[f64]) -> Vec<Request> {
    assert!(
        rate_rps > 0.0 && rate_rps.is_finite(),
        "arrival rate must be positive"
    );
    assert!(!weights.is_empty(), "model mix must not be empty");
    let total_weight: f64 = weights.iter().sum();
    assert!(total_weight > 0.0, "model mix weights must sum > 0");

    // Distinct RNG streams for gaps and mix assignment keep the two
    // decisions independent of each other's draw counts.
    let mut gap_rng = TensorRng::seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5e2e);
    let mut mix_rng = TensorRng::seed(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ 0x313a);

    let mut t_ns = 0u64;
    (0..n)
        .map(|id| {
            // Exponential gap: -ln(1 - u) / rate, u ∈ [0, 1).
            let u = gap_rng.unit_f64();
            let gap_s = -(1.0 - u).ln() / rate_rps;
            #[allow(clippy::cast_possible_truncation)] // gaps are ≪ u64::MAX ns
            #[allow(clippy::cast_sign_loss)] // gap_s ≥ 0 by construction
            let gap_ns = ((gap_s * 1e9).round() as u64).max(1);
            t_ns += gap_ns;

            let mut pick = mix_rng.unit_f64() * total_weight;
            let mut model = weights.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    model = i;
                    break;
                }
                pick -= w;
            }
            Request {
                id,
                model,
                arrival: DurationNs::from_nanos(t_ns),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let reqs = generate(7, 500, 1_000.0, &[1.0, 1.0]);
        assert_eq!(reqs.len(), 500);
        for w in reqs.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 200, 50.0, &[3.0, 1.0]);
        let b = generate(42, 200, 50.0, &[3.0, 1.0]);
        assert_eq!(a, b);
        let c = generate(43, 200, 50.0, &[3.0, 1.0]);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        let rate = 100.0; // 10 ms expected gap
        let reqs = generate(1, 2_000, rate, &[1.0]);
        let mean_gap_s = reqs.last().unwrap().arrival.as_secs_f64() / reqs.len() as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap_s - expected).abs() < expected * 0.15,
            "mean gap {mean_gap_s} vs expected {expected}"
        );
    }

    #[test]
    fn mix_respects_weights() {
        let reqs = generate(9, 4_000, 1_000.0, &[3.0, 1.0]);
        let first = reqs.iter().filter(|r| r.model == 0).count();
        let share = first as f64 / reqs.len() as f64;
        assert!(
            (share - 0.75).abs() < 0.05,
            "model 0 share {share} should be ≈ 0.75"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_is_rejected() {
        generate(1, 10, 0.0, &[1.0]);
    }
}
