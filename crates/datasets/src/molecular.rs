//! ISO17-style molecular trajectories for MolDGNN.

use dgnn_graph::{Graph, Snapshot, SnapshotSequence};
use dgnn_tensor::{Tensor, TensorRng};

use crate::scale::Scale;
use crate::types::TrajectoryDataset;

/// Number of atoms in every ISO17 molecule (C7O2H10 isomers).
pub const ISO17_ATOMS: usize = 19;

/// ISO17-style dataset: many molecules, each a trajectory of bond graphs
/// over `frames` MD steps. The covalent skeleton stays fixed; transient
/// close-contact edges appear and disappear with thermal motion, so each
/// frame's adjacency differs slightly — the time-evolving topology whose
/// transfer cost dominates MolDGNN (Fig 7b).
pub fn iso17(scale: Scale, seed: u64) -> TrajectoryDataset {
    let n_molecules = scale.apply(640, 24);
    let frames = scale.apply(100, 12);
    let n_atoms = ISO17_ATOMS;

    let mut rng = TensorRng::seed(seed);
    let mut molecules = Vec::with_capacity(n_molecules);
    let mut positions = Vec::with_capacity(n_molecules * frames * n_atoms * 3);

    for _ in 0..n_molecules {
        // Fixed covalent skeleton: a random spanning tree plus a ring bond.
        let mut skeleton: Vec<(usize, usize)> = (1..n_atoms).map(|v| (v, rng.index(v))).collect();
        skeleton.push((0, n_atoms - 1));

        // Initial conformation.
        let mut coords: Vec<[f64; 3]> = (0..n_atoms)
            .map(|_| {
                [
                    rng.uniform_f64(-3.0, 3.0),
                    rng.uniform_f64(-3.0, 3.0),
                    rng.uniform_f64(-3.0, 3.0),
                ]
            })
            .collect();

        let mut frames_vec = Vec::with_capacity(frames);
        for f in 0..frames {
            // Thermal jitter.
            for c in &mut coords {
                for x in c.iter_mut() {
                    *x += rng.uniform_f64(-0.15, 0.15);
                }
            }
            // Edges: covalent bonds + transient close contacts.
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for &(a, b) in &skeleton {
                edges.push((a, b));
                edges.push((b, a));
            }
            for a in 0..n_atoms {
                for b in (a + 1)..n_atoms {
                    let d2: f64 = (0..3).map(|k| (coords[a][k] - coords[b][k]).powi(2)).sum();
                    if d2 < 1.2 {
                        edges.push((a, b));
                        edges.push((b, a));
                    }
                }
            }
            let graph = Graph::from_edges(n_atoms, &edges).expect("atom ids in range");
            frames_vec.push(Snapshot {
                time: f as f64,
                graph,
            });
            for c in &coords {
                #[expect(clippy::cast_possible_truncation, reason = "f32 coordinates suffice")]
                positions.extend(c.iter().map(|&x| x as f32));
            }
        }
        molecules.push(SnapshotSequence::new(frames_vec).expect("frames are time-ordered"));
    }

    let positions = Tensor::from_vec(positions, &[n_molecules * frames, n_atoms, 3])
        .expect("position buffer matches shape");

    TrajectoryDataset {
        name: "iso17",
        n_atoms,
        molecules,
        positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso17_shape() {
        let d = iso17(Scale::Tiny, 1);
        assert_eq!(d.name, "iso17");
        assert_eq!(d.n_atoms, ISO17_ATOMS);
        assert!(d.n_molecules() >= 24);
        assert!(d.frames_per_molecule() >= 12);
        assert_eq!(
            d.positions.dims(),
            &[d.n_molecules() * d.frames_per_molecule(), ISO17_ATOMS, 3]
        );
    }

    #[test]
    fn covalent_skeleton_persists_across_frames() {
        let d = iso17(Scale::Tiny, 2);
        let mol = &d.molecules[0];
        // Every frame must contain at least the skeleton's 2*(n) directed
        // edges; transient contacts only add.
        let min_edges = 2 * ISO17_ATOMS; // tree (18) + ring (1) doubled
        for frame in mol.iter() {
            assert!(frame.graph.n_edges() >= min_edges - 2);
        }
    }

    #[test]
    fn topology_actually_evolves() {
        let d = iso17(Scale::Tiny, 3);
        let mol = &d.molecules[0];
        let counts: Vec<usize> = mol.iter().map(|s| s.graph.n_edges()).collect();
        let distinct: std::collections::HashSet<usize> = counts.iter().copied().collect();
        assert!(distinct.len() > 1, "edge counts {counts:?} never change");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = iso17(Scale::Tiny, 4);
        let b = iso17(Scale::Tiny, 4);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.molecules[0], b.molecules[0]);
    }
}
