//! Deterministic graph partitioning for sharded multi-GPU execution.
//!
//! Snapshot models (MolDGNN, EvolveGCN) split a snapshot's node set
//! across devices; every edge whose endpoints land in different parts
//! becomes cross-device traffic priced on the interconnect. The
//! partitioner here is a greedy edge-cut heuristic — the standard
//! lightweight choice for online sharding (METIS-class optimizers are
//! out of scope for an analytical model) — made fully deterministic so
//! sharded runs replay bit-identically:
//!
//! * nodes are visited in degree-descending order, ties broken by node
//!   id ascending;
//! * each node goes to the part holding most of its already-assigned
//!   neighbors, ties broken by lighter load then lower part index;
//! * parts are capacity-bounded at `ceil(n / k)` nodes so the cut
//!   cannot degenerate into one giant part.
//!
//! Temporal models (TGAT, TGN) instead shard by contiguous node range
//! ([`contiguous_ranges`]): their working set is keyed by node id, so
//! range sharding keeps memory/feature lookups shard-local and makes
//! the cross-shard fraction of sampled neighbors an analyzable
//! quantity.

use crate::NodeId;

/// A node-to-part assignment plus the resulting edge cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `part[v]` is the part index (`0..k`) node `v` was assigned to.
    pub part: Vec<usize>,
    /// Number of parts.
    pub k: usize,
    /// Edges whose endpoints fall in different parts.
    pub cut_edges: usize,
    /// Total edges considered (self-loops included, counted once).
    pub total_edges: usize,
}

impl Partition {
    /// Fraction of edges crossing parts (0.0 when there are no edges).
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }

    /// Number of nodes assigned to `part`.
    pub fn part_size(&self, part: usize) -> usize {
        self.part.iter().filter(|&&p| p == part).count()
    }
}

/// Greedy deterministic edge-cut partition of an undirected graph given
/// as an edge list over `n_nodes` dense node ids.
///
/// Determinism: identical inputs produce identical assignments on every
/// run and thread count — the heuristic never consults ambient state.
/// `k == 1` assigns everything to part 0 with zero cut. `k > n_nodes`
/// leaves the surplus parts empty.
///
/// # Panics
///
/// Panics when `k == 0` or an edge endpoint is `>= n_nodes`.
pub fn greedy_edge_cut(n_nodes: usize, edges: &[(NodeId, NodeId)], k: usize) -> Partition {
    assert!(k > 0, "a partition needs at least one part");
    for &(u, v) in edges {
        assert!(
            u < n_nodes && v < n_nodes,
            "edge ({u}, {v}) outside the {n_nodes}-node id space"
        );
    }
    if k == 1 {
        return Partition {
            part: vec![0; n_nodes],
            k,
            cut_edges: 0,
            total_edges: edges.len(),
        };
    }
    // CSR adjacency (both directions) for neighbor affinity lookups.
    let mut degree = vec![0usize; n_nodes];
    for &(u, v) in edges {
        degree[u] += 1;
        if u != v {
            degree[v] += 1;
        }
    }
    let mut offsets = vec![0usize; n_nodes + 1];
    for v in 0..n_nodes {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let mut adj = vec![0 as NodeId; offsets[n_nodes]];
    let mut cursor = offsets.clone();
    for &(u, v) in edges {
        adj[cursor[u]] = v;
        cursor[u] += 1;
        if u != v {
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
    }

    // Degree-descending visit order, ties by node id: high-degree hubs
    // pick their part first so their neighborhoods can follow them.
    let mut order: Vec<NodeId> = (0..n_nodes).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(degree[v]), v));

    let capacity = n_nodes.div_ceil(k);
    const UNASSIGNED: usize = usize::MAX;
    let mut part = vec![UNASSIGNED; n_nodes];
    let mut load = vec![0usize; k];
    let mut affinity = vec![0usize; k];
    for &v in &order {
        for a in affinity.iter_mut() {
            *a = 0;
        }
        for &u in &adj[offsets[v]..offsets[v + 1]] {
            if part[u] != UNASSIGNED {
                affinity[part[u]] += 1;
            }
        }
        // Best part: most assigned neighbors, then lightest load, then
        // lowest index — all total orders, so the choice is unique.
        let mut best = usize::MAX;
        for p in 0..k {
            if load[p] >= capacity {
                continue;
            }
            if best == usize::MAX
                || affinity[p] > affinity[best]
                || (affinity[p] == affinity[best] && load[p] < load[best])
            {
                best = p;
            }
        }
        debug_assert_ne!(best, usize::MAX, "capacity ceil(n/k) * k >= n");
        part[v] = best;
        load[best] += 1;
    }

    let cut_edges = edges.iter().filter(|&&(u, v)| part[u] != part[v]).count();
    Partition {
        part,
        k,
        cut_edges,
        total_edges: edges.len(),
    }
}

/// Splits `0..n_nodes` into `k` contiguous ranges, sizes differing by at
/// most one (earlier ranges take the remainder). Temporal models shard
/// node state by these ranges so per-shard memory stays a dense slice.
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn contiguous_ranges(n_nodes: usize, k: usize) -> Vec<std::ops::Range<NodeId>> {
    assert!(k > 0, "a partition needs at least one part");
    let base = n_nodes / k;
    let rem = n_nodes % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for p in 0..k {
        let len = base + usize::from(p < rem);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_part_is_trivial() {
        let p = greedy_edge_cut(5, &[(0, 1), (2, 3)], 1);
        assert_eq!(p.part, vec![0; 5]);
        assert_eq!(p.cut_edges, 0);
        assert_eq!(p.cut_fraction(), 0.0);
    }

    #[test]
    fn two_cliques_split_cleanly_across_two_parts() {
        // Two disjoint 4-cliques: capacity ceil(8/2) = 4 forces one
        // clique per part, and neighbor affinity keeps each monochrome.
        let mut edges = Vec::new();
        for c in [0usize, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((c + i, c + j));
                }
            }
        }
        let p = greedy_edge_cut(8, &edges, 2);
        assert_eq!(p.cut_edges, 0, "disjoint cliques never cross");
        assert_eq!(p.part_size(0), 4);
        assert_eq!(p.part_size(1), 4);
        for clique in [[0, 1, 2, 3], [4, 5, 6, 7]] {
            let owner = p.part[clique[0]];
            assert!(clique.iter().all(|&v| p.part[v] == owner));
        }
    }

    #[test]
    fn bridged_cliques_cut_is_deterministic_and_bounded() {
        // Add one bridge between the cliques: the heuristic visits the
        // bridge endpoints first (highest degree), so the cut is not
        // guaranteed optimal — but it is deterministic and can never
        // exceed one clique's edge count plus the bridge.
        let mut edges = Vec::new();
        for c in [0usize, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((c + i, c + j));
                }
            }
        }
        edges.push((3, 4)); // bridge
        let a = greedy_edge_cut(8, &edges, 2);
        let b = greedy_edge_cut(8, &edges, 2);
        assert_eq!(a, b, "replays identically");
        assert_eq!(a.part_size(0), 4);
        assert_eq!(a.part_size(1), 4);
        assert!(a.cut_edges <= 7, "cut bounded by one clique + bridge");
        assert!(a.cut_fraction() > 0.0, "the bridge guarantees some cut");
    }

    #[test]
    fn capacity_bounds_every_part() {
        // A star graph wants every leaf with the hub; capacity forbids it.
        let edges: Vec<(usize, usize)> = (1..9).map(|v| (0, v)).collect();
        let p = greedy_edge_cut(9, &edges, 3);
        for part in 0..3 {
            assert!(p.part_size(part) <= 3, "ceil(9/3) = 3");
        }
        assert_eq!(p.part.iter().filter(|&&x| x == usize::MAX).count(), 0);
    }

    #[test]
    fn assignment_is_deterministic_across_calls() {
        let edges: Vec<(usize, usize)> = (0..40).map(|i| (i % 17, (i * 7 + 3) % 17)).collect();
        let a = greedy_edge_cut(17, &edges, 4);
        let b = greedy_edge_cut(17, &edges, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_nodes_balance_by_load() {
        let p = greedy_edge_cut(6, &[], 3);
        for part in 0..3 {
            assert_eq!(p.part_size(part), 2);
        }
        assert_eq!(p.total_edges, 0);
        assert_eq!(p.cut_fraction(), 0.0);
    }

    #[test]
    fn contiguous_ranges_cover_without_overlap() {
        let r = contiguous_ranges(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
        let r = contiguous_ranges(4, 4);
        assert_eq!(r, vec![0..1, 1..2, 2..3, 3..4]);
        let r = contiguous_ranges(2, 4);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 2);
        assert_eq!(r.len(), 4);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_endpoint_panics() {
        greedy_edge_cut(3, &[(0, 7)], 2);
    }
}
