//! Per-file scanners: LINT1 (hash iteration), LINT2 (nondeterminism
//! sources), LINT3 (pricing discipline) and LINT5 (float reduction
//! order). LINT4 is cross-file and lives in [`crate::structural`].
//!
//! All scans run over the lexer's *cleaned* text (comments and string
//! literals blanked), so pattern names appearing in docs or messages
//! never trigger findings — including in this crate's own sources.

use std::collections::BTreeSet;

use crate::model::SourceFile;
use crate::report::Finding;
use crate::rules::{LintRule, RuleSet, DECISION_PATH_CRATES, WALLCLOCK_ALLOWLIST};

/// Hash-container methods whose results depend on iteration order.
const ITERATION_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Scans one file against every enabled per-file rule.
pub fn scan_file(file: &SourceFile, rules: &RuleSet) -> Vec<Finding> {
    let mut out = Vec::new();
    if rules.has(LintRule::HashIteration) {
        scan_hash_iteration(file, &mut out);
    }
    if rules.has(LintRule::NondeterminismSource) {
        scan_nondeterminism(file, &mut out);
    }
    if rules.has(LintRule::PricingDiscipline) {
        scan_pricing(file, &mut out);
    }
    if rules.has(LintRule::FloatReductionOrder) {
        scan_float_reduction(file, &mut out);
    }
    out
}

/// Records a finding unless a valid `lint: allow` escape hatch covers
/// the line; an allow *without a rationale* is itself a finding.
fn push_finding(
    file: &SourceFile,
    out: &mut Vec<Finding>,
    rule: LintRule,
    line: usize,
    excerpt: String,
    message: String,
) {
    if let Some(allow) = file.lex.allow_for(rule.slug(), line) {
        if !allow.rationale.is_empty() {
            return;
        }
        out.push(Finding {
            rule,
            file: file.rel_path.clone(),
            line,
            function: file.lex.enclosing_fn(line).map(str::to_string),
            excerpt: excerpt.clone(),
            message: format!(
                "escape hatch on line {} has no rationale — `lint: allow({})` \
                 requires a non-empty justification; original finding: {message}",
                allow.line,
                rule.slug()
            ),
            suggestion: rule.suggestion(),
        });
        return;
    }
    out.push(Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        function: file.lex.enclosing_fn(line).map(str::to_string),
        excerpt,
        message,
        suggestion: rule.suggestion(),
    });
}

// ---------------------------------------------------------------- LINT1

/// LINT1: iteration over `HashMap`/`HashSet` in decision-path crates.
fn scan_hash_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    if !DECISION_PATH_CRATES.contains(&file.crate_name.as_str()) || file.in_tests_dir {
        return;
    }
    let idents = hash_idents(&file.lex.cleaned);
    if idents.is_empty() {
        return;
    }
    let cleaned = &file.lex.cleaned;

    // Method-call iteration: `m.values()`, `self.m.drain(..)`, ….
    for method in ITERATION_METHODS {
        for at in occurrences(cleaned, &format!(".{method}")) {
            let after = at + 1 + method.len();
            if !next_nonspace_is(cleaned, after, &['(', ':']) {
                continue;
            }
            let Some(base) = receiver_ident(cleaned, at) else {
                continue;
            };
            if !idents.contains(&base) {
                continue;
            }
            let line = line_of(cleaned, at);
            if file.is_test_context(line) {
                continue;
            }
            push_finding(
                file,
                out,
                LintRule::HashIteration,
                line,
                format!("{base}.{method}()"),
                format!(
                    "iteration over hash container `{base}` via `.{method}()` — \
                     visit order depends on hasher state"
                ),
            );
        }
    }

    // `for pat in m { … }` / `for pat in &m { … }`.
    for at in occurrences(cleaned, "for ") {
        let Some(in_rel) = cleaned[at..].find(" in ") else {
            continue;
        };
        let expr_start = at + in_rel + 4;
        let Some(brace_rel) = cleaned[expr_start..].find('{') else {
            continue;
        };
        let expr = cleaned[expr_start..expr_start + brace_rel].trim();
        let expr = expr
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim();
        let base = expr.strip_prefix("self.").unwrap_or(expr);
        if !base.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') || base.is_empty() {
            continue;
        }
        if !idents.contains(base) {
            continue;
        }
        let line = line_of(cleaned, at);
        if file.is_test_context(line) {
            continue;
        }
        push_finding(
            file,
            out,
            LintRule::HashIteration,
            line,
            format!("for … in {expr}"),
            format!(
                "for-loop over hash container `{base}` — visit order depends \
                 on hasher state"
            ),
        );
    }
}

/// Identifiers declared as `HashMap`/`HashSet` in this file: type
/// annotations (`x: HashMap<…>`, struct fields, `&HashMap` params) and
/// constructor bindings (`let mut x = HashMap::new()`).
fn hash_idents(cleaned: &str) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for container in ["HashMap", "HashSet"] {
        for at in occurrences(cleaned, container) {
            // Effective start: absorb a `std::collections::` path prefix.
            let mut start = at;
            for prefix in ["collections::", "std::"] {
                if cleaned[..start].ends_with(prefix) {
                    start -= prefix.len();
                }
            }
            let mut before = cleaned[..start].trim_end();
            // Absorb `&` / `&mut` so reference-typed positions
            // (`m: &HashMap<…>`) still resolve to their identifier.
            if let Some(b) = before.strip_suffix("mut") {
                before = b.trim_end();
            }
            before = before.trim_end_matches('&').trim_end();
            if let Some(rest) = before.strip_suffix(':') {
                // Type position: `ident: [&][mut ]HashMap<…>`. A `::`
                // path (use statements, `foo::HashMap`) is not one.
                if rest.ends_with(':') {
                    continue;
                }
                let rest = rest.trim_end();
                if let Some(id) = trailing_ident(rest) {
                    idents.insert(id);
                }
            } else if let Some(rest) = before.strip_suffix('=') {
                // Constructor binding: `let [mut] ident = HashMap::new()`.
                if !cleaned[at..].starts_with(&format!("{container}::")) {
                    continue;
                }
                if let Some(id) = trailing_ident(rest.trim_end()) {
                    idents.insert(id);
                }
            }
        }
    }
    idents
}

// ---------------------------------------------------------------- LINT2

/// LINT2 banned sources: `(pattern, class, what)`.
const NONDET_SOURCES: [(&str, SourceClass, &str); 7] = [
    ("Instant::now", SourceClass::WallClock, "wall-clock read"),
    ("SystemTime", SourceClass::WallClock, "wall-clock read"),
    ("thread_rng", SourceClass::Entropy, "OS-seeded RNG"),
    ("from_entropy", SourceClass::Entropy, "OS-seeded RNG"),
    ("RandomState", SourceClass::Entropy, "hasher entropy"),
    ("getrandom", SourceClass::Entropy, "OS randomness"),
    ("env::var", SourceClass::Environment, "environment read"),
];

/// Which allowlist a banned pattern falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceClass {
    /// `Instant::now` / `SystemTime` — legal only in the bench harness.
    WallClock,
    /// OS randomness — never legal without an escape hatch.
    Entropy,
    /// Environment reads — configuration must be explicit.
    Environment,
}

/// LINT2: nondeterminism sources outside the bench-harness allowlist.
fn scan_nondeterminism(file: &SourceFile, out: &mut Vec<Finding>) {
    let cleaned = &file.lex.cleaned;
    for (pattern, class, what) in NONDET_SOURCES {
        if class == SourceClass::WallClock && WALLCLOCK_ALLOWLIST.contains(&file.rel_path.as_str())
        {
            continue;
        }
        for at in occurrences(cleaned, pattern) {
            let line = line_of(cleaned, at);
            push_finding(
                file,
                out,
                LintRule::NondeterminismSource,
                line,
                pattern.to_string(),
                format!(
                    "{what} (`{pattern}`) — simulated pricing and sampling must \
                     not observe host time, entropy or environment"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- LINT3

/// LINT3: timeline pushes / lane-clock mutation outside `dgnn-device`.
fn scan_pricing(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.crate_name == "device" || file.in_tests_dir {
        return;
    }
    let cleaned = &file.lex.cleaned;

    // Raw `TimelineEvent { … }` construction (return-type braces and
    // destructuring in test modules are exempted elsewhere).
    for at in occurrences(cleaned, "TimelineEvent") {
        let after = at + "TimelineEvent".len();
        if !next_nonspace_is(cleaned, after, &['{']) {
            continue;
        }
        // `-> …TimelineEvent {` is a function's return type, not a
        // struct literal: scan back over path segments for an arrow.
        let mut back = cleaned[..at].trim_end();
        while let Some(stripped) = back.strip_suffix("::") {
            let no_ident =
                stripped.trim_end_matches(|c: char| c.is_ascii_alphanumeric() || c == '_');
            back = no_ident.trim_end();
        }
        if back.ends_with("->") {
            continue;
        }
        let line = line_of(cleaned, at);
        if file.is_test_context(line) {
            continue;
        }
        push_finding(
            file,
            out,
            LintRule::PricingDiscipline,
            line,
            "TimelineEvent { … }".to_string(),
            "raw TimelineEvent construction outside dgnn-device — events \
             must be emitted by the Dispatcher/Executor so priced = computed"
                .to_string(),
        );
    }

    // Direct pushes and lane-clock mutation.
    for (pattern, what) in [
        ("Timeline::push", "direct timeline push"),
        (".clock_mut(", "lane-clock mutation"),
        ("lane_clock", "lane-clock mutation"),
        ("timeline.push(", "direct timeline push"),
        ("tl.push(", "direct timeline push"),
    ] {
        for at in occurrences(cleaned, pattern) {
            let line = line_of(cleaned, at);
            if file.is_test_context(line) {
                continue;
            }
            push_finding(
                file,
                out,
                LintRule::PricingDiscipline,
                line,
                pattern.trim_end_matches('(').to_string(),
                format!(
                    "{what} outside dgnn-device — all priced work must flow \
                     through Dispatcher/Executor"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- LINT5

/// LINT5: unordered float reductions in parallel modules.
fn scan_float_reduction(file: &SourceFile, out: &mut Vec<Finding>) {
    let cleaned = &file.lex.cleaned;
    let parallel = cleaned.contains("thread::spawn") || cleaned.contains("thread::scope");
    if !parallel || file.in_tests_dir {
        return;
    }
    let idents = hash_idents(cleaned);
    for pattern in [".sum::<f32>", ".sum::<f64>", ".fold("] {
        for at in occurrences(cleaned, pattern) {
            let line = line_of(cleaned, at);
            if file.is_test_context(line) {
                continue;
            }
            // The reduction's source chain: back to the statement edge.
            let stmt_start = cleaned[..at].rfind([';', '{', '}']).map_or(0, |p| p + 1);
            let chain = &cleaned[stmt_start..at];
            let over_hash = ITERATION_METHODS.iter().any(|m| {
                occurrences(chain, &format!(".{m}"))
                    .iter()
                    .any(|&p| receiver_ident(chain, p).is_some_and(|base| idents.contains(&base)))
            });
            let unordered = chain.contains(".values()")
                || chain.contains(".keys()")
                || chain.contains(".try_iter()")
                || over_hash;
            if !unordered {
                continue;
            }
            // `.fold` only matters for float accumulators.
            if pattern == ".fold(" {
                let args = &cleaned[at..cleaned.len().min(at + 48)];
                if !(args.contains("0.0") || args.contains("f32") || args.contains("f64")) {
                    continue;
                }
            }
            push_finding(
                file,
                out,
                LintRule::FloatReductionOrder,
                line,
                format!("…{}", pattern.trim_start_matches('.')),
                "float reduction over an unordered source in a parallel \
                 module — float addition is not associative, so the result \
                 depends on visit order"
                    .to_string(),
            );
        }
    }
}

// ------------------------------------------------------------- helpers

/// Byte offsets of every word-boundary occurrence of `pattern`.
fn occurrences(haystack: &str, pattern: &str) -> Vec<usize> {
    let mut offs = Vec::new();
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    let starts_ident = pattern.starts_with(|c: char| is_ident_byte(c as u8));
    while let Some(p) = haystack[from..].find(pattern) {
        let at = from + p;
        let before_ok = !starts_ident || at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + pattern.len();
        let after_ok = end >= bytes.len()
            || !pattern.ends_with(|c: char| is_ident_byte(c as u8))
            || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            offs.push(at);
        }
        from = at + pattern.len().max(1);
    }
    offs
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether the next non-space byte at/after `from` is one of `want`.
fn next_nonspace_is(s: &str, from: usize, want: &[char]) -> bool {
    s[from.min(s.len())..]
        .chars()
        .find(|c| !c.is_whitespace())
        .is_some_and(|c| want.contains(&c))
}

/// The receiver identifier of a `.method(` occurrence at `dot`:
/// `ident.method` or `self.ident.method` → `ident`. Chained receivers
/// (`x.clone().method()`) are unresolvable and yield `None`.
fn receiver_ident(s: &str, dot: usize) -> Option<String> {
    let before = &s[..dot];
    let trimmed = before.trim_end();
    let id = trailing_ident(trimmed)?;
    // `self.ident` is fine; `other.ident` is a foreign field — still
    // report the field name, the declaration scan is file-scoped anyway.
    Some(id)
}

/// The identifier ending at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut start = bytes.len();
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == bytes.len() {
        return None;
    }
    let id = &s[start..];
    if id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(id.to_string())
}

/// 1-based line number of byte offset `at`.
fn line_of(s: &str, at: usize) -> usize {
    1 + s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_file(src: &str) -> SourceFile {
        SourceFile::from_source("crates/serve/src/sim.rs", src.to_string())
    }

    #[test]
    fn hash_iteration_is_flagged_and_point_lookups_pass() {
        let src = "use std::collections::HashMap;\n\
                   fn step() {\n\
                   let mut pending: HashMap<u64, u64> = HashMap::new();\n\
                   pending.insert(1, 2);\n\
                   let _ = pending.get(&1);\n\
                   for (k, v) in &pending { let _ = (k, v); }\n\
                   let total: u64 = pending.values().sum();\n\
                   }\n";
        let f = serve_file(src);
        let findings = scan_file(&f, &RuleSet::only(&[LintRule::HashIteration]));
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings.iter().any(|x| x.excerpt.contains("for …")));
        assert!(findings.iter().any(|x| x.excerpt.contains("values")));
        assert_eq!(findings[0].function.as_deref(), Some("step"));
    }

    #[test]
    fn btree_iteration_and_non_decision_crates_pass() {
        let src = "use std::collections::BTreeMap;\n\
                   fn ok() { let m: BTreeMap<u64, u64> = BTreeMap::new();\n\
                   for (k, v) in &m { let _ = (k, v); } }\n";
        let f = serve_file(src);
        assert!(scan_file(&f, &RuleSet::all()).is_empty());
        // The same hash iteration in a non-decision-path crate passes.
        let bad = "fn f() { let m = std::collections::HashMap::<u8, u8>::new();\n\
                   for x in &m { let _ = x; } }\n";
        let f = SourceFile::from_source("crates/datasets/src/events.rs", bad.to_string());
        assert!(scan_file(&f, &RuleSet::only(&[LintRule::HashIteration])).is_empty());
    }

    #[test]
    fn allow_with_rationale_suppresses_and_empty_rationale_reports() {
        let with = "fn f() { let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                    // lint: allow(hash-iteration) — drained into a sort below\n\
                    let mut v: Vec<_> = m.iter().collect();\n\
                    v.sort(); }\n";
        let f = serve_file(with);
        assert!(scan_file(&f, &RuleSet::only(&[LintRule::HashIteration])).is_empty());
        let without = "fn f() { let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                       // lint: allow(hash-iteration)\n\
                       let _ = m.keys().count(); }\n";
        let f = serve_file(without);
        let findings = scan_file(&f, &RuleSet::only(&[LintRule::HashIteration]));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no rationale"));
    }

    #[test]
    fn cfg_test_hash_iteration_is_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\nmod tests {\n\
                   fn t() { let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                   for x in &m { let _ = x; } }\n}\n";
        let f = serve_file(src);
        assert!(scan_file(&f, &RuleSet::all()).is_empty());
    }

    #[test]
    fn nondeterminism_sources_are_flagged_except_allowlist() {
        let src = "fn t() { let t0 = std::time::Instant::now();\n\
                   let s = std::env::var(\"X\"); let _ = (t0, s); }\n";
        let f = SourceFile::from_source("crates/models/src/tgn.rs", src.to_string());
        let findings = scan_file(&f, &RuleSet::only(&[LintRule::NondeterminismSource]));
        assert_eq!(findings.len(), 2, "{findings:#?}");
        // The harness may read the wall clock (but not the environment).
        let f = SourceFile::from_source("crates/bench/src/harness.rs", src.to_string());
        let findings = scan_file(&f, &RuleSet::only(&[LintRule::NondeterminismSource]));
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].excerpt.contains("env::var"));
    }

    #[test]
    fn pricing_discipline_flags_raw_events_outside_device() {
        let src = "fn f(tl: &mut Timeline) {\n\
                   tl.push(TimelineEvent { start: 0, end: 1 });\n\
                   }\n";
        let f = serve_file(src);
        let findings = scan_file(&f, &RuleSet::only(&[LintRule::PricingDiscipline]));
        assert_eq!(findings.len(), 2, "{findings:#?}");
        // The same code inside dgnn-device internals is the implementation.
        let f = SourceFile::from_source("crates/device/src/executor.rs", src.to_string());
        assert!(scan_file(&f, &RuleSet::all()).is_empty());
        // A return type `-> TimelineEvent {` is not a literal.
        let ret = "fn mk() -> dgnn_device::TimelineEvent { unreachable() }\n";
        let f = serve_file(ret);
        let findings = scan_file(&f, &RuleSet::only(&[LintRule::PricingDiscipline]));
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn float_reduction_over_unordered_source_in_parallel_module() {
        let src = "fn f() { let m: std::collections::HashMap<u64, f32> = Default::default();\n\
                   std::thread::scope(|_s| {});\n\
                   let x: f32 = m.values().copied().sum::<f32>(); let _ = x; }\n";
        let f = SourceFile::from_source("crates/tensor/src/par.rs", src.to_string());
        let findings = scan_file(&f, &RuleSet::only(&[LintRule::FloatReductionOrder]));
        assert_eq!(findings.len(), 1, "{findings:#?}");
        // Ordered slice reductions pass, even in a parallel module.
        let ok = "fn f(v: &[f32]) { std::thread::scope(|_s| {});\n\
                  let x: f32 = v.iter().sum::<f32>(); let _ = x; }\n";
        let f = SourceFile::from_source("crates/tensor/src/par.rs", ok.to_string());
        assert!(scan_file(&f, &RuleSet::only(&[LintRule::FloatReductionOrder])).is_empty());
    }

    #[test]
    fn occurrences_respect_word_boundaries() {
        assert_eq!(occurrences("HashMap HashMapX xHashMap", "HashMap"), vec![0]);
        assert_eq!(occurrences("a.iter() b.iter_mut()", ".iter").len(), 1);
    }
}
