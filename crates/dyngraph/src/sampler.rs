//! Temporal neighbor sampling — the paper's workload-imbalance culprit.
//!
//! TGAT (and TGN) sample a fixed number of *past* neighbors for every
//! target node, honoring event time: only interactions strictly earlier
//! than the query time are eligible. The reference implementations keep a
//! per-node, time-sorted adjacency and use **bisection** plus index
//! sorting, which produces the irregular CPU memory traffic Section 4.2
//! blames for starving the GPU. Sampling here returns both the sample and
//! a [`SampleCost`] so the executor can charge that CPU time faithfully.
//!
//! # Engine layout
//!
//! [`TemporalAdjacency`] is a flat CSR index: one `offsets` array plus
//! struct-of-arrays `neighbors`/`times`/`feature_idx` slabs, so a node's
//! whole history is one contiguous slice and bisection/gathers walk
//! contiguous memory instead of chasing `Vec<Vec<…>>` pointers.
//!
//! Sampling itself is written against the [`TemporalView`] trait — the
//! minimal read interface (degree, entry gather, strict-lower-bound
//! bisection) — so the same code serves the frozen CSR and the two-tier
//! streaming store (`StreamingAdjacency`'s borrowed snapshot,
//! [`crate::StreamingView`]) with byte-identical results and costs.
//!
//! # Determinism under parallelism
//!
//! Every sampling call derives its RNG stream from
//! `(sampler seed, node, query time)` rather than consuming a shared
//! sequential stream. A call is therefore a pure function of its
//! arguments, which makes the batch APIs ([`NeighborSampler::sample_batch`],
//! [`NeighborSampler::sample_khop_batch`]) byte-identical to their serial
//! counterparts for any worker-thread count: each root's subtree is
//! reproduced independently and results are concatenated in root order.

use dgnn_tensor::TensorRng;

use crate::{par, EventStream, NodeId};

/// One sampled temporal neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledNeighbor {
    /// Neighbor node id.
    pub node: NodeId,
    /// Time of the interaction that created the edge.
    pub time: f64,
    /// Edge-feature row of the interaction that produced this neighbor;
    /// `None` for root-layer entries, which were not reached through any
    /// interaction and must never be used to index the edge-feature
    /// table.
    pub feature_idx: Option<usize>,
}

/// Work performed by a sampling call, for host-cost pricing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleCost {
    /// Comparison/index operations (bisection steps, RNG draws, sorts).
    pub ops: u64,
    /// Bytes touched with irregular access (adjacency rows, gathers).
    pub irregular_bytes: u64,
}

impl SampleCost {
    /// Accumulates another cost.
    pub fn add(&mut self, other: SampleCost) {
        self.ops += other.ops;
        self.irregular_bytes += other.irregular_bytes;
    }
}

/// How neighbors are drawn from the eligible past.
///
/// # Ordering contract
///
/// * [`SampleStrategy::MostRecent`] returns the window **most-recent
///   first** (descending time), matching the reference TGAT
///   `find_before` + tail-slice convention: index 0 is the latest
///   eligible interaction.
/// * [`SampleStrategy::Uniform`] returns draws in **ascending adjacency
///   order** (the reference sorts sampled indices so the feature gather
///   walks forward — the "node index sorting" the paper mentions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// The `k` most recent interactions before the query time,
    /// most-recent first.
    MostRecent,
    /// `k` uniform draws (with replacement) from the eligible past —
    /// TGAT's `--uniform` flag.
    Uniform,
}

/// Per-node, time-sorted adjacency in CSR (compressed sparse row) form.
///
/// Each undirected occurrence is indexed on both endpoints, matching the
/// reference TGAT preprocessing. Node `v`'s interactions occupy the
/// contiguous range `offsets[v]..offsets[v + 1]` of the three
/// struct-of-arrays slabs, sorted by time.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalAdjacency {
    /// `n_nodes + 1` row boundaries into the slabs.
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    times: Vec<f64>,
    feature_idx: Vec<usize>,
}

impl TemporalAdjacency {
    /// Builds the CSR index from a stream in two passes: degree count +
    /// prefix sum, then a fill in stream order (events arrive
    /// time-sorted, so every row ends up time-sorted too).
    pub fn from_stream(stream: &EventStream) -> Self {
        let n = stream.n_nodes();
        let mut degree = vec![0usize; n];
        for e in stream.events() {
            degree[e.src] += 1;
            degree[e.dst] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut neighbors = vec![0 as NodeId; acc];
        let mut times = vec![0.0f64; acc];
        let mut feature_idx = vec![0usize; acc];
        let mut cursor = offsets[..n].to_vec();
        for e in stream.events() {
            for (from, to) in [(e.src, e.dst), (e.dst, e.src)] {
                let at = cursor[from];
                neighbors[at] = to;
                times[at] = e.time;
                feature_idx[at] = e.feature_idx;
                cursor[from] += 1;
            }
        }
        TemporalAdjacency {
            offsets,
            neighbors,
            times,
            feature_idx,
        }
    }

    /// Number of nodes indexed.
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total indexed interaction endpoints (twice the event count).
    pub fn n_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Total degree (interactions) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.offsets[node + 1] - self.offsets[node]
    }

    /// The contiguous CSR row of `node`: `(neighbors, times, feature
    /// rows)`, time-sorted.
    pub fn row(&self, node: NodeId) -> (&[NodeId], &[f64], &[usize]) {
        let r = self.offsets[node]..self.offsets[node + 1];
        (
            &self.neighbors[r.clone()],
            &self.times[r.clone()],
            &self.feature_idx[r],
        )
    }

    /// Bisection: number of interactions of `node` strictly before `t`,
    /// together with the number of comparison steps taken. A node with
    /// no history costs nothing — there is no array to bisect.
    pub fn count_before(&self, node: NodeId, t: f64) -> (usize, u64) {
        let (_, times, _) = self.row(node);
        if times.is_empty() {
            return (0, 0);
        }
        let idx = times.partition_point(|&x| x < t);
        #[expect(clippy::cast_possible_truncation, reason = "log2 of a length fits u64")]
        let steps = (times.len() as f64).log2().ceil() as u64 + 1;
        (idx, steps)
    }
}

/// The read interface sampling needs from a temporal adjacency: a row
/// length, a random-access entry gather, and a strict-lower-bound
/// bisection with its step count.
///
/// Implementors present each node's history as one logical time-sorted
/// row `0..degree(node)`, whatever the physical layout — a contiguous
/// frozen CSR row ([`TemporalAdjacency`]) or a base-prefix ++ delta-log
/// composition ([`crate::StreamingView`]). Two views exposing the same
/// logical rows produce byte-identical samples *and* byte-identical
/// [`SampleCost`]s, because every cost term is derived from logical row
/// lengths and counts, never from the physical layout.
///
/// `Sync` is required so the batch APIs can fan a borrowed view out
/// across worker threads without cloning it.
pub trait TemporalView: Sync {
    /// Number of nodes indexed.
    fn n_nodes(&self) -> usize;

    /// Logical row length (total interactions) of `node`.
    fn degree(&self, node: NodeId) -> usize;

    /// Entry `i` of `node`'s time-sorted row:
    /// `(neighbor, time, edge-feature row)`.
    fn entry(&self, node: NodeId, i: usize) -> (NodeId, f64, usize);

    /// Number of interactions of `node` strictly before `t`, plus the
    /// bisection comparison steps taken (zero for an empty row).
    fn count_before(&self, node: NodeId, t: f64) -> (usize, u64);
}

impl TemporalView for TemporalAdjacency {
    fn n_nodes(&self) -> usize {
        TemporalAdjacency::n_nodes(self)
    }

    fn degree(&self, node: NodeId) -> usize {
        TemporalAdjacency::degree(self, node)
    }

    fn entry(&self, node: NodeId, i: usize) -> (NodeId, f64, usize) {
        let (neighbors, times, feature_idx) = self.row(node);
        (neighbors[i], times[i], feature_idx[i])
    }

    fn count_before(&self, node: NodeId, t: f64) -> (usize, u64) {
        TemporalAdjacency::count_before(self, node, t)
    }
}

/// Draws temporal neighbor samples and accounts their CPU cost.
///
/// All methods take `&self`: each call derives a private RNG stream from
/// `(seed, node, query time)`, so sampling is a pure function of its
/// arguments and safe to fan out across threads (see module docs).
#[derive(Debug, Clone)]
pub struct NeighborSampler {
    seed: u64,
    strategy: SampleStrategy,
}

impl NeighborSampler {
    /// Creates a sampler with a fixed seed.
    pub fn new(strategy: SampleStrategy, seed: u64) -> Self {
        NeighborSampler { seed, strategy }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SampleStrategy {
        self.strategy
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the per-call RNG stream for `(node, t)`: the seed and both
    /// call coordinates are mixed murmur3-style into the 64-bit key that
    /// seeds an independent xoshiro stream.
    fn stream_for(&self, node: NodeId, t: f64) -> TensorRng {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for w in [node as u64, t.to_bits()] {
            h ^= w.wrapping_mul(0xff51_afd7_ed55_8ccd).rotate_left(31);
            h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        }
        TensorRng::seed(h)
    }

    /// Samples up to `k` neighbors of `node` that interacted strictly
    /// before `t`, through any [`TemporalView`] (frozen CSR or streaming
    /// snapshot). Returns fewer than `k` (possibly zero) when the
    /// eligible past is smaller — only for [`SampleStrategy::MostRecent`];
    /// uniform sampling draws with replacement and always returns `k`
    /// unless the past is empty. See [`SampleStrategy`] for the ordering
    /// contract.
    pub fn sample<V: TemporalView + ?Sized>(
        &self,
        adj: &V,
        node: NodeId,
        t: f64,
        k: usize,
    ) -> (Vec<SampledNeighbor>, SampleCost) {
        let (eligible, bisect_steps) = adj.count_before(node, t);
        let mut cost = SampleCost {
            ops: bisect_steps,
            // The bisection touches log(d) scattered cache lines of 64 B.
            irregular_bytes: bisect_steps * 64,
        };
        if eligible == 0 {
            return (Vec::new(), cost);
        }
        let pick = |i: usize| {
            let (node, time, feature_idx) = adj.entry(node, i);
            SampledNeighbor {
                node,
                time,
                feature_idx: Some(feature_idx),
            }
        };
        let picked: Vec<SampledNeighbor> = match self.strategy {
            SampleStrategy::MostRecent => {
                let take = k.min(eligible);
                // Most-recent first: walk the tail of the window backward.
                (eligible - take..eligible).rev().map(pick).collect()
            }
            SampleStrategy::Uniform => {
                let mut rng = self.stream_for(node, t);
                let mut idx: Vec<usize> = (0..k).map(|_| rng.index(eligible)).collect();
                // Reference implementation sorts sampled indices so the
                // gather walks forward — the "node index sorting" the
                // paper mentions.
                idx.sort_unstable();
                #[expect(clippy::cast_possible_truncation, reason = "k·log₂k op count fits u64")]
                {
                    cost.ops += (k as f64 * (k.max(2) as f64).log2()) as u64;
                }
                idx.into_iter().map(pick).collect()
            }
        };
        // Each picked neighbor gathers one adjacency record (~16 B) plus
        // one cache line of feature pointer indirection.
        cost.ops += picked.len() as u64;
        cost.irregular_bytes += picked.len() as u64 * 80;
        (picked, cost)
    }

    /// Recursive k-hop sampling: layer `l` samples `ks[l]` neighbors of
    /// every node sampled at layer `l-1`. Returns the flattened frontier
    /// per layer (layer 0 = the roots, with `feature_idx: None`) and the
    /// accumulated cost.
    pub fn sample_khop<V: TemporalView + ?Sized>(
        &self,
        adj: &V,
        roots: &[(NodeId, f64)],
        ks: &[usize],
    ) -> (Vec<Vec<SampledNeighbor>>, SampleCost) {
        let mut cost = SampleCost::default();
        let mut layers: Vec<Vec<SampledNeighbor>> = Vec::with_capacity(ks.len() + 1);
        let mut frontier: Vec<SampledNeighbor> = roots
            .iter()
            .map(|&(node, time)| SampledNeighbor {
                node,
                time,
                feature_idx: None,
            })
            .collect();
        for &k in ks {
            let mut next = Vec::with_capacity(frontier.len().saturating_mul(k));
            for s in &frontier {
                let (picked, c) = self.sample(adj, s.node, s.time, k);
                cost.add(c);
                next.extend(picked);
            }
            layers.push(std::mem::replace(&mut frontier, next));
        }
        layers.push(frontier);
        (layers, cost)
    }

    /// Single-hop batch sampling: one sample per root, fanned out over
    /// worker threads. Element `i` of the result is exactly what
    /// `self.sample(adj, roots[i].0, roots[i].1, k)` returns, and the
    /// cost is the sum over roots — byte-identical to the serial loop.
    /// The view is borrowed by the workers, never cloned — a streaming
    /// snapshot fans out as cheaply as a frozen CSR.
    pub fn sample_batch<V: TemporalView + ?Sized>(
        &self,
        adj: &V,
        roots: &[(NodeId, f64)],
        k: usize,
    ) -> (Vec<Vec<SampledNeighbor>>, SampleCost) {
        self.sample_batch_threads(adj, roots, k, par::max_threads())
    }

    /// [`NeighborSampler::sample_batch`] with an explicit thread cap.
    pub fn sample_batch_threads<V: TemporalView + ?Sized>(
        &self,
        adj: &V,
        roots: &[(NodeId, f64)],
        k: usize,
        threads: usize,
    ) -> (Vec<Vec<SampledNeighbor>>, SampleCost) {
        let per_root =
            par::par_map_threads(roots, threads, |&(node, t)| self.sample(adj, node, t, k));
        let mut cost = SampleCost::default();
        let samples = per_root
            .into_iter()
            .map(|(picked, c)| {
                cost.add(c);
                picked
            })
            .collect();
        (samples, cost)
    }

    /// K-hop batch sampling: fans [`NeighborSampler::sample_khop`] out
    /// over roots on worker threads and concatenates each layer in root
    /// order, which reproduces the serial layer layout exactly (the
    /// serial pass also visits layer `l` root-subtree by root-subtree).
    /// Byte-identical samples and [`SampleCost`] to the serial call for
    /// any thread count.
    pub fn sample_khop_batch<V: TemporalView + ?Sized>(
        &self,
        adj: &V,
        roots: &[(NodeId, f64)],
        ks: &[usize],
    ) -> (Vec<Vec<SampledNeighbor>>, SampleCost) {
        self.sample_khop_batch_threads(adj, roots, ks, par::max_threads())
    }

    /// [`NeighborSampler::sample_khop_batch`] with an explicit thread cap.
    pub fn sample_khop_batch_threads<V: TemporalView + ?Sized>(
        &self,
        adj: &V,
        roots: &[(NodeId, f64)],
        ks: &[usize],
        threads: usize,
    ) -> (Vec<Vec<SampledNeighbor>>, SampleCost) {
        let per_root = par::par_map_threads(roots, threads, |&root| {
            self.sample_khop(adj, std::slice::from_ref(&root), ks)
        });
        let mut layers: Vec<Vec<SampledNeighbor>> = (0..=ks.len()).map(|_| Vec::new()).collect();
        let mut cost = SampleCost::default();
        for (root_layers, c) in per_root {
            cost.add(c);
            for (l, mut layer) in root_layers.into_iter().enumerate() {
                layers[l].append(&mut layer);
            }
        }
        (layers, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TemporalEvent;

    fn stream() -> EventStream {
        let events = vec![
            TemporalEvent {
                src: 0,
                dst: 1,
                time: 1.0,
                feature_idx: 0,
            },
            TemporalEvent {
                src: 0,
                dst: 2,
                time: 2.0,
                feature_idx: 1,
            },
            TemporalEvent {
                src: 1,
                dst: 2,
                time: 3.0,
                feature_idx: 2,
            },
            TemporalEvent {
                src: 0,
                dst: 3,
                time: 4.0,
                feature_idx: 3,
            },
        ];
        EventStream::new(4, events).unwrap()
    }

    #[test]
    fn adjacency_indexes_both_endpoints() {
        let adj = TemporalAdjacency::from_stream(&stream());
        assert_eq!(adj.degree(0), 3);
        assert_eq!(adj.degree(2), 2);
        assert_eq!(adj.degree(3), 1);
        assert_eq!(adj.n_entries(), 8);
    }

    #[test]
    fn csr_rows_are_time_sorted_and_consistent() {
        let adj = TemporalAdjacency::from_stream(&stream());
        for node in 0..adj.n_nodes() {
            let (neighbors, times, feats) = adj.row(node);
            assert_eq!(neighbors.len(), adj.degree(node));
            assert_eq!(times.len(), adj.degree(node));
            assert_eq!(feats.len(), adj.degree(node));
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
        // Node 0 interacted with 1, 2, 3 at times 1, 2, 4.
        let (neighbors, times, feats) = adj.row(0);
        assert_eq!(neighbors, &[1, 2, 3]);
        assert_eq!(times, &[1.0, 2.0, 4.0]);
        assert_eq!(feats, &[0, 1, 3]);
    }

    #[test]
    fn count_before_respects_strictness() {
        let adj = TemporalAdjacency::from_stream(&stream());
        assert_eq!(adj.count_before(0, 2.0).0, 1); // only t=1.0
        assert_eq!(adj.count_before(0, 4.5).0, 3);
        assert_eq!(adj.count_before(3, 4.0).0, 0);
    }

    #[test]
    fn most_recent_returns_latest_first_eligible() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let s = NeighborSampler::new(SampleStrategy::MostRecent, 1);
        let (picked, cost) = s.sample(&adj, 0, 4.5, 2);
        assert_eq!(picked.len(), 2);
        // The two most recent, most-recent first: times 4.0 then 2.0.
        assert_eq!(picked[0].time, 4.0);
        assert_eq!(picked[1].time, 2.0);
        assert_eq!(picked[0].feature_idx, Some(3));
        assert!(cost.ops > 0 && cost.irregular_bytes > 0);
    }

    #[test]
    fn all_samples_precede_query_time() {
        let adj = TemporalAdjacency::from_stream(&stream());
        for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
            let s = NeighborSampler::new(strategy, 9);
            let (picked, _) = s.sample(&adj, 0, 3.0, 10);
            assert!(!picked.is_empty());
            assert!(picked.iter().all(|n| n.time < 3.0));
        }
    }

    #[test]
    fn empty_past_returns_nothing() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let s = NeighborSampler::new(SampleStrategy::Uniform, 2);
        // Node 2 has history (degree 2) but none of it precedes t=2.0:
        // the bisection over its non-empty row still costs.
        let (picked, cost) = s.sample(&adj, 2, 2.0, 5);
        assert!(picked.is_empty());
        assert!(cost.ops > 0, "bisection over non-empty history costs");
    }

    #[test]
    fn degree_zero_node_costs_nothing() {
        // Node 2 never appears in any event: no adjacency row exists, so
        // there is nothing to bisect and nothing to charge.
        let lone = EventStream::new(
            3,
            vec![TemporalEvent {
                src: 0,
                dst: 1,
                time: 1.0,
                feature_idx: 0,
            }],
        )
        .unwrap();
        let adj = TemporalAdjacency::from_stream(&lone);
        assert_eq!(adj.degree(2), 0);
        assert_eq!(adj.count_before(2, 5.0), (0, 0));
        let s = NeighborSampler::new(SampleStrategy::MostRecent, 2);
        let (picked, cost) = s.sample(&adj, 2, 5.0, 4);
        assert!(picked.is_empty());
        assert_eq!(cost, SampleCost::default());
    }

    #[test]
    fn uniform_draws_with_replacement_fill_k() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let s = NeighborSampler::new(SampleStrategy::Uniform, 3);
        let (picked, _) = s.sample(&adj, 0, 4.5, 8);
        assert_eq!(picked.len(), 8);
        assert!(picked.iter().all(|n| n.feature_idx.is_some()));
    }

    #[test]
    fn khop_layers_expand() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let s = NeighborSampler::new(SampleStrategy::MostRecent, 4);
        let (layers, cost) = s.sample_khop(&adj, &[(0, 4.5)], &[2, 2]);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].len(), 1);
        assert_eq!(layers[1].len(), 2);
        assert!(layers[2].len() <= 4);
        assert!(cost.irregular_bytes > 0);
    }

    #[test]
    fn root_layer_has_no_feature_rows_but_hops_do() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let s = NeighborSampler::new(SampleStrategy::Uniform, 4);
        let (layers, _) = s.sample_khop(&adj, &[(0, 4.5), (1, 4.5)], &[3]);
        assert!(layers[0].iter().all(|n| n.feature_idx.is_none()));
        assert!(layers[1].iter().all(|n| n.feature_idx.is_some()));
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let run = |seed| {
            let s = NeighborSampler::new(SampleStrategy::Uniform, seed);
            s.sample(&adj, 0, 4.5, 6).0
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn batch_apis_match_serial_for_any_thread_count() {
        let adj = TemporalAdjacency::from_stream(&stream());
        let roots: Vec<(NodeId, f64)> =
            vec![(0, 4.5), (1, 4.5), (2, 4.5), (3, 4.5), (0, 2.5), (1, 3.5)];
        for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
            let s = NeighborSampler::new(strategy, 11);
            let (serial_layers, serial_cost) = s.sample_khop(&adj, &roots, &[2, 2]);
            let mut serial_hop = Vec::new();
            let mut serial_hop_cost = SampleCost::default();
            for &(node, t) in &roots {
                let (picked, c) = s.sample(&adj, node, t, 3);
                serial_hop.push(picked);
                serial_hop_cost.add(c);
            }
            for threads in [1, 2, 4, 16] {
                let (l, c) = s.sample_khop_batch_threads(&adj, &roots, &[2, 2], threads);
                assert_eq!(l, serial_layers, "khop threads={threads}");
                assert_eq!(c, serial_cost, "khop cost threads={threads}");
                let (b, bc) = s.sample_batch_threads(&adj, &roots, 3, threads);
                assert_eq!(b, serial_hop, "batch threads={threads}");
                assert_eq!(bc, serial_hop_cost, "batch cost threads={threads}");
            }
        }
    }
}
