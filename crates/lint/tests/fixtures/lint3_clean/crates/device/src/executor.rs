//! LINT3 clean twin (1/2): the same constructs inside `dgnn-device`
//! are the implementation — the device crate owns the timeline.

pub fn record(tl: &mut Timeline) {
    tl.push(TimelineEvent { lane: 0, start_ns: 0, end_ns: 10 });
    let clock = tl.clock_mut(0);
    *clock += 10;
}
