//! Serving-path node memory: the state TGN/JODIE mutate at ingest time.
//!
//! In the offline benchmarks, per-node memory lives inside the model
//! ([`crate::Tgn`] keeps an `EmbeddingTable` + GRU, [`crate::Jodie`]
//! twin RNNs) and is touched once per inference batch. Under *streaming*
//! serving the same state must also advance on the **ingest** path: when
//! a live edge event lands, the two endpoint rows are updated before the
//! event becomes visible to samplers — that host-side work races query
//! sampling on the ingest clock, which is exactly the contention the
//! paper's §6 streaming discussion predicts.
//!
//! [`IngestMemory`] is that serving-path state, deliberately decoupled
//! from the model structs: it owns a dense `f32` row table, applies a
//! deterministic per-event update (a cheap fixed-point stand-in for the
//! GRU / RNN cell, chosen per [`MemoryRule`]), and prices each update as
//! an [`IngestCost`] so the serving loop can charge it to the Host lane.
//! Determinism is load-bearing: replaying the same event sequence yields
//! a bit-identical [`IngestMemory::checksum`], which the streaming
//! determinism tests assert.

use dgnn_graph::{IngestCost, TemporalEvent};

/// Which model family's memory-update rule the table applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryRule {
    /// TGN-style gated update: a sigmoid gate blends the old row with a
    /// tanh-squashed message (the shape of a GRU cell collapsed to one
    /// gate).
    TgnGru,
    /// JODIE-style plain RNN update: the row is overwritten with a tanh
    /// of a linear mix of old state and message.
    JodieRnn,
}

impl MemoryRule {
    /// Stable lowercase name (used in scope labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            MemoryRule::TgnGru => "tgn-gru",
            MemoryRule::JodieRnn => "jodie-rnn",
        }
    }
}

/// Deterministic per-node memory table updated on the ingest path.
///
/// ```
/// use dgnn_models::{IngestMemory, MemoryRule};
/// use dgnn_graph::TemporalEvent;
///
/// let ev = TemporalEvent { src: 0, dst: 2, time: 1.5, feature_idx: 0 };
/// let mut a = IngestMemory::new(MemoryRule::TgnGru, 4, 8, 42);
/// let mut b = IngestMemory::new(MemoryRule::TgnGru, 4, 8, 42);
/// let cost = a.apply(&ev);
/// b.apply(&ev);
/// // Same seed + same events => bit-identical state; updates are priced.
/// assert_eq!(a.checksum(), b.checksum());
/// assert!(cost.ops > 0 && cost.irregular_bytes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct IngestMemory {
    rule: MemoryRule,
    dim: usize,
    /// Row-major `n_nodes x dim` state.
    rows: Vec<f32>,
    updates: u64,
}

impl IngestMemory {
    /// Creates a table of `n_nodes` rows of width `dim`, seeded
    /// deterministically (small values in `[-0.5, 0.5)`).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero — a zero-width memory row can absorb no
    /// update and always checksums to the seed, hiding ingest bugs.
    pub fn new(rule: MemoryRule, n_nodes: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "IngestMemory: dim must be non-zero");
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut rows = Vec::with_capacity(n_nodes * dim);
        for _ in 0..n_nodes * dim {
            state = splitmix(state);
            // Top 24 bits -> [0, 1) -> [-0.5, 0.5).
            rows.push((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5);
        }
        IngestMemory {
            rule,
            dim,
            rows,
            updates: 0,
        }
    }

    /// The update rule in force.
    pub fn rule(&self) -> MemoryRule {
        self.rule
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn n_nodes(&self) -> usize {
        self.rows.len() / self.dim
    }

    /// Events applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// One node's memory row.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn row(&self, node: usize) -> &[f32] {
        &self.rows[node * self.dim..(node + 1) * self.dim]
    }

    /// Applies one edge event to both endpoint rows and returns the
    /// Host-lane cost of doing so: `2·dim` multiply-accumulate ops per
    /// gate stage, a streaming read+write of both rows, and an
    /// irregular gather/scatter charge for the two random row indexes.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn apply(&mut self, ev: &TemporalEvent) -> IngestCost {
        let n = self.n_nodes();
        assert!(
            ev.src < n && ev.dst < n,
            "IngestMemory: event touches node out of bounds ({}/{} vs {n} rows)",
            ev.src,
            ev.dst
        );
        // The "message" each endpoint receives: a time-and-partner
        // dependent scalar, matching the shape (not the weights) of the
        // real models' message functions.
        #[expect(
            clippy::cast_possible_truncation,
            reason = "f32 message precision is the model's"
        )]
        let t = ev.time as f32;
        let msg_src = (t * 0.01 + ev.dst as f32 * 1e-3).sin();
        let msg_dst = (t * 0.01 + ev.src as f32 * 1e-3).cos();
        self.update_row(ev.src, msg_src);
        self.update_row(ev.dst, msg_dst);
        self.updates += 1;
        let dim = self.dim as u64;
        let gate_stages = match self.rule {
            MemoryRule::TgnGru => 3,   // gate, candidate, blend
            MemoryRule::JodieRnn => 2, // mix, squash
        };
        IngestCost {
            ops: 2 * dim * gate_stages,
            // Read + write both touched rows, f32 each.
            seq_bytes: 2 * 2 * dim * 4,
            // Two random row lookups in a table too large to cache.
            irregular_bytes: 2 * dim * 4,
        }
    }

    fn update_row(&mut self, node: usize, msg: f32) {
        let row = &mut self.rows[node * self.dim..(node + 1) * self.dim];
        match self.rule {
            MemoryRule::TgnGru => {
                for h in row.iter_mut() {
                    let z = sigmoid(*h + msg);
                    let cand = (msg - *h).tanh();
                    *h = (1.0 - z) * *h + z * cand;
                }
            }
            MemoryRule::JodieRnn => {
                for h in row.iter_mut() {
                    *h = (0.9 * *h + 0.4 * msg).tanh();
                }
            }
        }
    }

    /// Order-sensitive checksum over the full state: bit-identical iff
    /// the same events were applied in the same order to the same seed.
    pub fn checksum(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ self.updates;
        for &v in &self.rows {
            acc = (acc ^ u64::from(v.to_bits())).wrapping_mul(0x100_0000_01b3);
        }
        acc
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, time: f64) -> TemporalEvent {
        TemporalEvent {
            src,
            dst,
            time,
            feature_idx: 0,
        }
    }

    #[test]
    fn same_seed_same_events_same_checksum() {
        for rule in [MemoryRule::TgnGru, MemoryRule::JodieRnn] {
            let mut a = IngestMemory::new(rule, 16, 8, 7);
            let mut b = IngestMemory::new(rule, 16, 8, 7);
            for i in 0..32 {
                let e = ev(i % 16, (i * 3 + 1) % 16, i as f64);
                assert_eq!(a.apply(&e), b.apply(&e));
            }
            assert_eq!(a.checksum(), b.checksum(), "{}", rule.name());
            assert_eq!(a.updates(), 32);
        }
    }

    #[test]
    fn updates_change_state_and_order_matters() {
        let mut a = IngestMemory::new(MemoryRule::TgnGru, 8, 4, 1);
        let before = a.checksum();
        a.apply(&ev(0, 1, 1.0));
        let after_one = a.checksum();
        assert_ne!(before, after_one);
        a.apply(&ev(1, 2, 2.0));
        let ab = a.checksum();

        // Swapped order on a shared endpoint (node 1) must be visible.
        let mut b = IngestMemory::new(MemoryRule::TgnGru, 8, 4, 1);
        b.apply(&ev(1, 2, 2.0));
        b.apply(&ev(0, 1, 1.0));
        assert_ne!(ab, b.checksum(), "apply order must be observable");
    }

    #[test]
    fn rules_differ_and_costs_are_positive() {
        let mut g = IngestMemory::new(MemoryRule::TgnGru, 8, 4, 1);
        let mut r = IngestMemory::new(MemoryRule::JodieRnn, 8, 4, 1);
        let c1 = g.apply(&ev(0, 1, 1.0));
        let c2 = r.apply(&ev(0, 1, 1.0));
        assert_ne!(g.checksum(), r.checksum());
        assert!(c1.ops > c2.ops, "GRU prices more gate stages than RNN");
        assert!(c1.seq_bytes > 0 && c1.irregular_bytes > 0);
        // State stays finite under the squashing nonlinearities.
        assert!(g.row(0).iter().all(|v| v.is_finite() && v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_event_panics() {
        let mut m = IngestMemory::new(MemoryRule::TgnGru, 4, 4, 1);
        m.apply(&ev(0, 9, 1.0));
    }
}
