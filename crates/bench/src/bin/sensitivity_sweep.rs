//! Sensitivity of the reproduced bottlenecks to the cost-model's design
//! choices — the DESIGN.md ablation: if a conclusion only held at one
//! magic constant, it would be an artifact of calibration rather than of
//! workload structure. Sweeps kernel-launch overhead, PCIe bandwidth and
//! host preprocessing throughput around their defaults and reports how
//! each model's headline metric moves.
//!
//! Expected outcome (and what the table shows): the *orderings* are
//! robust — TGAT stays sampling-bound across a 16× host-throughput range,
//! MolDGNN stays transfer-bound across an 8× PCIe range, and DyRep's
//! GPU-never-wins holds until launch overhead vanishes entirely.
//!
//! Usage: `sensitivity_sweep [--scale tiny|small|full]`

use dgnn_bench::{build_model, parse_opts};
use dgnn_device::{ExecMode, Executor, PlatformSpec};
use dgnn_models::InferenceConfig;
use dgnn_profile::{InferenceProfile, TextTable};

fn tgat_sampling_share(spec: PlatformSpec, scale: dgnn_datasets::Scale, seed: u64) -> f64 {
    let mut m = build_model("tgat", scale, seed);
    let mut ex = Executor::new(spec, ExecMode::Gpu);
    let cfg = InferenceConfig::default()
        .with_batch_size(200)
        .with_max_units(2);
    m.run(&mut ex, &cfg).expect("tgat run");
    InferenceProfile::capture(&ex, "inference")
        .breakdown
        .share_of("sampling")
}

fn moldgnn_memcpy_share(spec: PlatformSpec, scale: dgnn_datasets::Scale, seed: u64) -> f64 {
    let mut m = build_model("moldgnn", scale, seed);
    let mut ex = Executor::new(spec, ExecMode::Gpu);
    let cfg = InferenceConfig::default()
        .with_batch_size(512)
        .with_max_units(1);
    m.run(&mut ex, &cfg).expect("moldgnn run");
    let tl = ex.timeline();
    let memcpy = tl.busy_time(dgnn_device::Place::Pcie).as_nanos() as f64;
    let kernels = tl
        .category_time(dgnn_device::EventCategory::is_gpu_compute)
        .as_nanos() as f64;
    memcpy / (memcpy + kernels)
}

fn dyrep_gpu_vs_cpu(spec: PlatformSpec, scale: dgnn_datasets::Scale, seed: u64) -> f64 {
    let cfg = InferenceConfig::default()
        .with_batch_size(64)
        .with_max_units(1);
    let time = |mode| {
        let mut m = build_model("dyrep", scale, seed);
        let mut ex = Executor::new(spec.clone(), mode);
        m.run(&mut ex, &cfg).expect("dyrep run").inference_time
    };
    time(ExecMode::CpuOnly).as_nanos() as f64 / time(ExecMode::Gpu).as_nanos() as f64
}

fn main() {
    let opts = parse_opts();

    // 1. Host preprocessing throughput vs TGAT sampling dominance.
    let mut t = TextTable::new(
        "Sensitivity — host preprocessing throughput vs TGAT sampling share",
        &["host ops/s (x default)", "sampling share"],
    );
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut spec = PlatformSpec::default();
        spec.cpu.host_ops_per_sec *= factor;
        t.row(&[
            format!("{factor}x"),
            format!(
                "{:.1}%",
                tgat_sampling_share(spec, opts.scale, opts.seed) * 100.0
            ),
        ]);
    }
    print!("{}", t.render());

    // 2. PCIe bandwidth vs MolDGNN memcpy dominance.
    let mut t = TextTable::new(
        "Sensitivity — PCIe bandwidth vs MolDGNN memcpy share of GPU working time",
        &["pcie GB/s", "memcpy share"],
    );
    for bw in [3e9, 6e9, 12e9, 24e9, 48e9] {
        let mut spec = PlatformSpec::default();
        spec.pcie.bandwidth = bw;
        t.row(&[
            format!("{:.0}", bw / 1e9),
            format!(
                "{:.1}%",
                moldgnn_memcpy_share(spec, opts.scale, opts.seed) * 100.0
            ),
        ]);
    }
    print!("{}", t.render());

    // 3. Kernel launch overhead vs DyRep CPU-beats-GPU.
    let mut t = TextTable::new(
        "Sensitivity — kernel launch overhead vs DyRep cpu/gpu time ratio (<1 means GPU loses)",
        &["launch overhead (µs)", "cpu/gpu"],
    );
    for launch_us in [0u64, 2, 6, 12, 24] {
        let mut spec = PlatformSpec::default();
        spec.gpu.launch_overhead_ns = launch_us * 1_000;
        t.row(&[
            launch_us.to_string(),
            format!("{:.3}", dyrep_gpu_vs_cpu(spec, opts.scale, opts.seed)),
        ]);
    }
    print!("{}", t.render());
}
