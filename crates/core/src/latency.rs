//! Request-latency accounting for the serving subsystem.
//!
//! The paper profiles *one* inference run end to end; a serving layer
//! (`dgnn-serve`) runs thousands and must report tail latency, not
//! means — the §4.4 warm-up cost appears at the tail as cold-start
//! spikes. This module provides the two reusable pieces:
//!
//! * [`LatencyStats`] — order statistics (p50/p95/p99, min/max/mean)
//!   over a set of simulated durations, computed with the deterministic
//!   nearest-rank rule so reports are bit-stable across runs;
//! * [`ServicePhases`] — a busy-time decomposition of a timeline slice
//!   into the phases a served request passes through (warm-up,
//!   host-side sampling/preprocessing, kernel compute, PCIe transfer),
//!   the per-request analogue of [`crate::Breakdown`].

use dgnn_device::{DurationNs, EventCategory, TimelineEvent};

/// Order statistics over a set of simulated latencies.
///
/// Quantiles use the nearest-rank definition (`ceil(q·n)`-th smallest),
/// so every reported value is an actually observed latency and the
/// whole struct is bit-deterministic for a fixed input set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: usize,
    /// Smallest observed latency.
    pub min: DurationNs,
    /// Largest observed latency.
    pub max: DurationNs,
    /// Arithmetic mean (integer ns, rounded down).
    pub mean: DurationNs,
    /// Median (nearest rank).
    pub p50: DurationNs,
    /// 95th percentile (nearest rank).
    pub p95: DurationNs,
    /// 99th percentile (nearest rank).
    pub p99: DurationNs,
}

impl LatencyStats {
    /// Computes statistics over `samples`. Order does not matter; an
    /// empty slice yields the all-zero stats.
    pub fn from_durations(samples: &[DurationNs]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted: Vec<u64> = samples.iter().map(|d| d.as_nanos()).collect();
        sorted.sort_unstable();
        let n = sorted.len();
        let sum: u128 = sorted.iter().map(|&x| u128::from(x)).sum();
        #[expect(
            clippy::cast_possible_truncation,
            reason = "mean ≤ max, which fits u64"
        )]
        let mean = (sum / n as u128) as u64;
        // Nearest rank ⌈q·n⌉ in exact integer arithmetic. The obvious
        // float version — `(q * n as f64).ceil()` — is wrong whenever
        // q·n is integral but not representable: 0.95 × 20 evaluates to
        // 19.000000000000004, whose ceiling is rank 20, silently turning
        // p95 into the max for every n that is a multiple of 20.
        let rank = |q_num: usize, q_den: usize| -> u64 {
            let idx = (q_num * n).div_ceil(q_den).clamp(1, n);
            sorted[idx - 1]
        };
        LatencyStats {
            n,
            min: DurationNs::from_nanos(sorted[0]),
            max: DurationNs::from_nanos(sorted[n - 1]),
            mean: DurationNs::from_nanos(mean),
            p50: DurationNs::from_nanos(rank(1, 2)),
            p95: DurationNs::from_nanos(rank(19, 20)),
            p99: DurationNs::from_nanos(rank(99, 100)),
        }
    }
}

/// Busy-time decomposition of one service span (a timeline slice) into
/// the phases of a served request.
///
/// Durations are *busy* sums per phase: under pipeline overlap they can
/// exceed the wall-clock span of the slice, exactly like the lane-busy
/// rows of an Nsight report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServicePhases {
    /// Warm-up (context init + model init + activation allocation).
    pub warmup: DurationNs,
    /// Host-side preprocessing (temporal sampling, batch/snapshot prep).
    pub host: DurationNs,
    /// Kernel execution on the compute device.
    pub compute: DurationNs,
    /// PCIe transfer time.
    pub transfer: DurationNs,
}

impl ServicePhases {
    /// Categorizes a slice of timeline events (typically
    /// `timeline.events()[i0..]` for a service that started at event
    /// index `i0`).
    pub fn from_events(events: &[TimelineEvent]) -> Self {
        let mut p = ServicePhases::default();
        for e in events {
            let d = e.duration();
            match e.category {
                EventCategory::WarmupContext
                | EventCategory::WarmupModelInit
                | EventCategory::WarmupAlloc => p.warmup += d,
                EventCategory::Host => p.host += d,
                EventCategory::Kernel(_) => p.compute += d,
                // Cross-device peer traffic is data movement like PCIe.
                EventCategory::Transfer(_) | EventCategory::PeerTransfer => p.transfer += d,
            }
        }
        p
    }

    /// Total busy time across all phases.
    pub fn total(&self) -> DurationNs {
        self.warmup + self.host + self.compute + self.transfer
    }

    /// Accumulates another service's phases (for per-config aggregation).
    pub fn accumulate(&mut self, other: &ServicePhases) {
        self.warmup += other.warmup;
        self.host += other.host;
        self.compute += other.compute;
        self.transfer += other.transfer;
    }

    /// Warm-up share of total busy time (0 when nothing ran).
    pub fn warmup_share(&self) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.warmup.as_nanos() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, TransferDir};

    #[test]
    fn stats_of_empty_input_are_zero() {
        let s = LatencyStats::from_durations(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.p99, DurationNs::ZERO);
    }

    #[test]
    fn nearest_rank_quantiles_are_observed_values() {
        let samples: Vec<DurationNs> = (1..=100).map(DurationNs::from_nanos).collect();
        let s = LatencyStats::from_durations(&samples);
        assert_eq!(s.n, 100);
        assert_eq!(s.min.as_nanos(), 1);
        assert_eq!(s.max.as_nanos(), 100);
        assert_eq!(s.p50.as_nanos(), 50);
        assert_eq!(s.p95.as_nanos(), 95);
        assert_eq!(s.p99.as_nanos(), 99);
        assert_eq!(s.mean.as_nanos(), 50); // 5050/100 rounded down
    }

    #[test]
    fn nearest_rank_is_exact_when_q_times_n_is_integral() {
        // Regression for the float off-by-one: 0.95 × 20 is
        // 19.000000000000004 in f64, so a float ceil picked rank 20
        // (the max) instead of rank 19. Integer arithmetic must pick
        // exactly ⌈q·n⌉ at n = 20, 100 and 200.
        let n20: Vec<DurationNs> = (1..=20).map(DurationNs::from_nanos).collect();
        let s = LatencyStats::from_durations(&n20);
        assert_eq!(s.p50.as_nanos(), 10);
        assert_eq!(
            s.p95.as_nanos(),
            19,
            "p95 of 20 samples is rank 19, not the max"
        );
        assert_eq!(s.p99.as_nanos(), 20); // ⌈19.8⌉ = 20

        let n100: Vec<DurationNs> = (1..=100).map(DurationNs::from_nanos).collect();
        let s = LatencyStats::from_durations(&n100);
        assert_eq!(
            (s.p50.as_nanos(), s.p95.as_nanos(), s.p99.as_nanos()),
            (50, 95, 99)
        );

        let n200: Vec<DurationNs> = (1..=200).map(DurationNs::from_nanos).collect();
        let s = LatencyStats::from_durations(&n200);
        assert_eq!(s.p50.as_nanos(), 100);
        assert_eq!(s.p95.as_nanos(), 190, "p95 of 200 samples is rank 190");
        assert_eq!(s.p99.as_nanos(), 198);
    }

    #[test]
    fn quantiles_are_order_independent() {
        let a = [3, 1, 2].map(DurationNs::from_nanos);
        let b = [1, 2, 3].map(DurationNs::from_nanos);
        assert_eq!(
            LatencyStats::from_durations(&a),
            LatencyStats::from_durations(&b)
        );
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let s = LatencyStats::from_durations(&[DurationNs::from_millis(7)]);
        assert_eq!(s.p50, s.p99);
        assert_eq!(s.p99, DurationNs::from_millis(7));
    }

    #[test]
    fn phases_categorize_a_timeline_slice() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.model_init(1 << 20, 4);
        let i0 = ex.timeline().len();
        ex.host(HostWork::irregular("sample", 10_000, 1 << 16));
        ex.transfer(TransferDir::H2D, 1 << 16);
        ex.launch(KernelDesc::gemm("k", 64, 64, 64));
        ex.alloc_warmup(1 << 20);
        let phases = ServicePhases::from_events(&ex.timeline().events()[i0..]);
        assert!(phases.host.as_nanos() > 0);
        assert!(phases.transfer.as_nanos() > 0);
        assert!(phases.compute.as_nanos() > 0);
        // Only the alloc warm-up falls inside the slice; model init is
        // before i0.
        assert!(phases.warmup.as_nanos() > 0);
        assert!(phases.warmup < DurationNs::from_millis(100));
        assert_eq!(
            phases.total(),
            phases.warmup + phases.host + phases.compute + phases.transfer
        );
        assert!(phases.warmup_share() > 0.0 && phases.warmup_share() < 1.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let a = ServicePhases {
            warmup: DurationNs::from_nanos(1),
            host: DurationNs::from_nanos(2),
            compute: DurationNs::from_nanos(3),
            transfer: DurationNs::from_nanos(4),
        };
        let mut b = a;
        b.accumulate(&a);
        assert_eq!(b.total().as_nanos(), 20);
    }
}
