//! Domain scenario: future-interaction prediction on a social network
//! with TGN, comparing batch-size regimes.
//!
//! Demonstrates the paper's TGN findings: the per-node memory exchange
//! makes message passing dominate at large batch sizes (Fig 7a) and
//! pushes GPU utilization *down* as batches grow (Fig 6c) — the opposite
//! of the usual "bigger batches use the GPU better" intuition.
//!
//! Run with: `cargo run --example social_tgn`

use dgnn_suite::datasets::{wikipedia, Scale};
use dgnn_suite::device::{ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{DgnnModel, InferenceConfig, Tgn, TgnConfig};
use dgnn_suite::profile::InferenceProfile;

fn main() {
    let data = wikipedia(Scale::Tiny, 5);
    println!(
        "interaction network: {} nodes, {} timestamped interactions",
        data.stream.n_nodes(),
        data.stream.len()
    );

    println!(
        "\n{:>10}  {:>9}  {:>9}  {:>13}  {:>9}",
        "batch", "gpu util", "mem (MiB)", "msg-pass share", "time"
    );
    for bs in [64usize, 256, 1_024] {
        let mut model = Tgn::new(data.clone(), TgnConfig::default(), 5);
        let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
        let cfg = InferenceConfig::default()
            .with_batch_size(bs)
            .with_neighbors(10)
            .with_max_units(3);
        model.run(&mut ex, &cfg).expect("inference succeeds");
        let p = InferenceProfile::capture(&ex, "inference");
        println!(
            "{:>10}  {:>8.2}%  {:>9.1}  {:>12.1}%  {:>9}",
            bs,
            p.utilization.busy_fraction * 100.0,
            p.gpu_peak_mib(),
            p.breakdown.share_of("message_passing") * 100.0,
            p.inference_time
        );
    }

    // Show the full module breakdown for the largest batch.
    let mut model = Tgn::new(data, TgnConfig::default(), 5);
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    let cfg = InferenceConfig::default()
        .with_batch_size(1_024)
        .with_neighbors(10)
        .with_max_units(3);
    model.run(&mut ex, &cfg).expect("inference succeeds");
    let p = InferenceProfile::capture(&ex, "inference");
    println!();
    print!("{}", p.breakdown.to_table("TGN module breakdown (bs=1024)"));
}
