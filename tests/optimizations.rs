//! Integration tests for the §5 optimization ablations: the proposed
//! optimizations must strictly improve simulated time, within their
//! theoretical bounds.

use dgnn_suite::datasets::{bitcoin_alpha, wikipedia, Scale};
use dgnn_suite::models::optim::{
    delta_snapshot_evolvegcn, overlapped_sampling_tgat, pipelined_evolvegcn,
};
use dgnn_suite::models::{
    EvolveGcn, EvolveGcnConfig, EvolveGcnVersion, InferenceConfig, Tgat, TgatConfig,
};

const SEED: u64 = 33;

fn egcn(version: EvolveGcnVersion) -> EvolveGcn {
    EvolveGcn::new(
        bitcoin_alpha(Scale::Tiny, SEED),
        EvolveGcnConfig {
            hidden: 100,
            version,
        },
        SEED,
    )
}

#[test]
fn fig10_pipelining_improves_both_evolvegcn_variants() {
    let cfg = InferenceConfig::default().with_max_units(10);
    for version in [EvolveGcnVersion::O, EvolveGcnVersion::H] {
        let r = pipelined_evolvegcn(&mut egcn(version), &cfg).expect("ablation runs");
        assert!(r.optimized < r.baseline, "{version:?} must improve");
        assert!(
            r.speedup() <= 2.0 + 1e-9,
            "{version:?}: two stages cap at 2x"
        );
    }
}

#[test]
fn overlap_speedup_bounded_by_device_share() {
    // Overlapping sampling with compute can hide at most the smaller of
    // the two chains; with sampling dominating, speedup is bounded by
    // 1 / sampling_share.
    let cfg = InferenceConfig::default()
        .with_batch_size(150)
        .with_max_units(4);
    let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    let r = overlapped_sampling_tgat(&mut m, &cfg).expect("ablation runs");
    assert!(r.optimized < r.baseline);
    assert!(
        r.speedup() < 2.0,
        "sampling-bound: speedup {} must stay < 2x",
        r.speedup()
    );
}

#[test]
fn delta_transfer_monotone_in_similarity() {
    let cfg = InferenceConfig::default().with_max_units(8);
    let mut previous = None;
    for similarity in [0.0, 0.3, 0.6, 0.9] {
        let r = delta_snapshot_evolvegcn(&mut egcn(EvolveGcnVersion::O), &cfg, similarity)
            .expect("ablation runs");
        if let Some(prev) = previous {
            assert!(
                r.optimized <= prev,
                "higher similarity must not transfer more (sim {similarity})"
            );
        }
        previous = Some(r.optimized);
    }
}

/// The profiler must stay coherent when events overlap across stream
/// lanes: the interval-union busy fraction is a true fraction, module
/// shares are fractions, and the overlapped run really is shorter than
/// the serial one while the GPU sits *less* idle.
#[test]
fn profile_stays_coherent_over_overlapping_events() {
    use dgnn_suite::device::{ExecMode, Executor, PlatformSpec};
    use dgnn_suite::models::DgnnModel;
    use dgnn_suite::profile::InferenceProfile;

    let cfg = InferenceConfig::default()
        .with_batch_size(500)
        .with_neighbors(50)
        .with_max_units(3);
    let run = |cfg: &InferenceConfig| {
        let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, cfg).expect("tgat runs");
        InferenceProfile::capture(&ex, "inference")
    };
    let serial = run(&cfg);
    let overlapped = run(&cfg.clone().with_pipeline_overlap(true));

    assert!(overlapped.inference_time < serial.inference_time);
    for p in [&serial, &overlapped] {
        assert!(
            p.utilization.busy_fraction > 0.0 && p.utilization.busy_fraction <= 1.0,
            "busy fraction {} is not a fraction",
            p.utilization.busy_fraction
        );
        let sampling = p.breakdown.share_of("sampling");
        assert!((0.0..=1.0).contains(&sampling), "share {sampling}");
    }
    // Hiding kernels behind sampling shrinks the denominator (wall) while
    // GPU-busy time is unchanged, so utilization must rise.
    assert!(
        overlapped.utilization.busy_fraction > serial.utilization.busy_fraction,
        "overlap should raise GPU utilization ({} vs {})",
        overlapped.utilization.busy_fraction,
        serial.utilization.busy_fraction
    );
}

#[test]
fn ablations_are_deterministic() {
    let cfg = InferenceConfig::default().with_max_units(6);
    let run = || {
        let r = pipelined_evolvegcn(&mut egcn(EvolveGcnVersion::O), &cfg).expect("runs");
        (r.baseline, r.optimized)
    };
    assert_eq!(run(), run());
}
