use std::fmt;

use crate::{Result, TensorError};

/// Row-major tensor shape.
///
/// A thin validated wrapper over a dimension list. Rank 0 (scalar) is
/// represented by an empty dimension list and has one element.
///
/// ```
/// use dgnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfBounds`] when `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfBounds {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a row-major offset.
    ///
    /// # Errors
    ///
    /// Returns an error when the index rank differs from the shape rank or
    /// any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut off = 0;
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    op: "offset",
                    index: i,
                    len: d,
                });
            }
            let _ = axis;
            off = off * d + i;
        }
        Ok(off)
    }

    /// Checks that this shape matches `other` exactly for operation `op`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn check_same(&self, other: &Shape, op: &'static str) -> Result<()> {
        if self != other {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
            });
        }
        Ok(())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_flattens_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn dim_out_of_bounds_errors() {
        let s = Shape::new(&[5]);
        assert_eq!(s.dim(0).unwrap(), 5);
        assert!(matches!(s.dim(1), Err(TensorError::AxisOutOfBounds { .. })));
    }

    #[test]
    fn zero_dim_is_empty() {
        let s = Shape::new(&[0, 4]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
