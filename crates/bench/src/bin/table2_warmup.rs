//! Regenerates Table 2: per-batch GPU warm-up (activation allocation)
//! versus computation for TGN and MolDGNN, across batch sizes.
//!
//! The paper's shape: TGN's warm-up is roughly constant in absolute
//! terms while its share of GPU working time grows as computation per
//! batch shrinks; MolDGNN's warm-up grows with batch size and reaches
//! ~90% share.
//!
//! Usage: `table2_warmup [--scale ...]`

use dgnn_bench::{build_model, measure, parse_opts};
use dgnn_device::ExecMode;
use dgnn_models::InferenceConfig;
use dgnn_profile::WarmupReport;

/// Fixed total workload (events for TGN, molecule-frames for MolDGNN):
/// Table 2 holds the dataset constant and varies only the batch size, so
/// computation amortizes with larger batches while warm-up does not.
const TOTAL_WORK: usize = 8_192;

fn main() {
    let opts = parse_opts();
    for name in ["tgn", "moldgnn"] {
        let mut rows = Vec::new();
        for bs in [8usize, 32, 128, 512, 2_048, 8_192] {
            let mut m = build_model(name, opts.scale, opts.seed);
            let units = (TOTAL_WORK / bs).clamp(1, 256);
            let cfg = InferenceConfig::default()
                .with_batch_size(bs)
                .with_neighbors(10)
                .with_max_units(units);
            let run = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            rows.push((bs, run.profile.warmup));
        }
        print!("{}", WarmupReport::render_table2(name, &rows));
    }
}
