//! # dgnn-bench
//!
//! Experiment harness for the paper's evaluation section. Each table and
//! figure has a dedicated binary (see `src/bin/`); this library provides
//! the shared machinery: a model factory, a standard runner that captures
//! an [`InferenceProfile`], and light CLI parsing.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 1 (taxonomy)            | `table1_summary` |
//! | Fig 6 (memory & utilization)  | `fig6_mem_util` |
//! | Fig 7 (inference breakdowns)  | `fig7_breakdown` |
//! | Fig 8 (CPU vs GPU + speedup)  | `fig8_cpu_gpu` |
//! | Fig 9 (ASTGNN util timeline)  | `fig9_astgnn_timeline` |
//! | Table 2 (warm-up overhead)    | `table2_warmup` |
//! | §4.4 warm-up ratios           | `warmup_ratios` |
//! | §4.1 utilization summary      | `util_summary` |
//! | §5 / Fig 10 optimizations     | `ablation_optimizations` |
//! | §4.4 amortized (serving)      | `serve_sweep` |
//!
//! Extensions beyond the paper's figures keep the same shape — one
//! binary per question, `BENCH {json}` lines per cell, `--smoke` as
//! the CI determinism + sanitizer gate:
//!
//! | Extension | Binary |
//! |---|---|
//! | Sampling fan-out throughput    | `sampling_throughput` |
//! | Pipeline overlap / coalescing  | `pipeline_overlap` |
//! | Parameter sensitivity          | `sensitivity_sweep` |
//! | Streaming ingest vs queries    | `streaming_ingest` |
//! | Feature cache × transfer mode  | `feature_cache` |
//! | Multi-GPU shard matrix         | `multi_gpu` |
//! | Fleet: router × autoscaler     | `fleet_sweep` |
//! | Timeline sanitizer gate        | `sanitize` |
//! | Timeline export (nsys-like)    | `nsys_export` |

#![forbid(unsafe_code)]

pub mod harness;

use dgnn_datasets::{
    as_snapshots, bitcoin_alpha, github, iso17, lastfm, pems, sbm, social_evolution, wikipedia,
    Scale,
};
use dgnn_device::{ExecMode, Executor, PlatformSpec};
use dgnn_models::{
    Astgnn, AstgnnConfig, DgnnModel, DyRep, DyRepConfig, EvolveGcn, EvolveGcnConfig,
    EvolveGcnVersion, InferenceConfig, Jodie, JodieConfig, Ldg, LdgConfig, LdgEncoder, MolDgnn,
    MolDgnnConfig, RunSummary, Tgat, TgatConfig, Tgn, TgnConfig,
};
use dgnn_profile::InferenceProfile;

/// Names accepted by [`build_model`], in presentation order.
pub const MODEL_NAMES: &[&str] = &[
    "jodie",
    "tgn",
    "evolvegcn_o",
    "evolvegcn_h",
    "tgat",
    "astgnn",
    "dyrep",
    "ldg_mlp",
    "ldg_bilinear",
    "moldgnn",
];

/// Builds a model (with its default paper dataset) by name.
///
/// Extra dataset-bound variants select the dataset listed in the
/// paper's artifact appendix: `jodie@lastfm`, `tgn@lastfm`,
/// `evolvegcn_o@wikipedia`, `evolvegcn_o@reddit`, `evolvegcn_o@sbm`
/// (and `_h` forms — Fig 7i/j uses the Wikipedia/Reddit variants).
///
/// # Panics
///
/// Panics on an unknown name — binaries validate names up front.
pub fn build_model(name: &str, scale: Scale, seed: u64) -> Box<dyn DgnnModel> {
    let (base, dataset) = match name.split_once('@') {
        Some((b, d)) => (b, Some(d)),
        None => (name, None),
    };
    match base {
        "jodie" | "tgn" | "tgat" => {
            let data = match dataset {
                Some("lastfm") => lastfm(scale, seed),
                Some("reddit") => dgnn_datasets::reddit(scale, seed),
                _ => wikipedia(scale, seed),
            };
            match base {
                "jodie" => Box::new(Jodie::new(data, JodieConfig::default(), seed)),
                "tgn" => Box::new(Tgn::new(data, TgnConfig::default(), seed)),
                _ => Box::new(Tgat::new(data, TgatConfig::default(), seed)),
            }
        }
        "astgnn" => Box::new(Astgnn::new(
            pems(scale, seed),
            AstgnnConfig::default(),
            seed,
        )),
        "moldgnn" => Box::new(MolDgnn::new(
            iso17(scale, seed),
            MolDgnnConfig::default(),
            seed,
        )),
        "dyrep" => Box::new(DyRep::new(
            social_evolution(scale, seed),
            DyRepConfig::default(),
            seed,
        )),
        "ldg_mlp" => Box::new(Ldg::new(
            github(scale, seed),
            LdgConfig {
                dim: 32,
                encoder: LdgEncoder::Mlp,
            },
            seed,
        )),
        "ldg_bilinear" => Box::new(Ldg::new(
            github(scale, seed),
            LdgConfig {
                dim: 32,
                encoder: LdgEncoder::Bilinear,
            },
            seed,
        )),
        "evolvegcn_o" | "evolvegcn_h" => {
            let version = if base.ends_with("_h") {
                EvolveGcnVersion::H
            } else {
                EvolveGcnVersion::O
            };
            let data = match dataset {
                Some("wikipedia") => as_snapshots(&wikipedia(scale, seed), 24),
                Some("reddit") => as_snapshots(&dgnn_datasets::reddit(scale, seed), 24),
                Some("sbm") => sbm(scale, seed),
                _ => bitcoin_alpha(scale, seed),
            };
            Box::new(EvolveGcn::new(
                data,
                EvolveGcnConfig {
                    hidden: 100,
                    version,
                },
                seed,
            ))
        }
        other => panic!("unknown model `{other}`; known: {MODEL_NAMES:?}"),
    }
}

/// The default inference configuration each model was profiled with in
/// the paper (batch sizes, neighbor counts).
pub fn default_config(name: &str) -> InferenceConfig {
    let base = InferenceConfig::default();
    match name.split('@').next().unwrap_or(name) {
        "tgat" => base
            .with_batch_size(200)
            .with_neighbors(20)
            .with_max_units(4),
        "tgn" => base
            .with_batch_size(512)
            .with_neighbors(10)
            .with_max_units(4),
        "jodie" => base.with_batch_size(128).with_max_units(3),
        "astgnn" => base.with_batch_size(8).with_max_units(2),
        "moldgnn" => base.with_batch_size(128).with_max_units(1),
        "dyrep" | "ldg_mlp" | "ldg_bilinear" => base.with_batch_size(64).with_max_units(2),
        _ => base.with_max_units(8), // EvolveGCN: snapshots
    }
}

/// A serving-ready replica handle for `name`: rebuilds the model (with
/// its paper dataset at `scale`) identically on every call, which is
/// exactly the contract `dgnn-serve` replicas need.
///
/// # Panics
///
/// Panics on an unknown name (same contract as [`build_model`]).
pub fn replica_handle(name: &str, scale: Scale, seed: u64) -> dgnn_models::ReplicaHandle {
    let _ = build_model(name, scale, seed); // validate the name eagerly
    let owned = name.to_string();
    dgnn_models::ReplicaHandle::new(name, move || build_model(&owned, scale, seed))
}

/// A uniformly-weighted serving mix over `names`, each model bound to
/// its paper dataset at `scale` and its paper inference configuration
/// capped at one unit per request.
///
/// # Panics
///
/// Panics on an unknown name (same contract as [`build_model`]).
pub fn served_zoo(names: &[&str], scale: Scale, seed: u64) -> Vec<dgnn_serve::ServedModel> {
    names
        .iter()
        .map(|name| dgnn_serve::ServedModel {
            handle: replica_handle(name, scale, seed),
            cfg: default_config(name).with_max_units(1),
            weight: 1.0,
        })
        .collect()
}

/// Result of one measured run.
pub struct MeasuredRun {
    /// Captured profile (breakdown, utilization, warm-up, memory).
    pub profile: InferenceProfile,
    /// Model-reported summary.
    pub summary: RunSummary,
    /// The executor, for custom timeline queries.
    pub executor: Executor,
}

/// Runs `model` under `cfg` on a fresh executor in `mode` and captures
/// the profile.
///
/// # Panics
///
/// Panics when inference fails (experiment configurations are known-good).
pub fn measure(model: &mut dyn DgnnModel, mode: ExecMode, cfg: &InferenceConfig) -> MeasuredRun {
    let mut ex = Executor::new(PlatformSpec::default(), mode);
    let summary = model
        .run(&mut ex, cfg)
        .unwrap_or_else(|e| panic!("{} inference failed: {e}", model.name()));
    let profile = InferenceProfile::capture(&ex, "inference");
    MeasuredRun {
        profile,
        summary,
        executor: ex,
    }
}

/// Runs `model` under `cfg` on a fresh executor with provenance tracing
/// enabled, then audits the recorded execution with the timeline
/// sanitizer (`dgnn-analysis`).
///
/// # Panics
///
/// Panics when inference fails (experiment configurations are known-good).
pub fn measure_sanitized(
    model: &mut dyn DgnnModel,
    mode: ExecMode,
    cfg: &InferenceConfig,
) -> (dgnn_analysis::SanitizerReport, MeasuredRun) {
    let mut ex = Executor::new(PlatformSpec::default(), mode);
    ex.enable_tracing();
    let summary = model
        .run(&mut ex, cfg)
        .unwrap_or_else(|e| panic!("{} inference failed: {e}", model.name()));
    let report = dgnn_analysis::audit(&ex);
    let profile = InferenceProfile::capture(&ex, "inference");
    (
        report,
        MeasuredRun {
            profile,
            summary,
            executor: ex,
        },
    )
}

/// CLI options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Dataset scale.
    pub scale: Scale,
    /// Seed for datasets and weights.
    pub seed: u64,
    /// Remaining (binary-specific) arguments.
    pub rest: Vec<String>,
}

/// Parses `--scale tiny|small|full`, `--seed N` and collects the rest.
/// Unknown flags are passed through in `rest`.
pub fn parse_opts() -> BenchOpts {
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("bad --scale `{v}` (tiny|small|full)"));
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| panic!("bad --seed `{v}`"));
            }
            other => rest.push(other.to_string()),
        }
    }
    BenchOpts { scale, seed, rest }
}

/// Value of a `--key value` pair in leftover args, if present.
pub fn flag_value<'a>(rest: &'a [String], key: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == key)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_model() {
        for name in MODEL_NAMES {
            let m = build_model(name, Scale::Tiny, 1);
            assert_eq!(m.name(), *name);
            assert!(m.param_bytes() > 0);
        }
    }

    #[test]
    fn factory_builds_dataset_variants() {
        let m = build_model("evolvegcn_o@wikipedia", Scale::Tiny, 1);
        assert_eq!(m.name(), "evolvegcn_o");
        let m = build_model("evolvegcn_h@reddit", Scale::Tiny, 1);
        assert_eq!(m.name(), "evolvegcn_h");
        let m = build_model("evolvegcn_o@sbm", Scale::Tiny, 1);
        assert_eq!(m.name(), "evolvegcn_o");
        let m = build_model("jodie@lastfm", Scale::Tiny, 1);
        assert_eq!(m.name(), "jodie");
        let m = build_model("tgn@lastfm", Scale::Tiny, 1);
        assert_eq!(m.name(), "tgn");
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn factory_rejects_unknown() {
        let _ = build_model("gpt", Scale::Tiny, 1);
    }

    #[test]
    fn measure_runs_tiny_tgat() {
        let mut m = build_model("tgat", Scale::Tiny, 1);
        let cfg = InferenceConfig::default()
            .with_batch_size(50)
            .with_max_units(2);
        let run = measure(m.as_mut(), ExecMode::Gpu, &cfg);
        assert_eq!(run.summary.iterations, 2);
        assert!(run.profile.inference_time.as_nanos() > 0);
    }

    #[test]
    fn flag_value_finds_pairs() {
        let rest = vec!["--panel".to_string(), "a".to_string()];
        assert_eq!(flag_value(&rest, "--panel"), Some("a"));
        assert_eq!(flag_value(&rest, "--model"), None);
    }
}
