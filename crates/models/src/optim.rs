//! The paper's §5 optimization proposals, made measurable.
//!
//! The authors propose (but do not evaluate) several optimizations. Each
//! function here runs a model on the sequential simulator, then
//! re-schedules the *recorded* stage durations under the proposed
//! optimization and reports the speedup:
//!
//! * [`pipelined_evolvegcn`] — Fig 10: RNN of step `t+1` overlaps GNN of
//!   step `t` (§5.2.1);
//! * [`overlapped_sampling_tgat`] — CPU sampling of batch `t+1` overlaps
//!   GPU compute of batch `t` (§5.1.1, the Zhang et al. scheme);
//! * [`delta_snapshot_evolvegcn`] — transfer only the changed fraction of
//!   each snapshot (§5.2.2, sliding-window similarity);
//! * [`parallel_sampling_tgat`] — parallelize the temporal sampling loop
//!   itself across CPU cores (the CSR batch engine), instead of merely
//!   overlapping it with device work.

use dgnn_device::{DurationNs, EventCategory, ExecMode, Executor, PlatformSpec};
use dgnn_profile::pipeline::{
    delta_transfer_bytes, overlapped_makespan, pipelined_makespan, sequential_makespan, StagePair,
};

use crate::common::{DgnnModel, InferenceConfig, TransferGranularity};
use crate::evolvegcn::EvolveGcn;
use crate::tgat::Tgat;
use crate::Result;

/// Outcome of one optimization ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationResult {
    /// Simulated inference time of the unmodified (sequential) run.
    pub baseline: DurationNs,
    /// Simulated inference time under the proposed optimization.
    pub optimized: DurationNs,
}

impl AblationResult {
    /// Speedup factor (≥ 1 when the optimization helps).
    pub fn speedup(&self) -> f64 {
        if self.optimized.as_nanos() == 0 {
            return 1.0;
        }
        self.baseline.as_nanos() as f64 / self.optimized.as_nanos() as f64
    }
}

/// Durations of every occurrence of module scope `inference/<name>`, in
/// execution order.
fn module_durations(ex: &Executor, name: &str) -> Vec<DurationNs> {
    let path = format!("inference/{name}");
    ex.scopes()
        .iter()
        .filter(|s| s.path == path)
        .map(|s| s.duration())
        .collect()
}

fn inference_total(ex: &Executor) -> DurationNs {
    ex.scopes()
        .iter()
        .filter(|s| s.path == "inference")
        .map(|s| s.duration())
        .sum()
}

/// §5.1.1 on the real stream machine: run the model once sequentially
/// and once with [`InferenceConfig::pipeline_overlap`], both on the
/// simulated GPU. Unlike the analytic re-scheduling ablations below,
/// the optimized run *executes* the three-lane stream executor — host
/// preprocessing, copy engine and kernels advance on their own virtual
/// clocks, ordered only by recorded events — so the reported time is the
/// longest lane path, not a closed-form estimate. Numerics are identical
/// in both runs (the lanes reorder pricing, never data).
///
/// # Errors
///
/// Propagates inference errors from either run.
pub fn stream_overlap(model: &mut dyn DgnnModel, cfg: &InferenceConfig) -> Result<AblationResult> {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, cfg)?;
    let baseline = inference_total(&ex);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, &cfg.clone().with_pipeline_overlap(true))?;
    Ok(AblationResult {
        baseline,
        optimized: inference_total(&ex),
    })
}

/// Outcome of the transfer-coalescing ablation: per-tensor pricing (what
/// the profiled frameworks issue) against one merged PCIe transaction
/// per batch and direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescingResult {
    /// End-to-end simulated times (baseline = per-tensor).
    pub timing: AblationResult,
    /// Priced transfer events in the per-tensor run.
    pub per_tensor_transfers: usize,
    /// Priced transfer events in the coalesced run.
    pub coalesced_transfers: usize,
    /// Bytes moved in the per-tensor run.
    pub per_tensor_bytes: u64,
    /// Bytes moved in the coalesced run (must equal the per-tensor run —
    /// coalescing merges crossings, it never drops them).
    pub coalesced_bytes: u64,
}

impl CoalescingResult {
    /// Factor by which coalescing shrinks the priced transfer count.
    pub fn count_reduction(&self) -> f64 {
        if self.coalesced_transfers == 0 {
            return 1.0;
        }
        self.per_tensor_transfers as f64 / self.coalesced_transfers as f64
    }
}

/// §5 transfer batching on the real dispatcher: run the model with
/// [`TransferGranularity::PerTensor`] and again with
/// [`TransferGranularity::Coalesced`], reporting times, priced transfer
/// counts, and bytes (which must match between the two runs).
///
/// # Errors
///
/// Propagates inference errors from either run.
pub fn coalesced_transfers(
    model: &mut dyn DgnnModel,
    cfg: &InferenceConfig,
) -> Result<CoalescingResult> {
    let run = |model: &mut dyn DgnnModel,
               granularity: TransferGranularity|
     -> Result<(DurationNs, usize, u64)> {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        model.run(&mut ex, &cfg.clone().with_transfer_granularity(granularity))?;
        Ok((
            inference_total(&ex),
            ex.timeline().transfer_count(None),
            ex.timeline().transfer_bytes(None),
        ))
    };
    let (per_time, per_count, per_bytes) = run(model, TransferGranularity::PerTensor)?;
    let (co_time, co_count, co_bytes) = run(model, TransferGranularity::Coalesced)?;
    Ok(CoalescingResult {
        timing: AblationResult {
            baseline: per_time,
            optimized: co_time,
        },
        per_tensor_transfers: per_count,
        coalesced_transfers: co_count,
        per_tensor_bytes: per_bytes,
        coalesced_bytes: co_bytes,
    })
}

/// Fig 10: pipeline EvolveGCN's RNN and GNN across adjacent time steps.
///
/// # Errors
///
/// Propagates inference errors from the baseline run.
pub fn pipelined_evolvegcn(model: &mut EvolveGcn, cfg: &InferenceConfig) -> Result<AblationResult> {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, cfg)?;
    let rnn = module_durations(&ex, "rnn");
    let gnn = module_durations(&ex, "gnn");
    let steps: Vec<StagePair> = rnn
        .iter()
        .zip(&gnn)
        .map(|(&first, &second)| StagePair { first, second })
        .collect();
    let baseline = inference_total(&ex);
    let saved = sequential_makespan(&steps) - pipelined_makespan(&steps);
    Ok(AblationResult {
        baseline,
        optimized: baseline - saved,
    })
}

/// §5.1.1: overlap TGAT's CPU-side temporal sampling for batch `t+1`
/// with the device work (transfers + kernels) of batch `t`.
///
/// # Errors
///
/// Propagates inference errors from the baseline run.
pub fn overlapped_sampling_tgat(model: &mut Tgat, cfg: &InferenceConfig) -> Result<AblationResult> {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, cfg)?;
    let sampling = module_durations(&ex, "sampling");
    let baseline = inference_total(&ex);
    let n = sampling.len().max(1);
    let total_sampling: DurationNs = sampling.iter().copied().sum();
    let device_total = baseline.saturating_sub(total_sampling);
    let per_device = DurationNs::from_nanos(device_total.as_nanos() / n as u64);
    let pairs: Vec<(DurationNs, DurationNs)> = sampling.iter().map(|&s| (s, per_device)).collect();
    Ok(AblationResult {
        baseline,
        optimized: overlapped_makespan(&pairs),
    })
}

/// Parallel CSR sampling: re-run TGAT with temporal sampling charged as
/// a critical path fanned out over the batch's roots on a platform with
/// `cores` CPU cores (saturation width scales with the core count, 256
/// parallel roots per core as in the default spec). The baseline is the
/// profiled frameworks' serial per-node sampling loop on the default
/// platform. With enough roots per batch, the sampling share — and with
/// it the paper's workload imbalance — shrinks as cores grow.
///
/// # Errors
///
/// Propagates inference errors from either run.
pub fn parallel_sampling_tgat(
    model: &mut Tgat,
    cfg: &InferenceConfig,
    cores: u32,
) -> Result<AblationResult> {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, cfg)?;
    let baseline = inference_total(&ex);
    let mut spec = PlatformSpec::default();
    spec.cpu.cores = cores;
    spec.cpu.saturation_width = cores as u64 * 256;
    let mut ex = Executor::new(spec, ExecMode::Gpu);
    model.run(&mut ex, &cfg.clone().with_parallel_sampling(true))?;
    Ok(AblationResult {
        baseline,
        optimized: inference_total(&ex),
    })
}

/// §5.1.1 applied to EvolveGCN: overlap the CPU snapshot preparation and
/// upload of step `t+1` with the GPU stages (RNN/top-k/GNN) of step `t`.
/// With preparation dominating each step, this recovers far more than
/// Fig 10's RNN‖GNN pipelining alone.
///
/// # Errors
///
/// Propagates inference errors from the baseline run.
pub fn overlapped_prep_evolvegcn(
    model: &mut EvolveGcn,
    cfg: &InferenceConfig,
) -> Result<AblationResult> {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, cfg)?;
    let baseline = inference_total(&ex);
    let prep = module_durations(&ex, "snapshot_prep");
    let h2d = module_durations(&ex, "memcpy_h2d");
    let n = prep.len();
    let device_total: DurationNs = ["topk", "rnn", "gnn", "memcpy_d2h"]
        .iter()
        .map(|m| module_durations(&ex, m).into_iter().sum::<DurationNs>())
        .sum();
    let per_device = DurationNs::from_nanos(device_total.as_nanos() / n.max(1) as u64);
    let pairs: Vec<(DurationNs, DurationNs)> = prep
        .iter()
        .zip(&h2d)
        .map(|(&p, &h)| (p + h, per_device))
        .collect();
    Ok(AblationResult {
        baseline,
        optimized: overlapped_makespan(&pairs),
    })
}

/// §3.3: quantify what JODIE's t-batch parallelization buys at inference
/// time by comparing against the naive one-event-per-step schedule (the
/// JODIE paper reports 9.2× for training).
///
/// # Errors
///
/// Propagates inference errors from either run.
pub fn jodie_tbatch(
    data: &dgnn_datasets::TemporalDataset,
    cfg: &InferenceConfig,
    seed: u64,
) -> Result<AblationResult> {
    let run = |use_tbatch: bool| -> Result<DurationNs> {
        let mut model = crate::jodie::Jodie::new(
            data.clone(),
            crate::jodie::JodieConfig {
                dim: 128,
                use_tbatch,
            },
            seed,
        );
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        model.run(&mut ex, cfg)?;
        Ok(inference_total(&ex))
    };
    Ok(AblationResult {
        baseline: run(false)?,
        optimized: run(true)?,
    })
}

/// §5.2.2: ship only the non-overlapping fraction of each EvolveGCN
/// snapshot, assuming adjacent snapshots share `similarity ∈ [0, 1]` of
/// their bytes (sliding-window overlap).
///
/// # Errors
///
/// Propagates inference errors from the baseline run.
pub fn delta_snapshot_evolvegcn(
    model: &mut EvolveGcn,
    cfg: &InferenceConfig,
    similarity: f64,
) -> Result<AblationResult> {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, cfg)?;
    let baseline = inference_total(&ex);
    let h2d_sizes: Vec<u64> = ex
        .timeline()
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.category,
                EventCategory::Transfer(dgnn_device::TransferDir::H2D)
            ) && e.scope.starts_with("inference/")
        })
        .map(|e| e.bytes)
        .collect();
    let full: u64 = h2d_sizes.iter().sum();
    let delta = delta_transfer_bytes(&h2d_sizes, similarity);
    let saved_bytes = full.saturating_sub(delta);
    let saved = DurationNs::from_secs_f64(saved_bytes as f64 / ex.spec().pcie.bandwidth);
    Ok(AblationResult {
        baseline,
        optimized: baseline.saturating_sub(saved),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolvegcn::{EvolveGcnConfig, EvolveGcnVersion};
    use crate::tgat::TgatConfig;
    use dgnn_datasets::{bitcoin_alpha, wikipedia, Scale};

    fn egcn() -> EvolveGcn {
        EvolveGcn::new(
            bitcoin_alpha(Scale::Tiny, 1),
            EvolveGcnConfig {
                hidden: 100,
                version: EvolveGcnVersion::O,
            },
            7,
        )
    }

    #[test]
    fn stream_overlap_recovers_tgat_sampling_wall() {
        // The §5.1.1 acceptance point: at batch ≥ 1000 with the heavy
        // neighbor count the paper flags (k ≈ 100), real stream overlap
        // must cut TGAT end-to-end simulated time by at least 20%.
        let mut m = Tgat::new(wikipedia(Scale::Tiny, 1), TgatConfig::default(), 7);
        let cfg = InferenceConfig::default()
            .with_batch_size(1000)
            .with_neighbors(100)
            .with_max_units(4);
        let r = stream_overlap(&mut m, &cfg).unwrap();
        let reduction = 1.0 - r.optimized.as_nanos() as f64 / r.baseline.as_nanos() as f64;
        assert!(
            reduction >= 0.20,
            "stream overlap should recover >=20%, got {:.1}%",
            reduction * 100.0
        );
    }

    #[test]
    fn stream_overlap_helps_every_pipelined_model() {
        let cfg = InferenceConfig::default()
            .with_batch_size(500)
            .with_max_units(3);
        let mut tgn = crate::Tgn::new(wikipedia(Scale::Tiny, 1), crate::TgnConfig::default(), 7);
        let mut mol = crate::MolDgnn::new(
            dgnn_datasets::iso17(Scale::Tiny, 1),
            crate::MolDgnnConfig::default(),
            7,
        );
        let mut eg = egcn();
        let models: [&mut dyn DgnnModel; 3] = [&mut tgn, &mut mol, &mut eg];
        for m in models {
            let name = m.name();
            let r = stream_overlap(m, &cfg).unwrap();
            assert!(
                r.optimized < r.baseline,
                "{name}: overlap {:?} should beat serial {:?}",
                r.optimized,
                r.baseline
            );
        }
    }

    #[test]
    fn stream_overlap_preserves_numerics() {
        // The lanes reorder *pricing*, never data: serial and overlapped
        // runs of a fresh model must produce identical checksums.
        let run = |overlap: bool| {
            let mut m = Tgat::new(wikipedia(Scale::Tiny, 1), TgatConfig::default(), 7);
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let cfg = InferenceConfig::default()
                .with_batch_size(200)
                .with_max_units(3)
                .with_pipeline_overlap(overlap);
            m.run(&mut ex, &cfg).unwrap().checksum
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn coalescing_cuts_tgn_transfer_count_four_fold() {
        let mut m = crate::Tgn::new(wikipedia(Scale::Tiny, 1), crate::TgnConfig::default(), 7);
        let cfg = InferenceConfig::default()
            .with_batch_size(500)
            .with_neighbors(10)
            .with_max_units(3);
        let r = coalesced_transfers(&mut m, &cfg).unwrap();
        assert_eq!(r.per_tensor_bytes, r.coalesced_bytes, "bytes conserved");
        assert!(
            r.count_reduction() >= 4.0,
            "TGN coalescing should merge >=4x, got {:.1}x ({} -> {})",
            r.count_reduction(),
            r.per_tensor_transfers,
            r.coalesced_transfers
        );
        assert!(r.timing.optimized < r.timing.baseline);
    }

    #[test]
    fn coalescing_cuts_moldgnn_transfer_count_four_fold() {
        let mut m = crate::MolDgnn::new(
            dgnn_datasets::iso17(Scale::Tiny, 1),
            crate::MolDgnnConfig::default(),
            7,
        );
        let cfg = InferenceConfig::default()
            .with_batch_size(64)
            .with_max_units(1);
        let r = coalesced_transfers(&mut m, &cfg).unwrap();
        assert_eq!(r.per_tensor_bytes, r.coalesced_bytes, "bytes conserved");
        assert!(
            r.count_reduction() >= 4.0,
            "MolDGNN coalescing should merge >=4x, got {:.1}x",
            r.count_reduction()
        );
        assert!(r.timing.optimized < r.timing.baseline);
    }

    #[test]
    fn pipelining_evolvegcn_helps() {
        let cfg = InferenceConfig::default().with_max_units(8);
        let r = pipelined_evolvegcn(&mut egcn(), &cfg).unwrap();
        assert!(r.optimized < r.baseline);
        assert!(r.speedup() > 1.0);
        assert!(r.speedup() < 2.0, "two-stage pipeline caps at 2x");
    }

    #[test]
    fn overlapping_tgat_sampling_helps_substantially() {
        let mut m = Tgat::new(wikipedia(Scale::Tiny, 1), TgatConfig::default(), 7);
        let cfg = InferenceConfig::default()
            .with_batch_size(100)
            .with_max_units(4);
        let r = overlapped_sampling_tgat(&mut m, &cfg).unwrap();
        assert!(r.optimized < r.baseline);
        // Sampling dominates, so overlap is bounded by the sampling chain:
        // speedup stays modest but real.
        assert!(r.speedup() > 1.05, "speedup {}", r.speedup());
    }

    #[test]
    fn parallel_sampling_speedup_grows_with_cores() {
        let mut m = Tgat::new(wikipedia(Scale::Tiny, 1), TgatConfig::default(), 7);
        // Enough roots per batch to engage many cores.
        let cfg = InferenceConfig::default()
            .with_batch_size(2000)
            .with_max_units(1);
        let mut previous = 0.0;
        for cores in [1u32, 4, 16] {
            let r = parallel_sampling_tgat(&mut m, &cfg, cores).unwrap();
            assert!(
                r.speedup() >= previous,
                "speedup must be monotone in cores: {} at {cores} cores after {previous}",
                r.speedup()
            );
            previous = r.speedup();
        }
        assert!(
            previous > 1.5,
            "16 cores should clearly beat serial sampling, got {previous}"
        );
    }

    #[test]
    fn prep_overlap_beats_fig10_pipelining_alone() {
        let cfg = InferenceConfig::default().with_max_units(8);
        let fig10 = pipelined_evolvegcn(&mut egcn(), &cfg).unwrap();
        let prep = overlapped_prep_evolvegcn(&mut egcn(), &cfg).unwrap();
        assert!(prep.optimized < prep.baseline);
        assert!(
            prep.speedup() >= fig10.speedup(),
            "prep overlap {} should beat RNN||GNN {}",
            prep.speedup(),
            fig10.speedup()
        );
    }

    #[test]
    fn tbatching_speeds_up_jodie() {
        let data = dgnn_datasets::wikipedia(Scale::Tiny, 3);
        let cfg = InferenceConfig::default()
            .with_batch_size(120)
            .with_max_units(2);
        let r = jodie_tbatch(&data, &cfg, 3).unwrap();
        assert!(
            r.speedup() > 1.3,
            "t-batching should clearly beat per-event steps, got {}",
            r.speedup()
        );
    }

    #[test]
    fn delta_transfer_scales_with_similarity() {
        let cfg = InferenceConfig::default().with_max_units(6);
        let none = delta_snapshot_evolvegcn(&mut egcn(), &cfg, 0.0).unwrap();
        let most = delta_snapshot_evolvegcn(&mut egcn(), &cfg, 0.9).unwrap();
        assert!((none.speedup() - 1.0).abs() < 1e-6);
        assert!(most.speedup() > none.speedup());
        assert!(most.optimized < most.baseline);
    }
}
