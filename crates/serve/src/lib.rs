//! # dgnn-serve
//!
//! Deterministic simulated inference serving for the DGNN suite.
//!
//! The paper profiles single inference runs and finds (§4.4) that GPU
//! context and model initialization can cost as much as ~86 inference
//! iterations — a cost that any real deployment must *amortize* across
//! requests. This crate builds that missing serving layer on the
//! simulated platform, end to end and bit-deterministic:
//!
//! * [`workload::generate`] — a seeded Poisson request stream over a
//!   weighted model mix (integer-nanosecond arrivals);
//! * [`WindowBatcher`]-driven dynamic micro-batching — a batch closes
//!   when its window expires or it reaches capacity;
//! * [`WarmPool`] — pre-initialized replica sessions; warm hits pay
//!   only per-run allocation, cold starts pay a model swap;
//! * [`serve`] — the discrete-event loop tying it together, with
//!   backpressure shedding at a queue bound;
//! * [`serve_streaming`] — the same loop with queries racing live graph
//!   ingestion: appends into a [`dgnn_graph::StreamingAdjacency`] delta
//!   log, TGN/JODIE node-memory updates at ingest time, and per-request
//!   **staleness** measurement against the visible snapshot;
//! * [`ServeReport`] — p50/p95/p99 decomposition of request latency
//!   into assembly, queue wait, service (and staleness) phases.
//!
//! On top of the single pool sits the **fleet layer**:
//!
//! * [`WorkloadShape`] — traffic shapes beyond homogeneous Poisson:
//!   diurnal sinusoid, flash-crowd burst, heavy-tailed per-user
//!   sessions with per-session model affinity;
//! * [`Router`] — placement across N pools under [`RouterPolicy`]
//!   (affinity-first, power-of-two-choices, join-shortest-queue), all
//!   deterministically tie-broken;
//! * [`Autoscaler`] — queue-depth-driven scale-out/in where every
//!   spawned pool pays the full provisioning warm-up (the §4.4 cost as
//!   a *scaling* penalty) and every drained pool stops accruing
//!   replica-seconds;
//! * [`serve_fleet`] — the fleet event loop, reported by
//!   [`FleetReport`] with SLO attainment, shed rate, replica-seconds
//!   and scale-event counts.
//!
//! Everything runs on the virtual clock: no wall-clock time, no thread
//! scheduling, no hash-map iteration order anywhere in a decision path.
//! The same seed and configuration replay the same nanosecond schedule
//! and the same output bits on any machine.
//!
//! ```
//! use dgnn_datasets::{wikipedia, Scale};
//! use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
//! use dgnn_models::{InferenceConfig, Jodie, JodieConfig, ReplicaHandle};
//! use dgnn_serve::{serve, ServeConfig, ServedModel};
//!
//! let data = wikipedia(Scale::Tiny, 11);
//! let zoo = vec![ServedModel {
//!     handle: ReplicaHandle::new("jodie", move || {
//!         Box::new(Jodie::new(data.clone(), JodieConfig::default(), 11))
//!     }),
//!     cfg: InferenceConfig::default().with_max_units(1),
//!     weight: 1.0,
//! }];
//! let cfg = ServeConfig {
//!     seed: 7,
//!     n_requests: 8,
//!     arrival_rate_rps: 50.0,
//!     batch_window: DurationNs::from_millis(2),
//!     max_batch: 4,
//!     pool_size: 1,
//!     queue_bound: 64,
//!     mode: ExecMode::Gpu,
//!     trace: false,
//!     spec: PlatformSpec::default(),
//! };
//! let outcome = serve(&cfg, &zoo);
//! assert_eq!(outcome.report.served + outcome.report.shed, 8);
//! assert!(outcome.report.latency.p99 >= outcome.report.latency.p50);
//! ```

#![forbid(unsafe_code)]

mod autoscaler;
mod fleet;
mod pool;
mod report;
mod router;
mod sim;
mod streaming;
pub mod workload;

use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_graph::WindowBatcher;
use dgnn_models::{InferenceConfig, ReplicaHandle};

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleEvent, ScaleKind};
pub use fleet::{serve_fleet, FleetBatch, FleetConfig, FleetOutcome};
pub use pool::{Replica, ServiceRecord, WarmPool};
pub use report::{FleetReport, ServeReport, ServedBatch, ServedRequest};
pub use router::{PoolLoad, Router, RouterPolicy};
pub use sim::{serve, ServeOutcome};
pub use streaming::{
    generate_ingest, mean_staleness_ms, serve_streaming, StreamingConfig, StreamingOutcome,
    StreamingState,
};
pub use workload::{generate_shaped, validate_rate, RateError, Request, WorkloadShape, MIN_RATE};

/// Queue-bound value that disables backpressure shedding entirely.
/// Reports render a run at this bound as "shedding disabled" rather
/// than "0 shed", because a zero count is structural, not observed.
pub const UNBOUNDED: usize = usize::MAX;

/// One entry in the served model mix: how to build the model, how to
/// run one request unit of it, and its share of the request stream.
pub struct ServedModel {
    /// Recipe for building fresh model instances (numerics depend only
    /// on this, never on which replica served the request).
    pub handle: ReplicaHandle,
    /// Per-unit inference configuration; a batch of `k` requests runs
    /// with `max_units` scaled by `k`.
    pub cfg: InferenceConfig,
    /// Relative share of the request mix (need not be normalized).
    pub weight: f64,
}

impl std::fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedModel")
            .field("handle", &self.handle)
            .field("weight", &self.weight)
            .finish_non_exhaustive()
    }
}

/// Full configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed for arrivals and mix assignment.
    pub seed: u64,
    /// Number of requests to generate.
    pub n_requests: usize,
    /// Expected arrivals per simulated second.
    pub arrival_rate_rps: f64,
    /// Micro-batch window: a batch closes this long after its first
    /// member arrives (zero → every request is its own batch).
    pub batch_window: DurationNs,
    /// Maximum requests per batch (capacity close).
    pub max_batch: usize,
    /// Number of warm replica slots.
    pub pool_size: usize,
    /// Admitted-but-unstarted requests beyond which arrivals are shed
    /// ([`UNBOUNDED`] disables shedding).
    pub queue_bound: usize,
    /// Execution mode for every replica session.
    pub mode: ExecMode,
    /// Record timelines + provenance traces for sanitizer audits.
    pub trace: bool,
    /// Simulated platform replicas run on.
    pub spec: PlatformSpec,
}

impl Default for ServeConfig {
    /// A small, always-valid smoke configuration.
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            n_requests: 64,
            arrival_rate_rps: 100.0,
            batch_window: DurationNs::from_millis(5),
            max_batch: 4,
            pool_size: 2,
            queue_bound: 256,
            mode: ExecMode::Gpu,
            trace: false,
            spec: PlatformSpec::default(),
        }
    }
}

impl ServeConfig {
    /// The batcher implied by this configuration.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch` is zero.
    pub fn batcher(&self) -> WindowBatcher {
        WindowBatcher::new(self.batch_window.as_nanos(), self.max_batch)
    }

    /// Validates the arrival rate before the generator turns it into a
    /// schedule. A NaN, infinite, non-positive or sub-[`MIN_RATE`] rate
    /// would previously saturate the `gap_s * 1e9 → u64` conversion and
    /// produce a silently nonsensical arrival schedule; now it is a
    /// typed error here and a panic in [`workload::generate`].
    ///
    /// # Errors
    ///
    /// Returns a [`RateError`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), RateError> {
        workload::validate_rate("arrival rate", self.arrival_rate_rps)
    }
}
