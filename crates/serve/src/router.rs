//! Deterministic request routing across warm pools.
//!
//! The router is the fleet's placement brain: every arrival is assigned
//! to exactly one pool before it queues. Policies only see a
//! [`PoolLoad`] snapshot (queue depth + model residency) — never
//! replica internals — so placement composes with any pool
//! implementation, and every tie is broken by the lowest pool id so a
//! replayed seed reproduces the identical placement sequence.

use dgnn_tensor::TensorRng;

/// Snapshot of one routable pool, as seen by the router at an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLoad {
    /// Fleet-wide pool id (stable across the pool's lifetime).
    pub pool: usize,
    /// Requests queued at the pool (all models, excluding in-flight).
    pub queued: usize,
    /// Whether the arriving request's model is resident on at least
    /// one of the pool's replicas.
    pub resident: bool,
}

/// Placement policy. All three are deterministic: ties fall to the
/// lowest pool id, and power-of-two-choices draws both probes from the
/// router's own seeded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Prefer the least-loaded pool where the model is already
    /// resident; fall back to join-shortest-queue when no pool holds
    /// it. Converts per-model heterogeneity into warm-hit rate.
    AffinityFirst,
    /// Sample two pools from the seeded stream, send to the
    /// less-loaded of the two (lower id on a tie). O(1) per decision
    /// with near-JSQ tail behaviour.
    PowerOfTwoChoices,
    /// Scan all pools, send to the shortest queue (lower id on a tie).
    JoinShortestQueue,
}

impl RouterPolicy {
    /// Short stable label for report lines and BENCH records.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::AffinityFirst => "affinity_first",
            RouterPolicy::PowerOfTwoChoices => "power_of_two",
            RouterPolicy::JoinShortestQueue => "shortest_queue",
        }
    }
}

/// Places requests across pools under a [`RouterPolicy`].
///
/// The router owns its RNG stream (seeded from the fleet seed), so
/// power-of-two probes consume randomness at a fixed two-draws-per-
/// arrival cadence regardless of outcome — replaying a seed replays
/// the exact probe sequence.
///
/// ```
/// use dgnn_serve::{PoolLoad, Router, RouterPolicy};
///
/// let mut router = Router::new(RouterPolicy::AffinityFirst, 42);
/// let loads = [
///     PoolLoad { pool: 0, queued: 5, resident: false },
///     PoolLoad { pool: 1, queued: 9, resident: true },
///     PoolLoad { pool: 2, queued: 2, resident: false },
/// ];
/// // Affinity wins over raw queue depth: pool 1 holds the model.
/// assert_eq!(router.place(&loads), 1);
///
/// let mut jsq = Router::new(RouterPolicy::JoinShortestQueue, 42);
/// assert_eq!(jsq.place(&loads), 2);
/// ```
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    rng: TensorRng,
}

impl Router {
    /// Builds a router; `seed` feeds the power-of-two probe stream.
    #[must_use]
    pub fn new(policy: RouterPolicy, seed: u64) -> Self {
        Router {
            policy,
            rng: TensorRng::seed(seed.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ 0x2f17),
        }
    }

    /// The configured policy.
    #[must_use]
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Picks the destination pool id for one arrival.
    ///
    /// # Panics
    ///
    /// Panics when `loads` is empty — the fleet always keeps at least
    /// `min_pools ≥ 1` routable pools.
    pub fn place(&mut self, loads: &[PoolLoad]) -> usize {
        assert!(!loads.is_empty(), "router needs at least one routable pool");
        match self.policy {
            RouterPolicy::JoinShortestQueue => Self::shortest(loads),
            RouterPolicy::AffinityFirst => {
                let resident: Vec<PoolLoad> =
                    loads.iter().copied().filter(|l| l.resident).collect();
                if resident.is_empty() {
                    Self::shortest(loads)
                } else {
                    Self::shortest(&resident)
                }
            }
            RouterPolicy::PowerOfTwoChoices => {
                // Both draws always happen, keeping the stream cadence
                // independent of the loads.
                let a = self.draw(loads.len());
                let b = self.draw(loads.len());
                let (la, lb) = (loads[a], loads[b]);
                if (lb.queued, lb.pool) < (la.queued, la.pool) {
                    lb.pool
                } else {
                    la.pool
                }
            }
        }
    }

    /// Least-loaded pool, ties to the lowest id. `loads` arrives in
    /// ascending-id order from the fleet, so `min_by_key` on
    /// `(queued, pool)` is deterministic.
    fn shortest(loads: &[PoolLoad]) -> usize {
        loads
            .iter()
            .min_by_key(|l| (l.queued, l.pool))
            .expect("non-empty loads")
            .pool
    }

    fn draw(&mut self, n: usize) -> usize {
        #[expect(clippy::cast_possible_truncation, reason = "pool counts are tiny")]
        let idx = (self.rng.next_u64() % n as u64) as usize;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(queues: &[usize], resident: &[bool]) -> Vec<PoolLoad> {
        queues
            .iter()
            .zip(resident)
            .enumerate()
            .map(|(pool, (&queued, &resident))| PoolLoad {
                pool,
                queued,
                resident,
            })
            .collect()
    }

    #[test]
    fn jsq_picks_shortest_with_lowest_id_tiebreak() {
        let mut r = Router::new(RouterPolicy::JoinShortestQueue, 1);
        assert_eq!(r.place(&loads(&[4, 2, 2], &[false, false, false])), 1);
        assert_eq!(r.place(&loads(&[0, 0, 0], &[false, false, false])), 0);
    }

    #[test]
    fn affinity_prefers_resident_pools_then_falls_back() {
        let mut r = Router::new(RouterPolicy::AffinityFirst, 1);
        // Resident pool wins even with a deeper queue.
        assert_eq!(r.place(&loads(&[1, 7], &[false, true])), 1);
        // Two resident pools: least loaded among them.
        assert_eq!(r.place(&loads(&[3, 5, 4], &[false, true, true])), 2);
        // Nobody resident: plain JSQ.
        assert_eq!(r.place(&loads(&[3, 1, 4], &[false, false, false])), 1);
    }

    #[test]
    fn power_of_two_is_deterministic_and_prefers_lighter_probe() {
        let l = loads(&[10, 0, 10, 0], &[false; 4]);
        let mut a = Router::new(RouterPolicy::PowerOfTwoChoices, 7);
        let mut b = Router::new(RouterPolicy::PowerOfTwoChoices, 7);
        let seq_a: Vec<usize> = (0..64).map(|_| a.place(&l)).collect();
        let seq_b: Vec<usize> = (0..64).map(|_| b.place(&l)).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same probes");
        // Whenever an empty pool is probed it wins over a depth-10 one,
        // so empty pools should dominate the sequence.
        let light = seq_a.iter().filter(|&&p| p == 1 || p == 3).count();
        assert!(light > 40, "light pools won only {light}/64 placements");
    }

    #[test]
    fn single_pool_always_wins() {
        for policy in [
            RouterPolicy::AffinityFirst,
            RouterPolicy::PowerOfTwoChoices,
            RouterPolicy::JoinShortestQueue,
        ] {
            let mut r = Router::new(policy, 3);
            assert_eq!(r.place(&loads(&[9], &[false])), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one routable pool")]
    fn empty_loads_panic() {
        let mut r = Router::new(RouterPolicy::JoinShortestQueue, 1);
        r.place(&[]);
    }
}
