//! Integration tests for the §5 optimization ablations: the proposed
//! optimizations must strictly improve simulated time, within their
//! theoretical bounds.

use dgnn_suite::datasets::{bitcoin_alpha, wikipedia, Scale};
use dgnn_suite::models::optim::{
    delta_snapshot_evolvegcn, overlapped_sampling_tgat, pipelined_evolvegcn,
};
use dgnn_suite::models::{
    EvolveGcn, EvolveGcnConfig, EvolveGcnVersion, InferenceConfig, Tgat, TgatConfig,
};

const SEED: u64 = 33;

fn egcn(version: EvolveGcnVersion) -> EvolveGcn {
    EvolveGcn::new(
        bitcoin_alpha(Scale::Tiny, SEED),
        EvolveGcnConfig {
            hidden: 100,
            version,
        },
        SEED,
    )
}

#[test]
fn fig10_pipelining_improves_both_evolvegcn_variants() {
    let cfg = InferenceConfig::default().with_max_units(10);
    for version in [EvolveGcnVersion::O, EvolveGcnVersion::H] {
        let r = pipelined_evolvegcn(&mut egcn(version), &cfg).expect("ablation runs");
        assert!(r.optimized < r.baseline, "{version:?} must improve");
        assert!(
            r.speedup() <= 2.0 + 1e-9,
            "{version:?}: two stages cap at 2x"
        );
    }
}

#[test]
fn overlap_speedup_bounded_by_device_share() {
    // Overlapping sampling with compute can hide at most the smaller of
    // the two chains; with sampling dominating, speedup is bounded by
    // 1 / sampling_share.
    let cfg = InferenceConfig::default()
        .with_batch_size(150)
        .with_max_units(4);
    let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    let r = overlapped_sampling_tgat(&mut m, &cfg).expect("ablation runs");
    assert!(r.optimized < r.baseline);
    assert!(
        r.speedup() < 2.0,
        "sampling-bound: speedup {} must stay < 2x",
        r.speedup()
    );
}

#[test]
fn delta_transfer_monotone_in_similarity() {
    let cfg = InferenceConfig::default().with_max_units(8);
    let mut previous = None;
    for similarity in [0.0, 0.3, 0.6, 0.9] {
        let r = delta_snapshot_evolvegcn(&mut egcn(EvolveGcnVersion::O), &cfg, similarity)
            .expect("ablation runs");
        if let Some(prev) = previous {
            assert!(
                r.optimized <= prev,
                "higher similarity must not transfer more (sim {similarity})"
            );
        }
        previous = Some(r.optimized);
    }
}

#[test]
fn ablations_are_deterministic() {
    let cfg = InferenceConfig::default().with_max_units(6);
    let run = || {
        let r = pipelined_evolvegcn(&mut egcn(EvolveGcnVersion::O), &cfg).expect("runs");
        (r.baseline, r.optimized)
    };
    assert_eq!(run(), run());
}
