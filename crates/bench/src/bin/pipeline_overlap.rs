//! Async multi-stream executor ablation: pipeline overlap and transfer
//! coalescing.
//!
//! The paper's Section 4 bottlenecks 2 and 3 are GPU idle time while the
//! host samples neighbors, and per-tensor CPU↔GPU transfer overhead.
//! This binary quantifies how much of each the stream-aware executor
//! recovers:
//!
//! 1. **Pipeline overlap** (`InferenceConfig::pipeline_overlap`): TGAT
//!    serial vs double-buffered across batch sizes — end-to-end simulated
//!    time, reduction, and GPU busy fraction over the inference window
//!    (interval-union, so overlapping stream events are not double
//!    counted).
//! 2. **Transfer coalescing** (`TransferGranularity`): TGN and MolDGNN
//!    per-tensor vs coalesced — priced transfer counts, bytes (must be
//!    conserved), and the resulting time reduction.
//!
//! Every measurement is emitted as a machine-readable `BENCH {json}`
//! line; the committed `BENCH_overlap.json` baseline at the repo root is
//! the array of these records.
//!
//! Usage: `pipeline_overlap [--scale tiny|small|full] [--seed N] [--smoke]`
//!
//! `--smoke` shrinks the sweep to a single tiny configuration per model
//! so CI can exercise the full code path in seconds.

use dgnn_bench::parse_opts;
use dgnn_datasets::{iso17, wikipedia, Scale};
use dgnn_device::{ExecMode, Executor, PlatformSpec};
use dgnn_models::{
    optim, DgnnModel, InferenceConfig, MolDgnn, MolDgnnConfig, Tgat, TgatConfig, Tgn, TgnConfig,
};
use dgnn_profile::{InferenceProfile, TextTable};

/// One serial-vs-overlap measurement of a model run.
struct OverlapPoint {
    serial_ns: u64,
    overlap_ns: u64,
    serial_busy: f64,
    overlap_busy: f64,
}

impl OverlapPoint {
    fn reduction(&self) -> f64 {
        if self.serial_ns == 0 {
            return 0.0;
        }
        1.0 - self.overlap_ns as f64 / self.serial_ns as f64
    }
}

/// Runs `model` twice on fresh GPU executors — serial then overlapped —
/// and captures simulated time plus GPU busy fraction for both.
fn measure_overlap(model: &mut dyn DgnnModel, cfg: &InferenceConfig) -> OverlapPoint {
    let run = |model: &mut dyn DgnnModel, cfg: &InferenceConfig| -> (u64, f64) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        model
            .run(&mut ex, cfg)
            .unwrap_or_else(|e| panic!("{} inference failed: {e}", model.name()));
        let profile = InferenceProfile::capture(&ex, "inference");
        (
            profile.inference_time.as_nanos(),
            profile.utilization.busy_fraction,
        )
    };
    let (serial_ns, serial_busy) = run(model, cfg);
    let (overlap_ns, overlap_busy) = run(model, &cfg.clone().with_pipeline_overlap(true));
    OverlapPoint {
        serial_ns,
        overlap_ns,
        serial_busy,
        overlap_busy,
    }
}

fn main() {
    let opts = parse_opts();
    let smoke = opts.rest.iter().any(|a| a == "--smoke");
    // Overlap shares are scale-insensitive (the pipeline hides the same
    // fraction of the dominant lane regardless of event count), so cap
    // the dataset at Small to keep host-side sampling wall-clock sane.
    let scale = if smoke {
        Scale::Tiny
    } else {
        match opts.scale {
            Scale::Full => Scale::Small,
            s => s,
        }
    };

    // ── 1. TGAT pipeline overlap across batch sizes ────────────────────
    let k = 100usize; // transfer/compute-heavy regime where overlap pays
    let units = if smoke { 2 } else { 4 };
    let batches: &[usize] = if smoke { &[200] } else { &[200, 1_000, 4_000] };

    let mut table = TextTable::new(
        &format!("Pipeline overlap — TGAT serial vs double-buffered (k={k}, {scale:?})"),
        &[
            "batch",
            "serial ms",
            "overlap ms",
            "reduction",
            "gpu busy serial",
            "gpu busy overlap",
        ],
    );
    for &batch in batches {
        let mut model = Tgat::new(
            wikipedia(scale, opts.seed),
            TgatConfig::default(),
            opts.seed,
        );
        let cfg = InferenceConfig::default()
            .with_batch_size(batch)
            .with_neighbors(k)
            .with_max_units(units);
        let p = measure_overlap(&mut model, &cfg);
        table.row(&[
            format!("{batch}"),
            format!("{:.3}", p.serial_ns as f64 / 1e6),
            format!("{:.3}", p.overlap_ns as f64 / 1e6),
            format!("{:.1}%", p.reduction() * 100.0),
            format!("{:.1}%", p.serial_busy * 100.0),
            format!("{:.1}%", p.overlap_busy * 100.0),
        ]);
        println!(
            "BENCH {{\"bench\":\"pipeline_overlap\",\"model\":\"tgat\",\"batch\":{batch},\
             \"k\":{k},\"serial_ns\":{},\"overlap_ns\":{},\"reduction\":{:.4},\
             \"gpu_busy_serial\":{:.4},\"gpu_busy_overlap\":{:.4}}}",
            p.serial_ns,
            p.overlap_ns,
            p.reduction(),
            p.serial_busy,
            p.overlap_busy,
        );
    }
    print!("{}", table.render());

    // ── 2. Transfer coalescing: per-tensor vs coalesced ────────────────
    let mut coalesce_table = TextTable::new(
        "Transfer coalescing — per-tensor vs one transaction per direction per batch",
        &[
            "model",
            "batch",
            "per-tensor xfers",
            "coalesced xfers",
            "count reduction",
            "bytes",
            "time speedup",
        ],
    );
    let tgn_batches: &[usize] = if smoke { &[128] } else { &[200, 500, 1_000] };
    let mol_batches: &[usize] = if smoke { &[16] } else { &[32, 64] };
    let tgn_units = if smoke { 1 } else { 3 };

    let mut coalesce_case = |model: &mut dyn DgnnModel, cfg: &InferenceConfig, batch: usize| {
        let r = optim::coalesced_transfers(model, cfg)
            .unwrap_or_else(|e| panic!("{} coalescing run failed: {e}", model.name()));
        assert_eq!(
            r.per_tensor_bytes, r.coalesced_bytes,
            "coalescing must conserve bytes"
        );
        coalesce_table.row(&[
            model.name().to_string(),
            format!("{batch}"),
            format!("{}", r.per_tensor_transfers),
            format!("{}", r.coalesced_transfers),
            format!("{:.1}x", r.count_reduction()),
            format!("{}", r.coalesced_bytes),
            format!("{:.3}x", r.timing.speedup()),
        ]);
        println!(
            "BENCH {{\"bench\":\"transfer_coalescing\",\"model\":\"{}\",\"batch\":{batch},\
             \"per_tensor_transfers\":{},\"coalesced_transfers\":{},\
             \"count_reduction\":{:.3},\"bytes\":{},\"time_speedup\":{:.4}}}",
            model.name(),
            r.per_tensor_transfers,
            r.coalesced_transfers,
            r.count_reduction(),
            r.coalesced_bytes,
            r.timing.speedup(),
        );
    };

    for &batch in tgn_batches {
        let mut model = Tgn::new(wikipedia(scale, opts.seed), TgnConfig::default(), opts.seed);
        let cfg = InferenceConfig::default()
            .with_batch_size(batch)
            .with_neighbors(10)
            .with_max_units(tgn_units);
        coalesce_case(&mut model, &cfg, batch);
    }
    for &batch in mol_batches {
        let mut model = MolDgnn::new(iso17(scale, opts.seed), MolDgnnConfig::default(), opts.seed);
        let cfg = InferenceConfig::default()
            .with_batch_size(batch)
            .with_max_units(1);
        coalesce_case(&mut model, &cfg, batch);
    }
    print!("{}", coalesce_table.render());
}
