//! JODIE — Predicting Dynamic Embedding Trajectory (Kumar et al., KDD'19).
//!
//! Continuous-time model with mutually-recursive user and item RNNs and
//! an embedding-projection operator. Inference uses the **t-batch**
//! algorithm (Sec 3.3): the CPU partitions each event window into
//! hazard-free t-batches, each t-batch ships to the GPU, both RNNs
//! update, the projection predicts, and results return to the CPU
//! (Fig 5a). Because consecutive t-batches are data-dependent, the GPU
//! runs many *small* kernels back to back — utilization stays at
//! 1.5–2.5% despite t-batching.
//!
//! Under streaming serving the embedding state also advances at ingest
//! time — see [`crate::IngestMemory`] with
//! [`crate::MemoryRule::JodieRnn`], the serving-side twin of the RNN
//! update applied per live event on the Host lane.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{DeviceTensor, Dispatcher, Executor, HostWork};
use dgnn_graph::{TBatcher, TemporalEvent};
use dgnn_nn::{EmbeddingTable, Linear, Module, RnnCell};
use dgnn_tensor::{OpDescriptor, Tensor, TensorRng};

use crate::common::{representative, DgnnModel, InferenceConfig, RunSummary};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per event during t-batch construction (hash map ops in
/// interpreted code).
const TBATCH_EVENT_OPS: u64 = 300;
/// Framework ops per t-batch step: the reference drives each t-batch
/// from a Python loop that gathers embeddings, slices tensors and
/// re-indexes — roughly a millisecond of host time per t-batch.
const TBATCH_STEP_OPS: u64 = 400_000;

/// JODIE hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JodieConfig {
    /// Embedding dimension of users and items.
    pub dim: usize,
    /// Whether to build t-batches (the paper's Sec 3.3 configuration).
    /// With `false`, every event runs as its own step — the naive
    /// schedule t-batching was invented to beat.
    pub use_tbatch: bool,
}

impl Default for JodieConfig {
    fn default() -> Self {
        JodieConfig {
            dim: 128,
            use_tbatch: true,
        }
    }
}

/// The JODIE model bound to a dataset.
#[derive(Debug)]
pub struct Jodie {
    data: TemporalDataset,
    cfg: JodieConfig,
    embeddings: EmbeddingTable,
    user_rnn: RnnCell,
    item_rnn: RnnCell,
    projector: Linear,
    predictor: Linear,
}

impl Jodie {
    /// Builds JODIE over an interaction dataset.
    pub fn new(data: TemporalDataset, cfg: JodieConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let d = cfg.dim;
        let in_dim = d + data.edge_dim() + 1; // partner embedding + features + Δt
        Jodie {
            embeddings: EmbeddingTable::new(data.stream.n_nodes(), d, &mut rng),
            user_rnn: RnnCell::new(in_dim, d, &mut rng),
            item_rnn: RnnCell::new(in_dim, d, &mut rng),
            projector: Linear::new(d, d, &mut rng),
            predictor: Linear::new(d, d, &mut rng),
            data,
            cfg,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![
            &self.embeddings,
            &self.user_rnn,
            &self.item_rnn,
            &self.projector,
            &self.predictor,
        ]
    }
}

impl DgnnModel for Jodie {
    fn name(&self) -> &'static str {
        "jodie"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "jodie")
            .expect("jodie registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        (cfg.batch_size * (2 * self.cfg.dim + self.data.edge_dim()) * 4) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let d = self.cfg.dim;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let windows: Vec<Vec<TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::new(ex);
            for window in &windows {
                // 1. t-batch construction on the CPU.
                let tbatches = dx.scope("tbatch", |dx| {
                    if self.cfg.use_tbatch {
                        let (tb, build_ops) = TBatcher::new().build(window);
                        dx.host(HostWork {
                            label: "t_batch",
                            ops: build_ops + window.len() as u64 * TBATCH_EVENT_OPS,
                            seq_bytes: window.len() as u64 * dgnn_graph::EventStream::EVENT_BYTES,
                            irregular_bytes: window.len() as u64 * 64,
                            parallelism: 1,
                        });
                        tb
                    } else {
                        // Naive schedule: one event per step.
                        (0..window.len())
                            .map(|i| dgnn_graph::TBatch {
                                event_indices: vec![i],
                            })
                            .collect()
                    }
                });

                // 2. Sequential t-batch execution (RNN dependency chain).
                for tb in &tbatches {
                    let width = tb.len();
                    let rep = representative(width);
                    let scale = width as f64 / rep as f64;
                    dx.scope("step_prep", |dx| {
                        dx.host(HostWork {
                            label: "tbatch_step",
                            ops: TBATCH_STEP_OPS,
                            seq_bytes: (width * d * 4) as u64,
                            irregular_bytes: (width * 128) as u64,
                            parallelism: 1,
                        });
                    });
                    let payload = DeviceTensor::host_scaled(
                        Tensor::zeros(&[1, self.data.edge_dim() + 4]),
                        width as f64,
                    );
                    dx.scope("memcpy_h2d", |dx| dx.ensure_resident(&payload));

                    let rep_users: Vec<usize> = tb
                        .event_indices
                        .iter()
                        .take(rep)
                        .map(|&i| window[i].src)
                        .collect();
                    let rep_items: Vec<usize> = tb
                        .event_indices
                        .iter()
                        .take(rep)
                        .map(|&i| window[i].dst)
                        .collect();

                    let new_u = dx.scope("rnn_update", |dx| -> Result<DeviceTensor> {
                        // User RNN and item RNN, each a small kernel group
                        // over the t-batch width.
                        let u = self.embeddings.lookup_scaled(dx, &rep_users, scale)?;
                        let i = self.embeddings.lookup_scaled(dx, &rep_items, scale)?;
                        let feats: Vec<usize> = tb
                            .event_indices
                            .iter()
                            .take(rep)
                            .map(|&ix| window[ix].feature_idx)
                            .collect();
                        let e = self.data.edge_features.gather_rows(&feats)?;
                        let dt = Tensor::ones(&[rep, 1]);
                        let xu = dx.adopt(i.data().concat_cols(&e)?.concat_cols(&dt)?, scale);
                        let xi = dx.adopt(u.data().concat_cols(&e)?.concat_cols(&dt)?, scale);
                        let nu = self.user_rnn.forward(dx, &xu, &u)?;
                        let ni = self.item_rnn.forward(dx, &xi, &i)?;
                        self.embeddings.update(dx, &rep_users, &nu)?;
                        self.embeddings.update(dx, &rep_items, &ni)?;
                        Ok(nu)
                    })?;

                    let pred = dx.scope("projection", |dx| -> Result<DeviceTensor> {
                        // JODIE's time projection is an element-wise
                        // (1 + Δt·w) scaling — no functional counterpart
                        // beyond the projector itself.
                        dx.charge(OpDescriptor::elementwise("project", width * d, 2, 2), 1.0);
                        let proj = self.projector.forward(dx, &new_u)?;
                        let pred = self.predictor.forward(dx, &proj)?;
                        checksum += pred.data().sum();
                        Ok(pred)
                    })?;

                    dx.scope("memcpy_d2h", |dx| dx.download(&pred));
                }
                iterations += 1;
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{wikipedia, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> Jodie {
        Jodie::new(wikipedia(Scale::Tiny, 1), JodieConfig::default(), 7)
    }

    fn cfg() -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(100)
            .with_max_units(2)
    }

    #[test]
    fn runs_and_profiles() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let s = m.run(&mut ex, &cfg()).unwrap();
        assert_eq!(s.iterations, 2);
        assert!(s.checksum.is_finite());
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.breakdown.share_of("rnn_update") > 0.0);
        assert!(p.breakdown.share_of("tbatch") > 0.0);
    }

    #[test]
    fn gpu_utilization_is_low() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg()).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.utilization.busy_fraction < 0.20,
            "JODIE util {}",
            p.utilization.busy_fraction
        );
    }

    #[test]
    fn tbatching_reduces_kernel_count_vs_per_event() {
        // The point of t-batching: fewer, wider steps — and therefore
        // fewer kernel launches — than the naive one-event-per-step
        // schedule over the same window.
        let kernels = |use_tbatch: bool| {
            let mut m = Jodie::new(
                wikipedia(Scale::Tiny, 1),
                JodieConfig {
                    dim: 128,
                    use_tbatch,
                },
                7,
            );
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg()).unwrap();
            ex.timeline()
                .events()
                .iter()
                .filter(|e| e.category.is_gpu_compute())
                .count()
        };
        let batched = kernels(true);
        let naive = kernels(false);
        assert!(
            batched < naive,
            "t-batching should cut kernel launches: {batched} vs naive {naive}"
        );
    }

    #[test]
    fn embeddings_change_after_run() {
        let mut m = build();
        let before = m.embeddings.table().clone();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg()).unwrap();
        assert_ne!(&before, m.embeddings.table());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg()).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cpu_mode_runs() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        assert!(m.run(&mut ex, &cfg()).is_ok());
    }
}
