//! MolDGNN (Ashby & Bilbrey, 2021) — discrete-time GCN-LSTM over
//! molecular dynamics trajectories.
//!
//! Per frame of a trajectory (frames are strictly sequential through the
//! LSTM), a batch of molecules is processed together:
//! 1. the CPU ships every molecule's dense adjacency matrix of the frame
//!    to the GPU (the paper's dominant cost — memcpy is 80–90% of GPU
//!    working time, Fig 7b),
//! 2. a GCN encodes each molecular graph,
//! 3. an LSTM carries the temporal state,
//! 4. the predicted next-frame adjacency matrices return to the CPU for
//!    atom-distance calculation.

use dgnn_datasets::TrajectoryDataset;
use dgnn_device::{
    DeviceTensor, Dispatcher, ExecMode, Executor, HostWork, StreamId, TensorClass, TransferDir,
};
use dgnn_nn::{GcnLayer, Linear, LstmCell, Module};
use dgnn_tensor::{Tensor, TensorRng};

use crate::common::{
    lane_handoff, on_lane, representative, shard_barrier, DgnnModel, DoubleBuffer, InferenceConfig,
    RunSummary,
};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per molecule per frame for the vectorized (numpy)
/// pairwise-distance and adjacency assembly.
const FRAME_MOLECULE_OPS: u64 = 400;
/// Fixed framework ops per frame: the reference steps frames from a
/// Python loop (slicing trajectories, rebuilding tensors) at roughly a
/// millisecond per frame regardless of batch size.
const FRAME_LOOP_OPS: u64 = 300_000;

/// MolDGNN hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MolDgnnConfig {
    /// GCN output width per atom.
    pub gcn_dim: usize,
    /// LSTM hidden width (over the flattened molecule embedding).
    pub lstm_dim: usize,
    /// Frames to roll through per run.
    pub frames: usize,
}

impl Default for MolDgnnConfig {
    fn default() -> Self {
        MolDgnnConfig {
            gcn_dim: 16,
            lstm_dim: 64,
            frames: 10,
        }
    }
}

/// The MolDGNN model bound to a trajectory dataset.
#[derive(Debug)]
pub struct MolDgnn {
    data: TrajectoryDataset,
    cfg: MolDgnnConfig,
    gcn: GcnLayer,
    lstm: LstmCell,
    decoder: Linear,
}

impl MolDgnn {
    /// Builds MolDGNN over a trajectory dataset.
    pub fn new(data: TrajectoryDataset, cfg: MolDgnnConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let atoms = data.n_atoms;
        let flat = atoms * cfg.gcn_dim;
        MolDgnn {
            gcn: GcnLayer::new(3, cfg.gcn_dim, &mut rng),
            lstm: LstmCell::new(flat, cfg.lstm_dim, &mut rng),
            decoder: Linear::new(cfg.lstm_dim, atoms * atoms, &mut rng),
            data,
            cfg,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![&self.gcn, &self.lstm, &self.decoder]
    }

    /// Bytes of one batch's dense adjacency matrices per frame.
    fn adjacency_bytes(&self, batch: usize) -> u64 {
        (batch * self.data.n_atoms * self.data.n_atoms * 4) as u64
    }

    /// Normalized adjacency and atom coordinates of one molecule frame.
    fn molecule_inputs(&self, mol: usize, frame: usize) -> Result<(Tensor, Tensor)> {
        let atoms = self.data.n_atoms;
        let snap = &self.data.molecules[mol].snapshots()[frame];
        let adj = Tensor::from_vec(snap.graph.normalized_adjacency(), &[atoms, atoms])?;
        let pos_idx = mol * self.data.frames_per_molecule() + frame;
        let coords = self
            .data
            .positions
            .reshape(&[
                self.data.n_molecules() * self.data.frames_per_molecule(),
                atoms * 3,
            ])?
            .row(pos_idx)?
            .reshape(&[atoms, 3])?;
        Ok((adj, coords))
    }

    /// Sharded multi-GPU driver: the batch's molecules split into
    /// contiguous ranges — molecules are independent graphs, so the
    /// partition has zero edge cut and *no* peer traffic. Each device
    /// rolls its molecule range through its own GCN-LSTM (frames stay
    /// strictly sequential per shard); shards synchronize once per
    /// trajectory unit.
    fn infer_sharded(
        &mut self,
        ex: &mut Executor,
        cfg: &InferenceConfig,
        shards: usize,
    ) -> Result<RunSummary> {
        let b = cfg.batch_size.max(1);
        let ranges = dgnn_graph::contiguous_ranges(b, shards);
        let frames = self.cfg.frames.min(self.data.frames_per_molecule()).max(1);
        let flat = self.data.n_atoms * self.cfg.gcn_dim;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let cached = cfg.feature_cache.is_some();
        cfg.apply_device_options(ex);

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced());
            dx.fork_streams_multi(shards);
            // One representative LSTM state per shard, resident on its
            // device, carrying that shard's molecule range.
            let mut states: Vec<Option<dgnn_nn::LstmState>> = vec![None; shards];
            for _ in 0..cfg.max_units.max(1) {
                for (s, range) in ranges.iter().enumerate() {
                    let b_s = range.len();
                    if b_s == 0 {
                        continue;
                    }
                    let rep = representative(b_s.min(self.data.n_molecules()));
                    let mol_scale = b_s as f64 / rep as f64;
                    let shard: Result<()> = dx.on_device(s, |dx| {
                        if states[s].is_none() {
                            states[s] = Some(self.lstm.zero_state_scaled(dx, rep, mol_scale));
                        }
                        for frame in 0..frames {
                            // 1. Adjacency assembly for the shard's
                            // molecules + H2D over its own PCIe link.
                            dx.on_stream(StreamId::Host, |dx| {
                                dx.scope("frame_prep", |dx| {
                                    dx.host(HostWork::sequential(
                                        "assemble_adjacency",
                                        FRAME_LOOP_OPS + b_s as u64 * FRAME_MOLECULE_OPS,
                                        self.adjacency_bytes(b_s),
                                    ));
                                })
                            });
                            lane_handoff(dx, true, StreamId::Host, StreamId::Copy);
                            dx.on_stream(StreamId::Copy, |dx| {
                                dx.scope("memcpy_h2d", |dx| {
                                    if cached {
                                        let keys: Vec<u64> = range
                                            .clone()
                                            .map(|mol| mol as u64 * frames as u64 + frame as u64)
                                            .collect();
                                        let row_bytes =
                                            3 * (self.data.n_atoms * self.data.n_atoms * 4) as u64;
                                        dx.fetch_rows(
                                            TensorClass::EdgeFeature,
                                            &keys,
                                            row_bytes,
                                            1.0,
                                        );
                                    } else {
                                        for _ in 0..b_s {
                                            dx.transfer(TransferDir::H2D, self.adjacency_bytes(1));
                                        }
                                        dx.transfer(TransferDir::H2D, self.adjacency_bytes(b_s));
                                        dx.transfer(TransferDir::H2D, self.adjacency_bytes(b_s));
                                    }
                                    dx.flush_transfers();
                                })
                            });
                            lane_handoff(dx, true, StreamId::Copy, StreamId::Compute);

                            // 2–4. GCN, LSTM and decode for the shard's
                            // molecules on its compute lane.
                            let rep_emb = dx.on_stream(StreamId::Compute, |dx| {
                                dx.scope("gnn", |dx| -> Result<DeviceTensor> {
                                    let (adj0, coords0) = self.molecule_inputs(0, frame)?;
                                    let adj = dx.adopt(adj0, b_s as f64);
                                    let x = dx.adopt(coords0, b_s as f64);
                                    let emb0 = self.gcn.forward(dx, &adj, &x)?;
                                    let mut rows = vec![emb0.data().reshape(&[flat])?];
                                    for mol in 1..rep {
                                        let (adj, coords) = self.molecule_inputs(mol, frame)?;
                                        let emb =
                                            adj.matmul(&coords)?.matmul(self.gcn.weight())?.relu();
                                        rows.push(emb.reshape(&[flat])?);
                                    }
                                    Ok(dx.adopt(Tensor::stack_rows(&rows)?, mol_scale))
                                })
                            })?;
                            let prev = states[s].take().expect("state initialized above");
                            let next = dx.on_stream(StreamId::Compute, |dx| {
                                dx.scope("rnn", |dx| -> Result<dgnn_nn::LstmState> {
                                    self.lstm.forward(dx, &rep_emb, &prev).map_err(Into::into)
                                })
                            })?;
                            dx.on_stream(StreamId::Compute, |dx| {
                                dx.scope("prediction", |dx| -> Result<()> {
                                    let pred = self.decoder.forward(dx, &next.0)?;
                                    checksum += pred.data().sum() * 1e-3;
                                    Ok(())
                                })
                            })?;
                            states[s] = Some(next);
                            lane_handoff(dx, true, StreamId::Compute, StreamId::Copy);
                            dx.on_stream(StreamId::Copy, |dx| {
                                dx.scope("memcpy_d2h", |dx| {
                                    dx.transfer(TransferDir::D2H, self.adjacency_bytes(b_s));
                                    dx.transfer(TransferDir::D2H, self.adjacency_bytes(b_s));
                                    dx.flush_transfers();
                                })
                            });
                        }
                        Ok(())
                    });
                    shard?;
                }
                shard_barrier(&mut dx, shards);
                iterations += 1;
            }
            dx.join_streams();
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

impl DgnnModel for MolDgnn {
    fn name(&self) -> &'static str {
        "moldgnn"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "moldgnn")
            .expect("moldgnn registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        self.adjacency_bytes(cfg.batch_size) * 2 + (cfg.batch_size * self.cfg.lstm_dim * 4) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let shards = cfg.effective_shards(ex);
        if shards > 1 {
            return self.infer_sharded(ex, cfg, shards);
        }
        let b = cfg.batch_size.max(1);
        let rep = representative(b.min(self.data.n_molecules()));
        let mol_scale = b as f64 / rep as f64;
        let frames = self.cfg.frames.min(self.data.frames_per_molecule()).max(1);
        let flat = self.data.n_atoms * self.cfg.gcn_dim;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let gpu = ex.mode() == ExecMode::Gpu;
        let overlap = cfg.pipeline_overlap && gpu;
        let granular = cfg.granular_transfers() && gpu;
        let cached = cfg.feature_cache.is_some() && gpu;
        cfg.apply_device_options(ex);

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced() && gpu);
            if overlap {
                dx.fork_streams();
            }
            let mut staging = DoubleBuffer::new();
            let mut step = 0usize;
            // Representative per-molecule LSTM state, resident on device.
            let mut state = self.lstm.zero_state_scaled(&mut dx, rep, mol_scale);
            for _ in 0..cfg.max_units.max(1) {
                for frame in 0..frames {
                    // 1. Adjacency assembly on CPU + H2D of the batch.
                    // Pipelined runs prepare frame i+1 on the host lane
                    // while frame i's kernels run, double-buffered against
                    // the copy engine.
                    staging.acquire(&mut dx, overlap, step, StreamId::Host);
                    on_lane(&mut dx, overlap, StreamId::Host, |dx| {
                        dx.scope("frame_prep", |dx| {
                            dx.host(HostWork::sequential(
                                "assemble_adjacency",
                                FRAME_LOOP_OPS + b as u64 * FRAME_MOLECULE_OPS,
                                self.adjacency_bytes(b),
                            ));
                        })
                    });
                    // Adjacency matrices plus pairwise distances and
                    // atom coordinates for the frame. Granular modes price
                    // each molecule's adjacency as its own copy (the
                    // per-tensor traffic behind Fig 7b's memcpy wall),
                    // plus one coordinate and one distance block.
                    lane_handoff(&mut dx, overlap, StreamId::Host, StreamId::Copy);
                    on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                        dx.scope("memcpy_h2d", |dx| {
                            if cached {
                                // One cache row per molecule-frame pair
                                // (its adjacency + coordinate + distance
                                // blocks). Trajectory frames repeat across
                                // units, so a cache sized to the working
                                // set turns every re-visited frame's
                                // memcpy wall into hits — the paper's
                                // dominant MolDGNN cost (Fig 7b).
                                let keys: Vec<u64> = (0..b as u64)
                                    .map(|mol| mol * frames as u64 + frame as u64)
                                    .collect();
                                let row_bytes =
                                    3 * (self.data.n_atoms * self.data.n_atoms * 4) as u64;
                                dx.fetch_rows(TensorClass::EdgeFeature, &keys, row_bytes, 1.0);
                                dx.flush_transfers();
                            } else if granular {
                                // b adjacency matrices + coordinate block
                                // + distance block = 3 × adjacency_bytes.
                                for _ in 0..b {
                                    dx.transfer(TransferDir::H2D, self.adjacency_bytes(1));
                                }
                                dx.transfer(TransferDir::H2D, self.adjacency_bytes(b));
                                dx.transfer(TransferDir::H2D, self.adjacency_bytes(b));
                                dx.flush_transfers();
                            } else {
                                let upload = DeviceTensor::host_scaled(
                                    Tensor::zeros(&[1, 1]),
                                    3.0 * self.adjacency_bytes(b) as f64 / 4.0,
                                );
                                dx.ensure_resident(&upload);
                            }
                        })
                    });
                    staging.uploaded(&mut dx, overlap);
                    lane_handoff(&mut dx, overlap, StreamId::Copy, StreamId::Compute);

                    // 2. GCN over each molecule (batched small GEMMs).
                    // The first molecule runs through the dispatcher with
                    // the adjacency carrying the batch scale — one
                    // functional pass prices the whole batch; the other
                    // rep molecules run as plain tensor math to fill the
                    // representative embedding rows without re-charging.
                    let rep_emb = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                        dx.scope("gnn", |dx| -> Result<DeviceTensor> {
                            let (adj0, coords0) = self.molecule_inputs(0, frame)?;
                            let adj = dx.adopt(adj0, b as f64);
                            let x = dx.adopt(coords0, b as f64);
                            let emb0 = self.gcn.forward(dx, &adj, &x)?;
                            let mut rows = vec![emb0.data().reshape(&[flat])?];
                            for mol in 1..rep {
                                let (adj, coords) = self.molecule_inputs(mol, frame)?;
                                let emb = adj.matmul(&coords)?.matmul(self.gcn.weight())?.relu();
                                rows.push(emb.reshape(&[flat])?);
                            }
                            Ok(dx.adopt(Tensor::stack_rows(&rows)?, mol_scale))
                        })
                    })?;

                    // 3. LSTM over the temporal sequence.
                    state = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                        dx.scope("rnn", |dx| -> Result<dgnn_nn::LstmState> {
                            self.lstm.forward(dx, &rep_emb, &state).map_err(Into::into)
                        })
                    })?;

                    // 4. Decode next-frame adjacency + D2H + CPU distances.
                    on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                        dx.scope("prediction", |dx| -> Result<()> {
                            let pred = self.decoder.forward(dx, &state.0)?;
                            checksum += pred.data().sum() * 1e-3;
                            Ok(())
                        })
                    })?;
                    // Predicted adjacency sequence returns to the CPU
                    // for atom-to-atom distance calculation: predicted
                    // adjacencies plus the derived distance block.
                    let readback = dx.adopt(
                        Tensor::zeros(&[1, 1]),
                        2.0 * self.adjacency_bytes(b) as f64 / 4.0,
                    );
                    lane_handoff(&mut dx, overlap, StreamId::Compute, StreamId::Copy);
                    on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                        dx.scope("memcpy_d2h", |dx| {
                            if granular {
                                dx.transfer(TransferDir::D2H, self.adjacency_bytes(b));
                                dx.transfer(TransferDir::D2H, self.adjacency_bytes(b));
                            } else {
                                dx.download(&readback);
                            }
                            dx.flush_transfers();
                        })
                    });
                    step += 1;
                }
                iterations += 1;
            }
            if overlap {
                dx.join_streams();
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{iso17, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> MolDgnn {
        MolDgnn::new(iso17(Scale::Tiny, 1), MolDgnnConfig::default(), 7)
    }

    fn cfg(bs: usize) -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(bs)
            .with_max_units(1)
    }

    #[test]
    fn runs_and_profiles() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let s = m.run(&mut ex, &cfg(32)).unwrap();
        assert_eq!(s.iterations, 1);
        assert!(s.checksum.is_finite());
    }

    #[test]
    fn memcpy_dominates_gpu_working_time() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(512)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        let memcpy = p.breakdown.share_of("memcpy_h2d") + p.breakdown.share_of("memcpy_d2h");
        let kernels = p.breakdown.share_of("gnn")
            + p.breakdown.share_of("rnn")
            + p.breakdown.share_of("prediction");
        assert!(
            memcpy > 2.0 * kernels,
            "memcpy {memcpy} should dwarf kernels {kernels}"
        );
    }

    #[test]
    fn utilization_low_and_stable_across_batch_sizes() {
        let util = |bs| {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg(bs)).unwrap();
            InferenceProfile::capture(&ex, "inference")
                .utilization
                .busy_fraction
        };
        let u64_ = util(64);
        let u1024 = util(1024);
        assert!(u64_ < 0.35, "util {u64_}");
        assert!(u1024 < 0.35, "util {u1024}");
    }

    #[test]
    fn memory_grows_with_batch_size() {
        let mem = |bs| {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg(bs)).unwrap();
            ex.gpu_memory().peak_bytes()
        };
        assert!(mem(1024) > mem(64));
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(16)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_molecule_split_has_zero_peer_traffic_and_wins() {
        let run = |shards: usize| {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(4), ExecMode::Gpu);
            m.run(&mut ex, &cfg(256).with_shards(shards)).unwrap();
            let peer: u64 = ex
                .timeline()
                .events()
                .iter()
                .filter(|e| e.category == dgnn_device::EventCategory::PeerTransfer)
                .map(|e| e.bytes)
                .sum();
            (ex.now(), peer)
        };
        let (single, _) = run(1);
        let (sharded, peer) = run(4);
        assert_eq!(peer, 0, "molecules are disjoint graphs: zero edge cut");
        assert!(
            sharded < single,
            "the memcpy wall splits across links: {sharded:?} vs {single:?}"
        );
    }

    #[test]
    fn sharded_run_is_deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(64).with_shards(2)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }
}
