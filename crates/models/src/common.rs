//! Shared model-execution machinery.

use dgnn_device::{Dispatcher, DurationNs, EventId, ExecMode, Executor, StreamId, TransferMode};

use crate::registry::ModelInfo;
use crate::Result;

/// Cap on the number of rows the *functional* tensor math processes per
/// unit of work. Kernel and transfer costs are always priced at the full
/// configured batch size; the representative subset only bounds host-side
/// arithmetic so full-scale sweeps stay fast.
pub const REP_CAP: usize = 32;

/// Clamps a workload size to the representative cap.
pub fn representative(n: usize) -> usize {
    n.clamp(1, REP_CAP)
}

/// How a model driver prices its per-batch PCIe traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferGranularity {
    /// One staged transfer per logical batch payload — the calibrated
    /// aggregate the sequential simulator has always priced. Default;
    /// timelines are bit-identical to the historical engine.
    #[default]
    Staged,
    /// One priced transfer per constituent tensor (edge features,
    /// timestamps, memory-row blocks, per-molecule adjacencies) — what
    /// the profiled frameworks actually issue, paying PCIe latency per
    /// tensor. Total bytes equal the staged aggregate exactly.
    PerTensor,
    /// The per-tensor crossings of a batch merged into one priced
    /// transaction per direction (one latency + summed bytes/bandwidth)
    /// — the §5 transfer-batching mitigation.
    Coalesced,
}

/// Inference configuration shared by all models. Fields a model does not
/// use (e.g. `n_neighbors` for MolDGNN) are ignored by that model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceConfig {
    /// Mini-batch size: events per batch (continuous models), subgraphs
    /// or molecules per batch (ASTGNN/MolDGNN).
    pub batch_size: usize,
    /// Temporal neighbors sampled per node (TGAT, TGN).
    pub n_neighbors: usize,
    /// Number of units (mini-batches or snapshots) to process; the
    /// datasets usually contain more than needed for stable profiles.
    pub max_units: usize,
    /// Seed for model weights and samplers.
    pub seed: u64,
    /// When true, temporal neighbor sampling (TGAT, TGN) is charged as a
    /// parallel critical path fanned out over the batch's roots instead
    /// of a serial per-node loop — the "parallel sampling" ablation. The
    /// paper's profiled frameworks sample serially, so this defaults to
    /// `false`.
    pub parallel_sampling: bool,
    /// When true (and the mode is GPU), the driver runs its batch loop on
    /// the stream-forked executor: next-batch host preprocessing, H2D
    /// prefetch and current-batch kernels overlap on the simulated
    /// timeline with double-buffered staging. The profiled frameworks are
    /// strictly sequential, so this defaults to `false`; with it off the
    /// timeline is bit-identical to the sequential engine.
    pub pipeline_overlap: bool,
    /// Transfer pricing granularity (see [`TransferGranularity`]).
    pub transfer_granularity: TransferGranularity,
    /// Capacity (in rows) of the device-resident feature cache, or
    /// `None` (the default) for no cache. With a cache, drivers route
    /// their recurrent feature/memory-row uploads through
    /// [`dgnn_device::Dispatcher::fetch_rows`]: rows already resident on
    /// the device skip the H2D crossing entirely and only misses are
    /// priced. Model numerics are bit-identical either way — the cache
    /// changes *pricing*, never values.
    pub feature_cache: Option<usize>,
    /// Host-memory regime for PCIe pricing (see
    /// [`dgnn_device::TransferMode`]). The default `Pinned` is
    /// bit-identical to the historical engine; `Pageable` adds the
    /// staging-buffer copy and per-transfer host metadata overhead.
    pub transfer_mode: TransferMode,
    /// Number of GPU shards the sharded drivers (TGN, TGAT, MolDGNN,
    /// EvolveGCN) split each batch across. `1` (the default) is the
    /// single-device engine — bit-identical to every historical
    /// timeline. Values above one take effect only in GPU mode on a
    /// platform with that many devices (capped at the device count);
    /// cross-shard data lands as peer transfers priced on the
    /// interconnect. Models without a sharded driver ignore the knob.
    pub shards: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            batch_size: 200,
            n_neighbors: 20,
            max_units: 8,
            seed: 42,
            parallel_sampling: false,
            pipeline_overlap: false,
            transfer_granularity: TransferGranularity::Staged,
            feature_cache: None,
            transfer_mode: TransferMode::Pinned,
            shards: 1,
        }
    }
}

impl InferenceConfig {
    /// Builder-style batch size override.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style neighbor count override.
    pub fn with_neighbors(mut self, n_neighbors: usize) -> Self {
        self.n_neighbors = n_neighbors;
        self
    }

    /// Builder-style unit-count override.
    pub fn with_max_units(mut self, max_units: usize) -> Self {
        self.max_units = max_units;
        self
    }

    /// Builder-style parallel-sampling toggle (see
    /// [`InferenceConfig::parallel_sampling`]).
    pub fn with_parallel_sampling(mut self, parallel_sampling: bool) -> Self {
        self.parallel_sampling = parallel_sampling;
        self
    }

    /// Builder-style pipeline-overlap toggle (see
    /// [`InferenceConfig::pipeline_overlap`]).
    pub fn with_pipeline_overlap(mut self, pipeline_overlap: bool) -> Self {
        self.pipeline_overlap = pipeline_overlap;
        self
    }

    /// Builder-style transfer-granularity override (see
    /// [`TransferGranularity`]).
    pub fn with_transfer_granularity(mut self, granularity: TransferGranularity) -> Self {
        self.transfer_granularity = granularity;
        self
    }

    /// Builder-style feature-cache capacity override (see
    /// [`InferenceConfig::feature_cache`]).
    pub fn with_feature_cache(mut self, capacity_rows: usize) -> Self {
        self.feature_cache = Some(capacity_rows);
        self
    }

    /// Builder-style transfer-mode override (see
    /// [`dgnn_device::TransferMode`]).
    pub fn with_transfer_mode(mut self, mode: TransferMode) -> Self {
        self.transfer_mode = mode;
        self
    }

    /// Builder-style shard-count override (see
    /// [`InferenceConfig::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Shards this run will actually use on `ex`: the configured count
    /// capped at the platform's device count in GPU mode, `1` otherwise
    /// (CPU runs have no device graph to shard over).
    pub fn effective_shards(&self, ex: &Executor) -> usize {
        if ex.mode() == ExecMode::Gpu {
            self.shards.clamp(1, ex.n_devices())
        } else {
            1
        }
    }

    /// Applies the config's executor-level knobs (transfer mode, feature
    /// cache) to `ex`. Drivers call this at the top of `infer` so serving
    /// replicas that reuse one executor across requests keep a warm
    /// cache (enabling an already-enabled cache at the same capacity
    /// preserves its contents).
    pub fn apply_device_options(&self, ex: &mut Executor) {
        ex.set_transfer_mode(self.transfer_mode);
        if let Some(cap) = self.feature_cache {
            ex.enable_feature_cache(cap);
        }
    }

    /// Whether drivers should merge per-tensor crossings per batch.
    pub fn coalesced(&self) -> bool {
        self.transfer_granularity == TransferGranularity::Coalesced
    }

    /// Whether drivers should price per-tensor transfers (either mode
    /// that decomposes the staged aggregate).
    pub fn granular_transfers(&self) -> bool {
        self.transfer_granularity != TransferGranularity::Staged
    }
}

/// Runs `f` with the dispatcher's priced actions placed on `lane` when
/// `active`; calls `f` directly (the serial path, bit-identical to the
/// historical engine) otherwise.
pub fn on_lane<R>(
    dx: &mut Dispatcher,
    active: bool,
    lane: StreamId,
    f: impl FnOnce(&mut Dispatcher) -> R,
) -> R {
    if active {
        dx.on_stream(lane, f)
    } else {
        f(dx)
    }
}

/// Orders `to` after everything issued so far on `from` (record + wait).
/// No-op on the serial path.
pub fn lane_handoff(dx: &mut Dispatcher, active: bool, from: StreamId, to: StreamId) {
    if active {
        let done = dx.record_event(from);
        dx.wait_event(to, done);
    }
}

/// Depth-2 double buffering for pipelined batch loops: the host may
/// prepare batch `i` into a staging buffer only after the upload that
/// drained buffer `i - 2` has finished. With two buffers in flight this
/// is exactly the reuse constraint of a classic double-buffered
/// prefetcher. All methods are no-ops on the serial path.
#[derive(Debug, Default)]
pub struct DoubleBuffer {
    uploads: Vec<EventId>,
}

impl DoubleBuffer {
    /// Creates an empty buffer tracker.
    pub fn new() -> Self {
        DoubleBuffer::default()
    }

    /// Blocks `lane` (normally the host lane) until the staging buffer
    /// for batch `i` is free for reuse.
    pub fn acquire(&self, dx: &mut Dispatcher, active: bool, i: usize, lane: StreamId) {
        if active && i >= 2 {
            dx.wait_event(lane, self.uploads[i - 2]);
        }
    }

    /// Marks the current batch's staging buffer as drained once the copy
    /// lane reaches this point. Call right after issuing the batch's H2D
    /// upload on [`StreamId::Copy`].
    pub fn uploaded(&mut self, dx: &mut Dispatcher, active: bool) {
        if active {
            let done = dx.record_event(StreamId::Copy);
            self.uploads.push(done);
        }
    }
}

/// Maps every node of `0..n_nodes` to its owning shard under a
/// contiguous-range layout (see [`dgnn_graph::contiguous_ranges`]):
/// `owners[v]` is the index of the range containing `v`. Temporal
/// sharded drivers use this to decide which device owns an event's
/// endpoints and sampled neighbors.
pub fn shard_owners(ranges: &[std::ops::Range<usize>], n_nodes: usize) -> Vec<usize> {
    let mut owners = vec![0usize; n_nodes];
    for (p, r) in ranges.iter().enumerate() {
        for v in r.clone() {
            owners[v] = p;
        }
    }
    owners
}

/// All-to-all barrier across a multi-device fork at a batch boundary:
/// every device marks its copy and compute lanes, then every device's
/// three lanes wait on every other device's marks — no shard starts
/// batch `i + 1` before every shard has finished batch `i` (the
/// framework-level `cudaDeviceSynchronize` between sharded steps).
pub fn shard_barrier(dx: &mut Dispatcher, shards: usize) {
    let mut marks: Vec<(usize, EventId)> = Vec::with_capacity(shards * 2);
    for dev in 0..shards {
        dx.on_device(dev, |dx| {
            marks.push((dev, dx.record_event(StreamId::Copy)));
            marks.push((dev, dx.record_event(StreamId::Compute)));
        });
    }
    for dev in 0..shards {
        dx.on_device(dev, |dx| {
            for &(owner, mark) in &marks {
                if owner != dev {
                    for lane in StreamId::ALL {
                        dx.wait_event(lane, mark);
                    }
                }
            }
        });
    }
}

/// Splits `total` bytes into `n` pieces that sum to `total` exactly
/// (the first `n - 1` pieces are equal; the last absorbs the remainder).
pub fn split_bytes(total: u64, n: u64) -> Vec<u64> {
    let n = n.max(1);
    let each = total / n;
    #[expect(clippy::cast_possible_truncation, reason = "piece counts are small")]
    let mut pieces = vec![each; n as usize];
    *pieces.last_mut().expect("n >= 1") = total - each * (n - 1);
    pieces
}

/// Outcome of one inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Units (mini-batches / snapshots) processed.
    pub iterations: usize,
    /// Total simulated time inside the `"inference"` scope.
    pub inference_time: DurationNs,
    /// Mean time per unit — the denominator of the §4.4 warm-up ratios.
    pub unit_time: DurationNs,
    /// Deterministic checksum over representative outputs (numeric
    /// sanity: finite and reproducible).
    pub checksum: f32,
}

impl RunSummary {
    /// Builds a summary from totals.
    pub fn new(iterations: usize, inference_time: DurationNs, checksum: f32) -> Self {
        let unit_time = if iterations > 0 {
            DurationNs::from_nanos(inference_time.as_nanos() / iterations as u64)
        } else {
            DurationNs::ZERO
        };
        RunSummary {
            iterations,
            inference_time,
            unit_time,
            checksum,
        }
    }
}

/// A profiled dynamic graph neural network.
///
/// Implementations price kernels/transfers at full batch size, compute
/// representative numerics, and annotate profiler scopes per the Figure 7
/// module taxonomy.
pub trait DgnnModel {
    /// Model name (lowercase, e.g. `"tgat"`).
    fn name(&self) -> &'static str;

    /// Table 1 metadata.
    fn info(&self) -> ModelInfo;

    /// Total parameter bytes (drives model-init warm-up).
    fn param_bytes(&self) -> u64;

    /// Number of parameter tensors (drives model-init warm-up).
    fn param_tensors(&self) -> u64;

    /// Peak activation bytes for a run with `cfg` (drives per-run
    /// allocation warm-up, Table 2).
    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64;

    /// Runs inference inside an `"inference"` scope. Assumes warm-up has
    /// already been performed (see [`DgnnModel::run`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError`] on shape or configuration problems.
    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary>;

    /// Full measured run: model initialization, activation allocation,
    /// then inference — the sequence the paper profiles end-to-end.
    ///
    /// # Errors
    ///
    /// Propagates [`DgnnModel::infer`] errors.
    fn run(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        // Warm-up gets its own top-level scope so that the run's top-level
        // scopes tile the timeline: warmup + inference == Executor::now().
        ex.scope("warmup", |ex| {
            ex.model_init(self.param_bytes(), self.param_tensors());
            ex.alloc_warmup(self.activation_bytes(cfg));
        });
        self.infer(ex, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_is_capped_and_positive() {
        assert_eq!(representative(0), 1);
        assert_eq!(representative(5), 5);
        assert_eq!(representative(100_000), REP_CAP);
    }

    #[test]
    fn summary_divides_unit_time() {
        let s = RunSummary::new(4, DurationNs::from_nanos(100), 1.0);
        assert_eq!(s.unit_time.as_nanos(), 25);
        let z = RunSummary::new(0, DurationNs::from_nanos(100), 1.0);
        assert_eq!(z.unit_time, DurationNs::ZERO);
    }

    #[test]
    fn config_builders_chain() {
        let c = InferenceConfig::default()
            .with_batch_size(4_000)
            .with_neighbors(100)
            .with_max_units(2);
        assert_eq!(c.batch_size, 4_000);
        assert_eq!(c.n_neighbors, 100);
        assert_eq!(c.max_units, 2);
    }
}
