//! Criterion benchmarks that regenerate a miniature of every paper
//! artifact (each Figure/Table) per iteration, measuring how fast the
//! *reproduction harness* produces them. The full-size artifacts are
//! produced by the `src/bin` binaries; these keep `cargo bench`
//! exercising the complete experiment code path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dgnn_bench::{build_model, measure};
use dgnn_datasets::Scale;
use dgnn_device::{DurationNs, ExecMode};
use dgnn_models::InferenceConfig;
use dgnn_profile::UtilizationReport;

const SCALE: Scale = Scale::Tiny;
const SEED: u64 = 1;

fn fig6_point(c: &mut Criterion) {
    c.bench_function("fig6_tgat_util_mem_point", |b| {
        b.iter(|| {
            let mut m = build_model("tgat", SCALE, SEED);
            let cfg = InferenceConfig::default()
                .with_batch_size(100)
                .with_neighbors(20)
                .with_max_units(1);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            black_box((r.profile.utilization.busy_fraction, r.profile.gpu_peak_bytes))
        })
    });
}

fn fig7_breakdown(c: &mut Criterion) {
    c.bench_function("fig7_tgn_breakdown", |b| {
        b.iter(|| {
            let mut m = build_model("tgn", SCALE, SEED);
            let cfg = InferenceConfig::default()
                .with_batch_size(256)
                .with_neighbors(10)
                .with_max_units(1);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            black_box(r.profile.breakdown.entries().len())
        })
    });
}

fn fig8_pair(c: &mut Criterion) {
    c.bench_function("fig8_moldgnn_cpu_vs_gpu", |b| {
        b.iter(|| {
            let cfg = InferenceConfig::default().with_batch_size(64).with_max_units(1);
            let mut m = build_model("moldgnn", SCALE, SEED);
            let cpu = measure(m.as_mut(), ExecMode::CpuOnly, &cfg).profile.inference_time;
            let mut m = build_model("moldgnn", SCALE, SEED);
            let gpu = measure(m.as_mut(), ExecMode::Gpu, &cfg).profile.inference_time;
            black_box((cpu, gpu))
        })
    });
}

fn fig9_series(c: &mut Criterion) {
    c.bench_function("fig9_astgnn_util_series", |b| {
        b.iter(|| {
            let mut m = build_model("astgnn", SCALE, SEED);
            let cfg = InferenceConfig::default().with_batch_size(4).with_max_units(2);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            let series = UtilizationReport::series(
                r.executor.timeline(),
                DurationNs::ZERO,
                r.executor.now(),
                DurationNs::from_millis(100),
            );
            black_box(series.len())
        })
    });
}

fn table2_row(c: &mut Criterion) {
    c.bench_function("table2_tgn_warmup_row", |b| {
        b.iter(|| {
            let mut m = build_model("tgn", SCALE, SEED);
            let cfg = InferenceConfig::default()
                .with_batch_size(512)
                .with_neighbors(10)
                .with_max_units(2);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            black_box(r.profile.warmup.batch_warmup_share())
        })
    });
}

fn fig10_ablation(c: &mut Criterion) {
    c.bench_function("fig10_pipelined_evolvegcn", |b| {
        b.iter(|| {
            let mut m = dgnn_models::EvolveGcn::new(
                dgnn_datasets::bitcoin_alpha(SCALE, SEED),
                dgnn_models::EvolveGcnConfig::default(),
                SEED,
            );
            let cfg = InferenceConfig::default().with_max_units(6);
            let r = dgnn_models::optim::pipelined_evolvegcn(&mut m, &cfg).unwrap();
            black_box(r.speedup())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig6_point, fig7_breakdown, fig8_pair, fig9_series, table2_row, fig10_ablation
}
criterion_main!(benches);
