//! Streaming ingestion benchmark: queries racing live graph appends.
//!
//! The paper profiles inference over a *frozen* graph; a deployed DGNN
//! also ingests edge events while serving, and the host must split its
//! time between appending to the delta-log CSR (plus TGN node-memory
//! updates and periodic compaction) and sampling for queries. This
//! binary measures that **freshness-vs-latency tradeoff** on TGN:
//!
//! * sweeping the delta-log **compaction threshold** — small thresholds
//!   compact often (short delta rows, costlier ingest instants), large
//!   ones let the delta grow (cheap appends, longer sample reads);
//! * sweeping the **ingest rate** — sparse streams leave queries with
//!   stale snapshots, dense streams keep data fresh but contend with
//!   sampling on the host clock;
//! * against the **frozen-graph baseline** — the whole graph built
//!   before serving: zero staleness, zero ingest contention.
//!
//! Every configuration is emitted as a `BENCH {json}` line with
//! latency and staleness order statistics; the full sweep is also
//! written to `BENCH_streaming.json` (skipped under `--smoke`).
//!
//! Usage: `streaming_ingest [--scale tiny|small|full] [--seed N] [--smoke]`
//!
//! `--smoke` shrinks the sweep and additionally (1) replays one
//! configuration to assert bit-determinism of the schedule, the served
//! numerics and the ingested node-memory state, and (2) audits the
//! ingest session and every replica session with the timeline
//! sanitizer, RULE7 (sample-after-append) included.

use dgnn_bench::{parse_opts, served_zoo};
use dgnn_datasets::{wikipedia, Scale};
use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_profile::TextTable;
use dgnn_serve::{serve_streaming, ServeConfig, StreamingConfig, StreamingOutcome};

fn serve_cfg(n_requests: usize, trace: bool) -> ServeConfig {
    ServeConfig {
        seed: 1,
        n_requests,
        // Slow arrivals: the stream outlasts pool provisioning, so the
        // tail of the request stream genuinely races ingestion.
        arrival_rate_rps: 1.2,
        batch_window: DurationNs::from_millis(2),
        max_batch: 4,
        pool_size: 1,
        queue_bound: 1024,
        mode: ExecMode::Gpu,
        trace,
        spec: PlatformSpec::default(),
    }
}

fn stream_cfg(
    scale: Scale,
    seed: u64,
    threshold: usize,
    rate: f64,
    frozen: bool,
) -> StreamingConfig {
    let mut scfg = StreamingConfig::new(wikipedia(scale, seed).stream);
    scfg.compaction_threshold = threshold;
    scfg.ingest_rate_eps = rate;
    scfg.frozen = frozen;
    scfg
}

struct Row {
    threshold: usize,
    rate: f64,
    frozen: bool,
    out: StreamingOutcome,
}

impl Row {
    fn json(&self) -> String {
        let r = &self.out.serve.report;
        format!(
            "{{\"bench\":\"streaming_ingest\",\"model\":\"tgn\",\
             \"threshold\":{},\"ingest_rate_eps\":{:.1},\"frozen\":{},\
             \"served\":{},\"ingested\":{},\"compactions\":{},\
             \"p50_ns\":{},\"p99_ns\":{},\"mean_ns\":{},\
             \"staleness_p50_ns\":{},\"staleness_p99_ns\":{},\
             \"staleness_mean_ns\":{}}}",
            self.threshold,
            self.rate,
            self.frozen,
            r.served,
            self.out.ingested,
            self.out.compactions,
            r.latency.p50.as_nanos(),
            r.latency.p99.as_nanos(),
            r.latency.mean.as_nanos(),
            r.staleness.p50.as_nanos(),
            r.staleness.p99.as_nanos(),
            r.staleness.mean.as_nanos(),
        )
    }
}

fn main() {
    let opts = parse_opts();
    let smoke = opts.rest.iter().any(|a| a == "--smoke");
    // The object of study is host-side ingest/sampling contention, not
    // model math; cap datasets at Small so services stay fast.
    let scale = if smoke {
        Scale::Tiny
    } else {
        match opts.scale {
            Scale::Full => Scale::Small,
            s => s,
        }
    };
    let n_requests = if smoke { 10 } else { 24 };
    let thresholds: &[usize] = &[64, 256, 1024];
    let rates: &[f64] = if smoke { &[20.0] } else { &[20.0, 200.0] };

    let zoo = served_zoo(&["tgn"], scale, opts.seed);
    let mut rows: Vec<Row> = Vec::new();

    // Frozen-graph baseline: the reference column.
    let out = serve_streaming(
        &serve_cfg(n_requests, false),
        &stream_cfg(scale, opts.seed, 256, 20.0, true),
        &zoo,
    );
    assert!(
        out.serve
            .requests
            .iter()
            .all(|r| r.staleness == DurationNs::ZERO),
        "frozen baseline must have zero staleness"
    );
    rows.push(Row {
        threshold: 256,
        rate: 0.0,
        frozen: true,
        out,
    });

    for &threshold in thresholds {
        for &rate in rates {
            let out = serve_streaming(
                &serve_cfg(n_requests, false),
                &stream_cfg(scale, opts.seed, threshold, rate, false),
                &zoo,
            );
            rows.push(Row {
                threshold,
                rate,
                frozen: false,
                out,
            });
        }
    }

    let mut table = TextTable::new(
        &format!("Streaming ingest — TGN, freshness vs latency ({scale:?})"),
        &[
            "threshold",
            "rate (eps)",
            "served",
            "compactions",
            "p50 (ms)",
            "p99 (ms)",
            "stale p50 (ms)",
            "stale p99 (ms)",
        ],
    );
    for row in &rows {
        let r = &row.out.serve.report;
        let ms = |d: DurationNs| format!("{:.3}", d.as_secs_f64() * 1e3);
        table.row(&[
            if row.frozen {
                "frozen".to_string()
            } else {
                format!("{}", row.threshold)
            },
            if row.frozen {
                "-".to_string()
            } else {
                format!("{:.0}", row.rate)
            },
            format!("{}", r.served),
            format!("{}", row.out.compactions),
            ms(r.latency.p50),
            ms(r.latency.p99),
            ms(r.staleness.p50),
            ms(r.staleness.p99),
        ]);
        println!("BENCH {}", row.json());
    }
    print!("{}", table.render());

    // The tradeoff's live half: with a sparse ingest stream some query
    // must be served with stale data (the frozen column shows zero).
    let low_rate = rows
        .iter()
        .find(|r| !r.frozen && r.rate <= 20.0)
        .expect("sweep includes the sparse rate");
    assert!(
        low_rate.out.serve.report.staleness.p99 > DurationNs::ZERO,
        "sparse ingest must surface staleness at the tail"
    );

    if smoke {
        // 1. Bit-determinism: schedule, numerics, and ingested state.
        let cfg = serve_cfg(n_requests, false);
        let scfg = stream_cfg(scale, opts.seed, 64, 20.0, false);
        let a = serve_streaming(&cfg, &scfg, &served_zoo(&["tgn"], scale, opts.seed));
        let b = serve_streaming(&cfg, &scfg, &served_zoo(&["tgn"], scale, opts.seed));
        assert_eq!(
            a.serve.requests, b.serve.requests,
            "streaming replay diverged"
        );
        assert_eq!(
            a.memory_checksum, b.memory_checksum,
            "ingest state diverged"
        );
        let bits = |o: &StreamingOutcome| -> Vec<u32> {
            o.serve
                .batches
                .iter()
                .map(|x| x.summary.checksum.to_bits())
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "service numerics diverged");

        // 2. Sanitizer audit, RULE7 included: the ingest session logs
        //    every append and sample; replicas stay clean too.
        let out = serve_streaming(
            &serve_cfg(8, true),
            &stream_cfg(scale, opts.seed, 64, 20.0, false),
            &served_zoo(&["tgn"], scale, opts.seed),
        );
        let report = dgnn_analysis::audit(&out.ingest_session);
        assert!(report.is_clean(), "ingest session has hazards: {report}");
        assert_eq!(report.stats.graph_appends, out.ingested);
        assert!(report.stats.graph_samples > 0, "batches must log samples");
        for (slot, session) in out.serve.sessions.iter().enumerate() {
            let r = dgnn_analysis::audit(session);
            assert!(r.is_clean(), "replica {slot} has hazards: {r:?}");
        }
        println!("streaming_ingest --smoke: determinism + RULE7 sanitizer OK");
    } else {
        let scale_name = match scale {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        };
        let records: Vec<String> = rows.iter().map(|r| format!("    {}", r.json())).collect();
        let json = format!(
            "{{\n  \"generated_by\": \"cargo run --release -p dgnn-bench --bin streaming_ingest\",\n  \
             \"scale\": \"{scale_name}\",\n  \"seed\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
            opts.seed,
            records.join(",\n"),
        );
        std::fs::write("BENCH_streaming.json", json).expect("write BENCH_streaming.json");
        println!("wrote BENCH_streaming.json ({} records)", rows.len());
    }
}
