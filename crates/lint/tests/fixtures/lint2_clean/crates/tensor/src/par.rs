//! LINT2 clean twin: an environment read behind a rationaled escape
//! hatch (thread-count knob that shapes pacing, not outputs).

pub fn max_threads() -> usize {
    // lint: allow(nondeterminism-source) — thread count shapes pacing only; outputs stay order-preserving
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}
