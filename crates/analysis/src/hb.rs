//! Vector-clock happens-before reconstruction over a recorded
//! [`dgnn_device::ExecTrace`].
//!
//! The stream machine has four logical time components:
//!
//! | component | meaning |
//! |---|---|
//! | 0 `host`    | the Host lane of an active fork |
//! | 1 `copy`    | the Copy lane of an active fork |
//! | 2 `compute` | the Compute lane of an active fork |
//! | 3 `serial`  | the serial clock — and, inside a fork, the *issuing thread* |
//!
//! Every causally relevant trace record becomes a [`Node`] stamped with
//! its component's vector clock; `hb(a, b)` then answers whether `a` is
//! ordered before `b` by the recorded synchronization — transitively,
//! through any chain of `record_event`/`wait_event` edges, fork/join
//! boundaries and issue order.
//!
//! Edges, mirroring the simulated CUDA semantics:
//!
//! * **Program order per component** — a component's own counter only
//!   grows.
//! * **Fork** — every lane inherits the serial clock (work before the
//!   fork is visible to all lanes).
//! * **Join** — the serial clock absorbs every lane (work in the fork is
//!   visible after it).
//! * **Event record/wait** — `record_event` snapshots the recording
//!   lane's clock under the event index; `wait_event` joins the snapshot
//!   into the waiting lane. Snapshots are scoped to the active fork,
//!   matching the runtime's fork-ownership check on [`dgnn_device::EventId`].
//! * **Issue order** — inside a fork, a lane node absorbs the *serial*
//!   component at issue time: lane commands are created by the single
//!   program thread in program order, so host-side bookkeeping (e.g.
//!   `adopt`) that precedes a lane command in the program is visible to
//!   it. The converse edge does not exist — lane work is asynchronous
//!   and its effects are only visible to the serial component after a
//!   join.

use std::collections::HashMap;

use dgnn_device::StreamId;

/// Number of time components (three lanes + serial).
pub(crate) const N_COMPONENTS: usize = 4;
/// Component index of the serial clock / issuing thread.
pub(crate) const SERIAL: usize = 3;

/// Maps an issuing lane to its component index.
pub(crate) fn component(lane: Option<StreamId>) -> usize {
    match lane {
        Some(StreamId::Host) => 0,
        Some(StreamId::Copy) => 1,
        Some(StreamId::Compute) => 2,
        None => SERIAL,
    }
}

/// Display name of a component.
pub(crate) fn component_name(c: usize) -> &'static str {
    match c {
        0 => "host",
        1 => "copy",
        2 => "compute",
        _ => "serial",
    }
}

/// A four-component vector clock.
pub(crate) type VClock = [u64; N_COMPONENTS];

fn join_into(a: &mut VClock, b: &VClock) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x).max(*y);
    }
}

/// One causally relevant trace record, stamped at issue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// Issuing component.
    pub comp: usize,
    /// This node's sequence number on its component.
    pub own: u64,
    /// The component's vector clock including this node.
    pub vc: VClock,
    /// Trace record index (diagnostics).
    pub rec: usize,
    /// Timeline cursor when the record was logged (diagnostics).
    pub at_event: usize,
}

/// Whether `a` happens-before `b` (or `a` and `b` are the same node).
pub(crate) fn hb(a: &Node, b: &Node) -> bool {
    b.vc[a.comp] >= a.own
}

/// Incremental vector-clock engine, advanced in trace program order.
#[derive(Debug)]
pub(crate) struct HbEngine {
    vc: [VClock; N_COMPONENTS],
    /// Event index → recording lane's clock, scoped to the active fork.
    snapshots: HashMap<usize, VClock>,
    /// Whether a fork is active.
    pub forked: bool,
}

impl HbEngine {
    pub(crate) fn new() -> Self {
        HbEngine {
            vc: [[0; N_COMPONENTS]; N_COMPONENTS],
            snapshots: HashMap::new(),
            forked: false,
        }
    }

    /// Stamps a new node on `lane`'s component.
    pub(crate) fn issue(&mut self, lane: Option<StreamId>, rec: usize, at_event: usize) -> Node {
        let c = component(lane);
        self.absorb_issue_order(c);
        self.vc[c][c] += 1;
        Node {
            comp: c,
            own: self.vc[c][c],
            vc: self.vc[c],
            rec,
            at_event,
        }
    }

    /// Inside a fork, lane commands absorb the issuing thread's progress.
    fn absorb_issue_order(&mut self, c: usize) {
        if self.forked && c != SERIAL {
            let serial = self.vc[SERIAL];
            join_into(&mut self.vc[c], &serial);
        }
    }

    /// `fork_streams`: every lane inherits the serial clock; event
    /// snapshots from earlier forks become unreachable (the runtime
    /// panics on cross-fork waits).
    pub(crate) fn fork(&mut self) {
        let serial = self.vc[SERIAL];
        for lane in 0..SERIAL {
            self.vc[lane] = serial;
        }
        self.snapshots.clear();
        self.forked = true;
    }

    /// `join_streams`: the serial clock absorbs every lane.
    pub(crate) fn join(&mut self) {
        let mut merged = self.vc[SERIAL];
        for lane in 0..SERIAL {
            join_into(&mut merged, &self.vc[lane]);
        }
        self.vc[SERIAL] = merged;
        self.forked = false;
    }

    /// `record_event`: snapshot the recording lane's clock.
    pub(crate) fn record(&mut self, event: usize, lane: StreamId) {
        let c = component(Some(lane));
        self.absorb_issue_order(c);
        self.snapshots.insert(event, self.vc[c]);
    }

    /// `wait_event`: join the snapshot into the waiting lane. Returns
    /// `false` when the event was never recorded in the active fork.
    pub(crate) fn wait(&mut self, event: usize, lane: StreamId) -> bool {
        let c = component(Some(lane));
        self.absorb_issue_order(c);
        match self.snapshots.get(&event) {
            Some(snapshot) => {
                let snapshot = *snapshot;
                join_into(&mut self.vc[c], &snapshot);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_program_order_is_total() {
        let mut e = HbEngine::new();
        let a = e.issue(None, 0, 0);
        let b = e.issue(None, 1, 0);
        assert!(hb(&a, &b));
        assert!(!hb(&b, &a));
    }

    #[test]
    fn unsynchronized_lanes_are_concurrent() {
        let mut e = HbEngine::new();
        e.fork();
        let a = e.issue(Some(StreamId::Copy), 0, 0);
        let b = e.issue(Some(StreamId::Compute), 1, 0);
        assert!(!hb(&a, &b));
        assert!(!hb(&b, &a));
    }

    #[test]
    fn record_wait_orders_across_lanes() {
        let mut e = HbEngine::new();
        e.fork();
        let a = e.issue(Some(StreamId::Copy), 0, 0);
        e.record(0, StreamId::Copy);
        assert!(e.wait(0, StreamId::Compute));
        let b = e.issue(Some(StreamId::Compute), 1, 0);
        assert!(hb(&a, &b));
    }

    #[test]
    fn hb_is_transitive_through_two_handoffs() {
        let mut e = HbEngine::new();
        e.fork();
        let a = e.issue(Some(StreamId::Host), 0, 0);
        e.record(0, StreamId::Host);
        assert!(e.wait(0, StreamId::Copy));
        let _mid = e.issue(Some(StreamId::Copy), 1, 0);
        e.record(1, StreamId::Copy);
        assert!(e.wait(1, StreamId::Compute));
        let c = e.issue(Some(StreamId::Compute), 2, 0);
        assert!(hb(&a, &c));
    }

    #[test]
    fn fork_and_join_order_serial_work() {
        let mut e = HbEngine::new();
        let before = e.issue(None, 0, 0);
        e.fork();
        let lane = e.issue(Some(StreamId::Compute), 1, 0);
        assert!(hb(&before, &lane), "pre-fork work is visible to lanes");
        e.join();
        let after = e.issue(None, 2, 0);
        assert!(hb(&lane, &after), "post-join serial sees lane work");
    }

    #[test]
    fn issue_order_flows_serial_to_lane_but_not_back() {
        let mut e = HbEngine::new();
        e.fork();
        let lane = e.issue(Some(StreamId::Compute), 0, 0);
        let bookkeeping = e.issue(None, 1, 0);
        let later_lane = e.issue(Some(StreamId::Copy), 2, 0);
        assert!(hb(&bookkeeping, &later_lane), "issue order is an edge");
        assert!(!hb(&lane, &bookkeeping), "lane work is asynchronous");
    }

    #[test]
    fn snapshots_do_not_survive_a_new_fork() {
        let mut e = HbEngine::new();
        e.fork();
        e.record(0, StreamId::Copy);
        e.join();
        e.fork();
        assert!(!e.wait(0, StreamId::Compute), "stale event index");
    }
}
