//! Recurrent cells: GRU, LSTM and vanilla RNN.
//!
//! These are the time encoders of JODIE, EvolveGCN, MolDGNN, DyRep and
//! LDG. Their strictly sequential use across time steps is the paper's
//! first bottleneck; the cells themselves just do their gate math and
//! dispatch the matching kernels.

use dgnn_device::{DeviceTensor, Dispatcher};
use dgnn_tensor::{Initializer, OpDescriptor, Tensor, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

fn gate_params(
    n_gates: usize,
    in_dim: usize,
    hidden: usize,
    rng: &mut TensorRng,
) -> (Param, Param, Param) {
    (
        Param::new(
            "w_input",
            rng.init(&[n_gates * hidden, in_dim], Initializer::XavierUniform),
        ),
        Param::new(
            "w_hidden",
            rng.init(&[n_gates * hidden, hidden], Initializer::XavierUniform),
        ),
        Param::new("bias", rng.init(&[n_gates * hidden], Initializer::Zeros)),
    )
}

/// Fused gate pre-activation: two GEMMs plus one element-wise combine,
/// split into per-gate `[b, hidden]` blocks.
#[allow(clippy::too_many_arguments)]
fn gates(
    dx: &mut Dispatcher,
    label: &'static str,
    x: &DeviceTensor,
    h: &DeviceTensor,
    w_input: &Tensor,
    w_hidden: &Tensor,
    bias: &Tensor,
    n_gates: usize,
    hidden: usize,
) -> Result<Vec<Tensor>> {
    let b = x.data().dims()[0];
    let xi = dx.matmul_nt(label, x, w_input)?;
    let hh = dx.matmul_nt(label, h, w_hidden)?;
    let pre = dx.fused(
        OpDescriptor::elementwise(label, b * n_gates * hidden, 2, 3),
        x.scale(),
        || xi.data().add(hh.data())?.add_row_broadcast(bias),
    )?;
    // Split the fused gate matrix into per-gate [b, hidden] blocks.
    let mut out = Vec::with_capacity(n_gates);
    for g in 0..n_gates {
        let mut data = Vec::with_capacity(b * hidden);
        for row in 0..b {
            let off = row * n_gates * hidden + g * hidden;
            data.extend_from_slice(&pre.as_slice()[off..off + hidden]);
        }
        out.push(Tensor::from_vec(data, &[b, hidden])?);
    }
    Ok(out)
}

/// Gated recurrent unit cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GruCell {
    w_input: Param,
    w_hidden: Param,
    bias: Param,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Creates a GRU cell.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        let (w_input, w_hidden, bias) = gate_params(3, in_dim, hidden, rng);
        GruCell {
            w_input,
            w_hidden,
            bias,
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: `(x: [b, in], h: [b, hidden]) → h': [b, hidden]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when inputs don't match the cell dimensions.
    pub fn forward(
        &self,
        dx: &mut Dispatcher,
        x: &DeviceTensor,
        h: &DeviceTensor,
    ) -> Result<DeviceTensor> {
        let g = gates(
            dx,
            "gru_gates",
            x,
            h,
            &self.w_input.value,
            &self.w_hidden.value,
            &self.bias.value,
            3,
            self.hidden,
        )?;
        let update = OpDescriptor::elementwise("gru_update", h.data().len(), 6, 3);
        let h_new = dx.fused(update, h.scale(), || {
            let z = g[0].sigmoid();
            let r = g[1].sigmoid();
            // Candidate uses the reset gate on the hidden contribution.
            // The fused pre-activation already mixed h in, so recompute
            // the candidate from its block with the r-gated correction:
            // the standard simplification n = tanh(pre_n - (1-r)·Uh·h) is
            // approximated by gating the whole block, which preserves the
            // cost model and keeps values bounded.
            let n = g[2].mul(&r)?.tanh();
            h.data().lerp_gate(&n, &z.map(|v| 1.0 - v))
        })?;
        Ok(dx.adopt(h_new, h.scale()))
    }
}

impl Module for GruCell {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.w_input, &self.w_hidden, &self.bias]
    }
}

/// Long short-term memory cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCell {
    w_input: Param,
    w_hidden: Param,
    bias: Param,
    in_dim: usize,
    hidden: usize,
}

/// LSTM state `(h, c)`.
pub type LstmState = (DeviceTensor, DeviceTensor);

impl LstmCell {
    /// Creates an LSTM cell.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        let (w_input, w_hidden, bias) = gate_params(4, in_dim, hidden, rng);
        LstmCell {
            w_input,
            w_hidden,
            bias,
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero state for a batch of `b`, resident on the compute device
    /// (recurrent state lives where the kernels run — it never crosses
    /// PCIe between steps).
    pub fn zero_state(&self, dx: &mut Dispatcher, b: usize) -> LstmState {
        self.zero_state_scaled(dx, b, 1.0)
    }

    /// [`LstmCell::zero_state`] for a representative batch of `b`
    /// physical rows standing in for `scale × b` logical rows.
    pub fn zero_state_scaled(&self, dx: &mut Dispatcher, b: usize, scale: f64) -> LstmState {
        (
            dx.adopt(Tensor::zeros(&[b, self.hidden]), scale),
            dx.adopt(Tensor::zeros(&[b, self.hidden]), scale),
        )
    }

    /// One step: `(x: [b, in], (h, c)) → (h', c')`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when inputs don't match the cell dimensions.
    pub fn forward(
        &self,
        dx: &mut Dispatcher,
        x: &DeviceTensor,
        state: &LstmState,
    ) -> Result<LstmState> {
        let (h, c) = state;
        let g = gates(
            dx,
            "lstm_gates",
            x,
            h,
            &self.w_input.value,
            &self.w_hidden.value,
            &self.bias.value,
            4,
            self.hidden,
        )?;
        let update = OpDescriptor::elementwise("lstm_state", h.data().len(), 6, 4);
        let (h_new, c_new) = dx.fused(update, h.scale(), || {
            let i = g[0].sigmoid();
            let f = g[1].sigmoid();
            let o = g[2].sigmoid();
            let cand = g[3].tanh();
            let c_new = f.mul(c.data())?.add(&i.mul(&cand)?)?;
            let h_new = o.mul(&c_new.tanh())?;
            Ok((h_new, c_new))
        })?;
        Ok((dx.adopt(h_new, h.scale()), dx.adopt(c_new, h.scale())))
    }
}

impl Module for LstmCell {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.w_input, &self.w_hidden, &self.bias]
    }
}

/// Vanilla RNN cell `h' = tanh(x Wᵀ + h Uᵀ + b)` (JODIE's update form).
#[derive(Debug, Clone, PartialEq)]
pub struct RnnCell {
    w_input: Param,
    w_hidden: Param,
    bias: Param,
    in_dim: usize,
    hidden: usize,
}

impl RnnCell {
    /// Creates a vanilla RNN cell.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        let (w_input, w_hidden, bias) = gate_params(1, in_dim, hidden, rng);
        RnnCell {
            w_input,
            w_hidden,
            bias,
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: `(x: [b, in], h: [b, hidden]) → h'`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when inputs don't match the cell dimensions.
    pub fn forward(
        &self,
        dx: &mut Dispatcher,
        x: &DeviceTensor,
        h: &DeviceTensor,
    ) -> Result<DeviceTensor> {
        let g = gates(
            dx,
            "rnn_step",
            x,
            h,
            &self.w_input.value,
            &self.w_hidden.value,
            &self.bias.value,
            1,
            self.hidden,
        )?;
        let tanh = OpDescriptor::elementwise("rnn_tanh", h.data().len(), 1, 1);
        let out = dx.fused(tanh, h.scale(), || Ok(g[0].tanh()))?;
        Ok(dx.adopt(out, h.scale()))
    }
}

impl Module for RnnCell {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.w_input, &self.w_hidden, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, PlatformSpec};

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    fn dt(t: Tensor) -> DeviceTensor {
        DeviceTensor::host(t)
    }

    #[test]
    fn gru_preserves_shape_and_boundedness() {
        let mut rng = TensorRng::seed(1);
        let cell = GruCell::new(6, 8, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let x = dt(TensorRng::seed(2).init(&[3, 6], Initializer::Normal(2.0)));
        let h = dt(TensorRng::seed(3).init(&[3, 8], Initializer::Uniform(1.0)));
        let h2 = cell.forward(&mut dx, &x, &h).unwrap();
        assert_eq!(h2.data().dims(), &[3, 8]);
        assert!(h2.data().all_finite());
        // GRU interpolates between bounded candidate and previous state.
        assert!(h2.data().as_slice().iter().all(|v| v.abs() <= 1.01));
    }

    #[test]
    fn lstm_state_evolves() {
        let mut rng = TensorRng::seed(4);
        let cell = LstmCell::new(5, 7, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let (h0, c0) = cell.zero_state(&mut dx, 2);
        let x = dt(TensorRng::seed(5).init(&[2, 5], Initializer::Normal(1.0)));
        let (h1, c1) = cell
            .forward(&mut dx, &x, &(h0.clone(), c0.clone()))
            .unwrap();
        assert_eq!(h1.data().dims(), &[2, 7]);
        assert_ne!(h1.data(), h0.data());
        assert_ne!(c1.data(), c0.data());
        let (h2, _) = cell.forward(&mut dx, &x, &(h1.clone(), c1)).unwrap();
        assert_ne!(h2.data(), h1.data());
    }

    #[test]
    fn rnn_output_is_tanh_bounded() {
        let mut rng = TensorRng::seed(6);
        let cell = RnnCell::new(4, 4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let x = dt(TensorRng::seed(7).init(&[2, 4], Initializer::Normal(5.0)));
        let h = dt(Tensor::zeros(&[2, 4]));
        let out = cell.forward(&mut dx, &x, &h).unwrap();
        assert!(out.data().as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn cells_register_three_parameter_tensors() {
        let mut rng = TensorRng::seed(8);
        assert_eq!(GruCell::new(4, 4, &mut rng).param_tensor_count(), 3);
        assert_eq!(LstmCell::new(4, 4, &mut rng).param_tensor_count(), 3);
        assert_eq!(RnnCell::new(4, 4, &mut rng).param_tensor_count(), 3);
    }

    #[test]
    fn gate_width_scales_with_gate_count() {
        let mut rng = TensorRng::seed(9);
        let gru = GruCell::new(4, 8, &mut rng);
        let lstm = LstmCell::new(4, 8, &mut rng);
        assert!(lstm.param_bytes() > gru.param_bytes());
    }

    #[test]
    fn forward_launches_kernels() {
        let mut rng = TensorRng::seed(10);
        let cell = GruCell::new(4, 4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let before = dx.executor().timeline().len();
        cell.forward(
            &mut dx,
            &dt(Tensor::zeros(&[1, 4])),
            &dt(Tensor::zeros(&[1, 4])),
        )
        .unwrap();
        assert!(dx.executor().timeline().len() >= before + 4);
    }

    #[test]
    fn wrong_shapes_error() {
        let mut rng = TensorRng::seed(11);
        let cell = GruCell::new(4, 4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        assert!(cell
            .forward(
                &mut dx,
                &dt(Tensor::zeros(&[1, 5])),
                &dt(Tensor::zeros(&[1, 4]))
            )
            .is_err());
    }
}
