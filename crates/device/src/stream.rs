//! Streams: the multi-lane virtual timeline behind pipelined execution.
//!
//! The sequential [`crate::Executor`] advances one shared clock — exactly
//! what the profiled frameworks do, and the root of the paper's workload
//! imbalance (§4.2) and data-movement (§4.3) bottlenecks. The proposed
//! mitigations (sampling/compute overlap, transfer batching) need the
//! opposite: independent work advancing on independent clocks, ordered
//! only where data actually flows.
//!
//! This module models a CUDA-style stream machine with three lanes:
//!
//! * [`StreamId::Host`] — CPU preprocessing (sampling, snapshot prep);
//! * [`StreamId::Copy`] — the PCIe copy engine (H2D and D2H share it);
//! * [`StreamId::Compute`] — GPU kernels (or CPU kernels in CPU mode).
//!
//! Each lane owns a virtual clock. Work placed on a lane starts at that
//! lane's clock; cross-lane ordering is expressed with recorded events
//! (`cudaEventRecord`) and waits (`cudaStreamWaitEvent`): waiting
//! advances the waiting lane's clock to the recorded timestamp, never
//! backwards. The scheduler is therefore a longest-path evaluation over
//! the dependency DAG, evaluated incrementally as work is issued in
//! program order.
//!
//! The executor only consults lanes while one is *active* (see
//! `Executor::on_stream`); with no active lane every action falls back
//! to the single serial clock, which keeps the default execution model —
//! and every recorded timeline — bit-identical to the sequential engine.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::DurationNs;

/// Process-wide supply of stream-fork identity tokens. Every
/// [`StreamSet`] (one per `fork_streams`) takes a fresh token; events it
/// records carry the token, so waiting on an event that belongs to a
/// different fork — or a different executor entirely — is detected
/// instead of silently reading another fork's timestamp table.
static NEXT_FORK_TOKEN: AtomicU64 = AtomicU64::new(1);

/// One of the three execution lanes of the pipelined engine.
///
/// ```
/// use dgnn_device::StreamId;
///
/// assert_eq!(StreamId::ALL.len(), 3);
/// assert_eq!(StreamId::Copy.name(), "copy");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Host-side preprocessing lane (CPU sampling, batch/snapshot prep).
    Host,
    /// PCIe copy engine (both directions share one lane).
    Copy,
    /// Kernel execution lane on the compute device.
    Compute,
}

impl StreamId {
    /// All lanes, in a fixed order.
    pub const ALL: [StreamId; 3] = [StreamId::Host, StreamId::Copy, StreamId::Compute];

    /// Lane index into per-lane tables (`Host` 0, `Copy` 1, `Compute` 2).
    pub fn index(self) -> usize {
        match self {
            StreamId::Host => 0,
            StreamId::Copy => 1,
            StreamId::Compute => 2,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            StreamId::Host => "host",
            StreamId::Copy => "copy",
            StreamId::Compute => "compute",
        }
    }
}

/// Handle to a recorded cross-stream synchronization point.
///
/// Returned by `Executor::record_event`; passed to
/// `Executor::wait_event` to order a lane after the recorded timestamp.
/// The handle remembers which stream fork recorded it: waiting on an
/// event from another fork (stale handle) or another executor (foreign
/// handle) panics with a diagnostic instead of reading garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    /// Index into the owning fork's recorded-timestamp table.
    pub(crate) index: usize,
    /// Identity token of the fork that recorded it.
    pub(crate) owner: u64,
}

impl EventId {
    /// Index within the owning fork's recorded-event table (the value
    /// provenance traces store).
    pub fn index(self) -> usize {
        self.index
    }
}

/// Per-lane virtual clocks plus the table of recorded events.
///
/// A fork spans one or more *devices*; each device owns the three lanes
/// above (slot `device * 3 + lane`). The historical single-device fork
/// is `forked_at`, which is `forked_at_devices(origin, 1)`.
#[derive(Debug, Clone)]
pub(crate) struct StreamSet {
    /// Lane clocks, `devices * 3` entries: `device * 3 + lane.index()`.
    clocks: Vec<DurationNs>,
    recorded: Vec<DurationNs>,
    /// This fork's identity token (see [`NEXT_FORK_TOKEN`]).
    token: u64,
}

impl StreamSet {
    /// Creates a single-device stream set with every lane clock at
    /// `origin` — the historical three-lane fork, bit-identical.
    #[cfg(test)]
    pub(crate) fn forked_at(origin: DurationNs) -> Self {
        StreamSet::forked_at_devices(origin, 1)
    }

    /// Creates a stream set spanning `devices` devices, every lane clock
    /// at `origin`.
    pub(crate) fn forked_at_devices(origin: DurationNs, devices: usize) -> Self {
        assert!(devices > 0, "a stream fork needs at least one device");
        StreamSet {
            clocks: vec![origin; devices * 3],
            recorded: Vec::new(),
            token: NEXT_FORK_TOKEN.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of devices this fork spans.
    pub(crate) fn devices(&self) -> usize {
        self.clocks.len() / 3
    }

    /// Current clock of a device's lane.
    pub(crate) fn clock(&self, device: usize, lane: StreamId) -> DurationNs {
        self.clocks[device * 3 + lane.index()]
    }

    /// Mutable clock of a device's lane.
    pub(crate) fn clock_mut(&mut self, device: usize, lane: StreamId) -> &mut DurationNs {
        &mut self.clocks[device * 3 + lane.index()]
    }

    /// Records the device-lane's current clock and returns a waitable
    /// handle.
    pub(crate) fn record(&mut self, device: usize, lane: StreamId) -> EventId {
        self.recorded.push(self.clock(device, lane));
        EventId {
            index: self.recorded.len() - 1,
            owner: self.token,
        }
    }

    /// Advances a lane's clock to at least the recorded timestamp.
    ///
    /// # Panics
    ///
    /// Panics when the event handle was recorded by a different stream
    /// fork (stale, or from another executor): honoring it would
    /// advance the lane from an unrelated fork's timestamp table.
    pub(crate) fn wait(&mut self, device: usize, lane: StreamId, event: EventId) {
        assert_eq!(
            event.owner,
            self.token,
            "wait_event on {} for an event recorded by a different stream fork \
             (event fork token {}, active fork token {}): the handle is stale or \
             belongs to another executor",
            lane.name(),
            event.owner,
            self.token,
        );
        let t = self.recorded[event.index];
        let c = self.clock_mut(device, lane);
        if t > *c {
            *c = t;
        }
    }

    /// Latest clock across all lanes (the makespan so far).
    pub(crate) fn max_clock(&self) -> DurationNs {
        self.clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(DurationNs::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> DurationNs {
        DurationNs::from_nanos(n)
    }

    #[test]
    fn lanes_have_independent_clocks() {
        let mut s = StreamSet::forked_at(ns(10));
        assert_eq!(s.devices(), 1);
        *s.clock_mut(0, StreamId::Host) = ns(50);
        assert_eq!(s.clock(0, StreamId::Host), ns(50));
        assert_eq!(s.clock(0, StreamId::Copy), ns(10));
        assert_eq!(s.clock(0, StreamId::Compute), ns(10));
        assert_eq!(s.max_clock(), ns(50));
    }

    #[test]
    fn wait_advances_but_never_rewinds() {
        let mut s = StreamSet::forked_at(ns(0));
        *s.clock_mut(0, StreamId::Host) = ns(100);
        let done = s.record(0, StreamId::Host);
        s.wait(0, StreamId::Compute, done);
        assert_eq!(s.clock(0, StreamId::Compute), ns(100));
        // A later wait on an older event is a no-op.
        *s.clock_mut(0, StreamId::Compute) = ns(200);
        s.wait(0, StreamId::Compute, done);
        assert_eq!(s.clock(0, StreamId::Compute), ns(200));
    }

    #[test]
    fn record_captures_the_moment_not_the_lane() {
        let mut s = StreamSet::forked_at(ns(0));
        *s.clock_mut(0, StreamId::Copy) = ns(30);
        let at30 = s.record(0, StreamId::Copy);
        *s.clock_mut(0, StreamId::Copy) = ns(70);
        s.wait(0, StreamId::Compute, at30);
        assert_eq!(s.clock(0, StreamId::Compute), ns(30));
    }

    #[test]
    #[should_panic(expected = "different stream fork")]
    fn waiting_on_a_foreign_forks_event_panics() {
        let mut a = StreamSet::forked_at(ns(0));
        let mut b = StreamSet::forked_at(ns(0));
        *a.clock_mut(0, StreamId::Copy) = ns(40);
        let foreign = a.record(0, StreamId::Copy);
        // `b` never recorded anything: honoring the handle would read
        // `a`'s timestamp table.
        b.wait(0, StreamId::Compute, foreign);
    }

    #[test]
    fn event_ids_expose_their_index() {
        let mut s = StreamSet::forked_at(ns(0));
        assert_eq!(s.record(0, StreamId::Host).index(), 0);
        assert_eq!(s.record(0, StreamId::Copy).index(), 1);
    }

    #[test]
    fn devices_own_independent_lane_sets() {
        let mut s = StreamSet::forked_at_devices(ns(5), 3);
        assert_eq!(s.devices(), 3);
        *s.clock_mut(1, StreamId::Compute) = ns(90);
        // The same lane on other devices is untouched.
        assert_eq!(s.clock(0, StreamId::Compute), ns(5));
        assert_eq!(s.clock(2, StreamId::Compute), ns(5));
        assert_eq!(s.max_clock(), ns(90));
        // Events synchronize across devices: device 2's copy lane can
        // wait on device 1's compute clock.
        let done = s.record(1, StreamId::Compute);
        s.wait(2, StreamId::Copy, done);
        assert_eq!(s.clock(2, StreamId::Copy), ns(90));
    }

    #[test]
    fn lane_names_and_indices_are_stable() {
        for (i, lane) in StreamId::ALL.iter().enumerate() {
            assert_eq!(lane.index(), i);
        }
        assert_eq!(StreamId::Host.name(), "host");
        assert_eq!(StreamId::Copy.name(), "copy");
        assert_eq!(StreamId::Compute.name(), "compute");
    }
}
