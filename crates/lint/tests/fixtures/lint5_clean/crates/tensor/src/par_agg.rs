//! LINT5 clean twin: the same parallel module reduces over an ordered
//! slice, so the summation order is fixed.

pub fn total(lanes: &[f32]) -> f32 {
    std::thread::scope(|_s| {});
    lanes.iter().sum::<f32>()
}
