//! `dgnn-lint` — workspace-wide static determinism & pricing-discipline
//! analyzer.
//!
//! Every headline number in this repository rests on two invariants:
//! **bit-determinism per seed** and **priced = computed**. The dynamic
//! sanitizer (`dgnn-analysis`) checks them by replaying traces — but
//! only of the paths that happened to execute. This crate closes the
//! gap *statically*: it parses every workspace source file (a
//! self-contained surface lexer — the workspace builds offline with no
//! external crates, so no `syn`), builds a file/module/function map,
//! and enforces the LINT1–5 rule set on all code paths at CI time,
//! before a trace ever runs. See [`rules`] for the catalogue and
//! `DESIGN.md` §3j for the static-vs-dynamic split.
//!
//! Findings mirror the sanitizer's structured-diagnostic style: rule
//! id/slug, `file:line` span, offending expression, suggested fix, and
//! both a human table and a machine-readable JSON report. Intentional
//! exceptions use an inline escape hatch that *requires a rationale*:
//!
//! ```text
//! // lint: allow(hash-iteration) — drained into a sort two lines down
//! ```

pub mod baseline;
pub mod lex;
pub mod model;
pub mod report;
pub mod rules;
pub mod scan;
pub mod structural;

use std::io;
use std::path::Path;

pub use crate::baseline::Baseline;
pub use crate::lex::{lex, Allow, Lexed};
pub use crate::model::{SourceFile, Workspace};
pub use crate::report::{Finding, LintReport};
pub use crate::rules::{LintRule, RuleSet, DECISION_PATH_CRATES, WALLCLOCK_ALLOWLIST};

/// Analyzes a loaded workspace: per-file scans plus the cross-file
/// structural checks, findings baselined and sorted by (file, line).
pub fn analyze(ws: &Workspace, rules: &RuleSet, baseline: &Baseline) -> LintReport {
    let mut findings: Vec<Finding> = Vec::new();
    for file in &ws.files {
        findings.extend(scan::scan_file(file, rules));
    }
    if rules.has(LintRule::StructuralCoverage) {
        findings.extend(structural::scan_workspace(ws));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id())));
    let (grandfathered, live): (Vec<Finding>, Vec<Finding>) =
        findings.into_iter().partition(|f| baseline.covers(f));
    LintReport {
        findings: live,
        grandfathered: grandfathered.len(),
        files_scanned: ws.files.len(),
    }
}

/// Loads the workspace at `root` and analyzes it with every rule.
pub fn analyze_root(root: &Path, rules: &RuleSet, baseline: &Baseline) -> io::Result<LintReport> {
    let ws = Workspace::load(root)?;
    Ok(analyze(&ws, rules, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sorts_and_partitions_by_baseline() {
        let ws = Workspace {
            root: std::path::PathBuf::from("/synthetic"),
            files: vec![
                SourceFile::from_source(
                    "crates/serve/src/b.rs",
                    "fn f() { let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                     let _ = m.keys().count(); }\n"
                        .into(),
                ),
                SourceFile::from_source(
                    "crates/serve/src/a.rs",
                    "fn f() { let m: std::collections::HashMap<u8, u8> = Default::default();\n\
                     let _ = m.values().count(); }\n"
                        .into(),
                ),
            ],
        };
        let report = analyze(&ws, &RuleSet::all(), &Baseline::empty());
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.files_scanned, 2);
        assert!(report.findings[0].file < report.findings[1].file);

        // Grandfather one finding: only the other stays live.
        let body = Baseline::render(&report.findings[..1]);
        let dir = std::env::temp_dir().join("dgnn-lint-lib-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.txt");
        std::fs::write(&path, body).unwrap();
        let b = Baseline::load(&path).unwrap();
        let report = analyze(&ws, &RuleSet::all(), &b);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.grandfathered, 1);
        std::fs::remove_file(&path).ok();
    }
}
