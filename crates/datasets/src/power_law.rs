//! Power-law (Zipf) index sampling for skewed popularity.
//!
//! Real interaction networks are heavy-tailed: a few pages/items receive
//! most interactions. That skew matters for the paper's bottlenecks (it
//! shapes temporal-adjacency list lengths, hence sampling cost), so the
//! generators draw item indices from a Zipf distribution.

use dgnn_tensor::TensorRng;

/// Draws indices `0..n` with probability ∝ `1 / (i+1)^alpha` via a
/// precomputed inverse CDF.
#[derive(Debug, Clone)]
pub struct PowerLawSampler {
    cdf: Vec<f64>,
}

impl PowerLawSampler {
    /// Builds the sampler for `n` items with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `alpha` is not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "power-law support must be non-empty");
        assert!(alpha.is_finite(), "alpha must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        PowerLawSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut TensorRng) -> usize {
        let u = rng.unit_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_indices_dominate() {
        let s = PowerLawSampler::new(100, 1.2);
        let mut rng = TensorRng::seed(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        assert!(head > 8_000, "head mass {head} should dominate");
        assert!(counts[0] > counts[50]);
    }

    #[test]
    fn all_indices_in_range() {
        let s = PowerLawSampler::new(7, 0.8);
        let mut rng = TensorRng::seed(2);
        for _ in 0..1_000 {
            assert!(s.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn alpha_zero_is_uniformish() {
        let s = PowerLawSampler::new(10, 0.0);
        let mut rng = TensorRng::seed(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "count {c} not near uniform");
        }
    }
}
