//! Property tests over the dynamic-graph substrate invariants.

use dgnn_graph::{
    snapshots_from_events, EventStream, Graph, NeighborSampler, SampleStrategy, TBatcher,
    TemporalAdjacency, TemporalEvent,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_stream(max_nodes: usize, max_events: usize) -> impl Strategy<Value = EventStream> {
    (2..=max_nodes, 1..=max_events, any::<u64>()).prop_map(|(n, m, seed)| {
        // Simple LCG so streams are deterministic per seed without rand.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut t = 0.0f64;
        let events = (0..m)
            .map(|i| {
                t += (next() % 100) as f64 / 10.0;
                let src = next() % n;
                let mut dst = next() % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                TemporalEvent { src, dst, time: t, feature_idx: i }
            })
            .collect();
        EventStream::new(n, events).expect("generated stream is valid")
    })
}

proptest! {
    #[test]
    fn csr_round_trips_edge_multiset(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60)
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(s, d)| (s % n, d % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.n_edges(), edges.len());
        let mut got: Vec<(usize, usize)> = g.iter_edges().map(|(s, d, _)| (s, d)).collect();
        let mut want = edges;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn degrees_sum_to_edge_count(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60)
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(s, d)| (s % n, d % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let total: usize = (0..n).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(total, g.n_edges());
    }

    #[test]
    fn sampled_neighbors_always_precede_query(stream in arb_stream(12, 80), seed in any::<u64>()) {
        let adj = TemporalAdjacency::from_stream(&stream);
        let t_query = stream.end_time() / 2.0 + 1.0;
        for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
            let mut sampler = NeighborSampler::new(strategy, seed);
            for node in 0..stream.n_nodes() {
                let (picked, _) = sampler.sample(&adj, node, t_query, 5);
                for p in picked {
                    prop_assert!(p.time < t_query, "sample at {} not before {}", p.time, t_query);
                }
            }
        }
    }

    #[test]
    fn bisection_count_matches_brute_force(stream in arb_stream(10, 60)) {
        let adj = TemporalAdjacency::from_stream(&stream);
        let t_query = stream.end_time() * 0.7;
        for node in 0..stream.n_nodes() {
            let brute = stream
                .events()
                .iter()
                .filter(|e| (e.src == node || e.dst == node) && e.time < t_query)
                .count();
            prop_assert_eq!(adj.count_before(node, t_query).0, brute);
        }
    }

    #[test]
    fn tbatch_partitions_without_node_repeats(stream in arb_stream(10, 80)) {
        let (batches, _) = TBatcher::new().build_stream(&stream);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, stream.len());
        for b in &batches {
            let mut seen = HashSet::new();
            for &i in &b.event_indices {
                let e = stream.events()[i];
                prop_assert!(seen.insert(e.src));
                prop_assert!(seen.insert(e.dst));
            }
        }
    }

    #[test]
    fn tbatch_count_bounded_by_max_node_frequency(stream in arb_stream(8, 60)) {
        let (batches, _) = TBatcher::new().build_stream(&stream);
        let mut freq = vec![0usize; stream.n_nodes()];
        for e in stream.events() {
            freq[e.src] += 1;
            freq[e.dst] += 1;
        }
        let max_freq = freq.into_iter().max().unwrap_or(0);
        // The busiest node lower-bounds batches; batching never exceeds
        // the event count.
        prop_assert!(batches.len() >= max_freq.min(stream.len()));
        prop_assert!(batches.len() <= stream.len());
    }

    #[test]
    fn snapshots_cover_all_events_when_disjoint(stream in arb_stream(10, 60)) {
        let window = (stream.end_time() / 4.0).max(0.5);
        let seq = snapshots_from_events(&stream, window, window).unwrap();
        let total: usize = seq.iter().map(|s| s.graph.n_edges()).sum();
        prop_assert_eq!(total, stream.len());
    }
}
