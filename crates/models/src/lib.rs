//! # dgnn-models
//!
//! The eight dynamic graph neural networks the paper profiles —
//! JODIE, TGN, EvolveGCN (-H and -O), TGAT, ASTGNN, MolDGNN, DyRep and
//! LDG (MLP and bilinear encoders) — implemented over the simulated
//! platform, plus the §5 optimization proposals as measurable ablations.
//!
//! ## Execution model
//!
//! Each model implements [`DgnnModel`]: it registers its parameters
//! (driving warm-up cost), then runs inference inside an `"inference"`
//! profiler scope with module sub-scopes matching the paper's Figure 7
//! categories (`sampling`, `time_encoding`, `attention`, `rnn`, `gnn`,
//! `memcpy_h2d`, `memcpy_d2h`, …).
//!
//! ## Representative computation
//!
//! Kernel and transfer *costs* are always priced at the configured batch
//! size; the *functional* tensor math runs on a capped representative
//! subset ([`REP_CAP`] rows) so that full-scale experiments stay fast on
//! the host while the simulated timing reflects the real workload. Every
//! run returns a deterministic checksum over the representative outputs.

#![forbid(unsafe_code)]

mod astgnn;
mod common;
mod dyrep;
mod error;
mod evolvegcn;
mod jodie;
mod ldg;
mod memory;
mod moldgnn;
pub mod optim;
mod registry;
mod replica;
mod tgat;
mod tgn;

pub use astgnn::{Astgnn, AstgnnConfig};
pub use common::{
    lane_handoff, on_lane, shard_barrier, shard_owners, split_bytes, DgnnModel, DoubleBuffer,
    InferenceConfig, RunSummary, TransferGranularity, REP_CAP,
};
pub use dyrep::{DyRep, DyRepConfig};
pub use error::ModelError;
pub use evolvegcn::{EvolveGcn, EvolveGcnConfig, EvolveGcnVersion};
pub use jodie::{Jodie, JodieConfig};
pub use ldg::{Ldg, LdgConfig, LdgEncoder};
pub use memory::{IngestMemory, MemoryRule};
pub use moldgnn::{MolDgnn, MolDgnnConfig};
pub use registry::{all_model_infos, EvolvingParts, ModelInfo, ModelKind};
pub use replica::{ModelFactory, ReplicaHandle};
pub use tgat::{Tgat, TgatConfig};
pub use tgn::{Tgn, TgnConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
