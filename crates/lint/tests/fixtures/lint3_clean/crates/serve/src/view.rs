//! LINT3 clean twin (2/2): outside the device crate, *reading* the
//! timeline is fine, and a `TimelineEvent` in return-type position is
//! not a construction.

pub fn last_event(timeline: &[dgnn_device::TimelineEvent]) -> dgnn_device::TimelineEvent {
    timeline.last().cloned().unwrap_or_default()
}
