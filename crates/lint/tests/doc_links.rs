//! Docs drift check: every intra-repo markdown link in the top-level
//! docs must point at a file (or directory) that actually exists.
//!
//! The top-level docs (README, ARCHITECTURE, DESIGN, EXPERIMENTS,
//! ROADMAP, …) cross-link each other and point into `crates/`; a
//! rename or file move silently strands those links because nothing
//! compiles them. This test walks every root-level `*.md`, extracts
//! `](target)` links, and asserts each relative target resolves.
//! External links (`http://`, `https://`, `mailto:`) and pure
//! in-page anchors (`#section`) are out of scope; anchors on file
//! links (`FILE.md#section`) are stripped before the existence check
//! (section-level drift is not detectable without a markdown parser).

use std::path::Path;

/// Extracts markdown link targets — the `(…)` part of `[text](…)` —
/// from one document. Fenced code blocks are skipped so that example
/// snippets containing `](` sequences cannot produce false positives.
fn link_targets(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (i, line) in doc.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        let mut col = 0usize;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            out.push((i + 1, tail[..close].trim().to_string()));
            col += open + 2 + close + 1;
            rest = &line[col..];
        }
    }
    out
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut checked = 0usize;
    let mut broken: Vec<String> = Vec::new();

    let mut docs: Vec<_> = std::fs::read_dir(&root)
        .expect("read workspace root")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    docs.sort();
    assert!(
        docs.iter()
            .any(|p| p.file_name().is_some_and(|n| n == "README.md")),
        "workspace root has no README.md — wrong root?"
    );

    for doc in docs {
        let name = doc.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&doc).expect("read doc");
        for (line, target) in link_targets(&text) {
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            // `FILE.md#section` → `FILE.md`; section anchors are not
            // checkable without a markdown parser.
            let path_part = target.split('#').next().unwrap();
            let resolved = root.join(path_part);
            checked += 1;
            if !resolved.exists() {
                broken.push(format!("{name}:{line}: ]({target})"));
            }
        }
    }

    assert!(
        checked >= 5,
        "only {checked} intra-repo links found — extraction broken?"
    );
    assert!(
        broken.is_empty(),
        "broken intra-repo markdown links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn link_extraction_sees_links_and_skips_fences() {
    let doc = "see [design](DESIGN.md#goals) and [web](https://x.y)\n\
               ```\n[not a link](ignored.md)\n```\n\
               also [up](../sibling.md)\n";
    let targets = link_targets(doc);
    assert_eq!(
        targets,
        vec![
            (1, "DESIGN.md#goals".to_string()),
            (1, "https://x.y".to_string()),
            (5, "../sibling.md".to_string()),
        ]
    );
}
