//! Matrix multiplication kernels (the GEMM family).
//!
//! `matmul` is cache-blocked and fans row blocks out over worker threads
//! (honoring `RAYON_NUM_THREADS` via [`crate::par`]). Both optimizations
//! preserve the serial ikj kernel's result *bit for bit*: every output
//! element still accumulates its `k` products in ascending-`kk` order
//! with the same zero-skip, and row blocks are disjoint, so neither
//! tiling nor threading can reorder a single f32 addition.

use crate::cost::OpDescriptor;
use crate::par;
use crate::{Result, Tensor, TensorError};

/// Tile of the reduction dimension held hot in L1 across a row sweep.
const BLOCK_K: usize = 64;
/// Tile of the output columns — with `BLOCK_K` this keeps the active
/// `b` panel around 64 KiB.
const BLOCK_N: usize = 256;
/// Fewest rows per worker thread worth the spawn overhead.
const MIN_ROWS_PER_THREAD: usize = 16;

/// Multiplies `rows` rows of `a` (shape `[rows, k]`) by `b` (`[k, n]`)
/// into a fresh `[rows, n]` buffer with k/n tiling. For each output
/// element the `kk` loop still runs 0..k ascending (tiles are visited in
/// order), so the result is bitwise equal to the untiled kernel.
fn matmul_rows_blocked(a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * n];
    for kt in (0..k).step_by(BLOCK_K) {
        let kend = (kt + BLOCK_K).min(k);
        for jt in (0..n).step_by(BLOCK_N) {
            let jend = (jt + BLOCK_N).min(n);
            for i in 0..rows {
                for kk in kt..kend {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n + jt..kk * n + jend];
                    let orow = &mut out[i * n + jt..i * n + jend];
                    for (o, bv) in orow.iter_mut().zip(brow) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
    out
}

/// Blocked GEMM with disjoint row blocks fanned out over worker threads;
/// block results are re-concatenated in row order, so any thread count
/// reproduces the single-threaded bytes.
fn matmul_blocked_parallel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let threads = par::max_threads()
        .min(m.div_ceil(MIN_ROWS_PER_THREAD))
        .max(1);
    if threads <= 1 {
        return matmul_rows_blocked(a, b, m, k, n);
    }
    let rows_per = m.div_ceil(threads);
    let blocks: Vec<(usize, usize)> = (0..m)
        .step_by(rows_per)
        .map(|start| (start, rows_per.min(m - start)))
        .collect();
    par::par_map_coarse(&blocks, threads, |&(start, rows)| {
        matmul_rows_blocked(&a[start * k..(start + rows) * k], b, rows, k, n)
    })
    .concat()
}

/// Descriptor of [`Tensor::matmul`] on `[m, k] × [k, n]`.
pub fn matmul_desc(m: usize, k: usize, n: usize) -> OpDescriptor {
    OpDescriptor::gemm("matmul", m, k, n)
}

/// Descriptor of [`Tensor::matvec`] on `[m, k] × [k]`.
pub fn matvec_desc(m: usize, k: usize) -> OpDescriptor {
    OpDescriptor::gemm("matvec", m, k, 1)
}

/// Descriptor of [`Tensor::bmm`] on `[b, m, k] × [b, k, n]`.
pub fn bmm_desc(b: usize, m: usize, k: usize, n: usize) -> OpDescriptor {
    OpDescriptor::batched_gemm("bmm", b, m, k, n)
}

/// Descriptor of [`Tensor::outer`] on `[m] × [n]`.
pub fn outer_desc(m: usize, n: usize) -> OpDescriptor {
    OpDescriptor::gemm("outer", m, 1, n)
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// ```
    /// use dgnn_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), dgnn_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// let c = a.matmul(&b)?;
    /// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::ShapeMismatch`] unless the inner dimensions agree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: rhs.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let out = matmul_blocked_parallel(self.as_slice(), rhs.as_slice(), m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `[m, k] × [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors analogous to [`Tensor::matmul`].
    pub fn matvec(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 2,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 1,
                actual: rhs.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if rhs.dims()[0] != k {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let x = rhs.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(av, xv)| av * xv).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Batched matrix product of two rank-3 tensors:
    /// `[b, m, k] × [b, k, n] → [b, m, n]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when ranks are not 3, batch dimensions differ,
    /// or inner dimensions disagree.
    pub fn bmm(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "bmm",
                expected: 3,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "bmm",
                expected: 3,
                actual: rhs.rank(),
            });
        }
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (rhs.dims()[0], rhs.dims()[1], rhs.dims()[2]);
        if b != b2 || k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "bmm",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; b * m * n];
        let a = self.as_slice();
        let bb = rhs.as_slice();
        for batch in 0..b {
            let aoff = batch * m * k;
            let boff = batch * k * n;
            let ooff = batch * m * n;
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[aoff + i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out[ooff + i * n + j] += aik * bb[boff + kk * n + j];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Outer product of two rank-1 tensors: `[m] × [n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 1.
    pub fn outer(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 1 || rhs.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "outer",
                expected: 1,
                actual: self.rank().max(rhs.rank()),
            });
        }
        let (m, n) = (self.len(), rhs.len());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = self.as_slice()[i] * rhs.as_slice()[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    /// The historical untiled single-threaded ikj kernel, kept verbatim
    /// as the byte-identity reference for the blocked parallel version.
    fn matmul_serial_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        out
    }

    #[test]
    fn blocked_parallel_matmul_is_byte_identical_to_serial() {
        let mut rng = TensorRng::seed(11);
        // Shapes straddling every tile boundary: smaller than one tile,
        // exact multiples, and ragged remainders in both k and n.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (17, BLOCK_K, BLOCK_N),
            (33, BLOCK_K + 7, BLOCK_N + 13),
            (64, 200, 300),
            (129, 65, 257),
        ] {
            let mut a = rng.init(&[m, k], crate::Initializer::Uniform(1.0));
            // Inject zeros so the zero-skip path is exercised.
            let az = a.as_mut_slice();
            for idx in (0..az.len()).step_by(7) {
                az[idx] = 0.0;
            }
            let b = rng.init(&[k, n], crate::Initializer::Uniform(1.0));
            let reference = matmul_serial_reference(a.as_slice(), b.as_slice(), m, k, n);
            let blocked = a.matmul(&b).unwrap();
            let same_bits = reference
                .iter()
                .zip(blocked.as_slice())
                .all(|(r, o)| r.to_bits() == o.to_bits());
            assert!(same_bits, "bit mismatch at shape [{m},{k}]x[{k},{n}]");
        }
    }

    #[test]
    fn blocked_matmul_identical_across_thread_counts() {
        let mut rng = TensorRng::seed(5);
        let a = rng.init(&[97, 130], crate::Initializer::Uniform(1.0));
        let b = rng.init(&[130, 71], crate::Initializer::Uniform(1.0));
        let single = matmul_rows_blocked(a.as_slice(), b.as_slice(), 97, 130, 71);
        for threads in [2usize, 3, 8] {
            let rows_per = 97usize.div_ceil(threads);
            let blocks: Vec<(usize, usize)> = (0..97)
                .step_by(rows_per)
                .map(|s| (s, rows_per.min(97 - s)))
                .collect();
            let par = crate::par::par_map_coarse(&blocks, threads, |&(s, rows)| {
                matmul_rows_blocked(
                    &a.as_slice()[s * 130..(s + rows) * 130],
                    b.as_slice(),
                    rows,
                    130,
                    71,
                )
            })
            .concat();
            let same = single
                .iter()
                .zip(&par)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "threads={threads}");
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let id = Tensor::eye(3);
        a.matmul(&id).unwrap().assert_close(&a, 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 1.0, 2.0, 1.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[3.0, 1.0, 4.0, 1.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_vec(vec![1.0, -1.0, 2.0], &[3]).unwrap();
        let y = a.matvec(&x).unwrap();
        let via_mm = a.matmul(&x.reshape(&[3, 1]).unwrap()).unwrap();
        assert_eq!(y.as_slice(), via_mm.as_slice());
    }

    #[test]
    fn bmm_batches_independently() {
        let a = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 2, 2]).unwrap();
        let id =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0], &[2, 2, 2]).unwrap();
        a.bmm(&id).unwrap().assert_close(&a, 1e-6);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let u = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = u.outer(&v).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.at(&[1, 2]).unwrap(), 10.0);
    }
}
