//! Bottleneck triage across the whole model zoo.
//!
//! Runs every model in its paper configuration on the simulated GPU and
//! prints the automatic bottleneck classification — the four classes of
//! Section 4 (temporal dependency, workload imbalance, data movement,
//! GPU warm-up) with severity and evidence.
//!
//! Run with: `cargo run --example bottleneck_report`

use dgnn_suite::datasets::{
    bitcoin_alpha, github, iso17, pems, social_evolution, wikipedia, Scale,
};
use dgnn_suite::device::{ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{
    Astgnn, AstgnnConfig, DgnnModel, DyRep, DyRepConfig, EvolveGcn, EvolveGcnConfig,
    InferenceConfig, Jodie, JodieConfig, Ldg, LdgConfig, MolDgnn, MolDgnnConfig, Tgat, TgatConfig,
    Tgn, TgnConfig,
};
use dgnn_suite::profile::InferenceProfile;

fn report(model: &mut dyn DgnnModel, cfg: &InferenceConfig) {
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    model.run(&mut ex, cfg).expect("inference succeeds");
    let p = InferenceProfile::capture(&ex, "inference");
    println!(
        "{:<14} util {:>5.2}%  mem {:>7.1} MiB  inference {}",
        model.name(),
        p.utilization.busy_fraction * 100.0,
        p.gpu_peak_mib(),
        p.inference_time
    );
    for f in &p.findings {
        println!(
            "    [{:>3.0}%] {}: {}",
            f.severity * 100.0,
            f.kind,
            f.evidence
        );
    }
}

fn main() {
    let scale = Scale::Tiny;
    let seed = 7;
    let base = InferenceConfig::default().with_max_units(2);

    report(
        &mut Jodie::new(wikipedia(scale, seed), JodieConfig::default(), seed),
        &base.clone().with_batch_size(128),
    );
    report(
        &mut Tgn::new(wikipedia(scale, seed), TgnConfig::default(), seed),
        &base.clone().with_batch_size(512).with_neighbors(10),
    );
    report(
        &mut EvolveGcn::new(bitcoin_alpha(scale, seed), EvolveGcnConfig::default(), seed),
        &base.clone().with_max_units(8),
    );
    report(
        &mut Tgat::new(wikipedia(scale, seed), TgatConfig::default(), seed),
        &base.clone().with_batch_size(200).with_neighbors(20),
    );
    report(
        &mut Astgnn::new(pems(scale, seed), AstgnnConfig::default(), seed),
        &base.clone().with_batch_size(8),
    );
    report(
        &mut DyRep::new(social_evolution(scale, seed), DyRepConfig::default(), seed),
        &base.clone().with_batch_size(64),
    );
    report(
        &mut Ldg::new(github(scale, seed), LdgConfig::default(), seed),
        &base.clone().with_batch_size(64),
    );
    report(
        &mut MolDgnn::new(iso17(scale, seed), MolDgnnConfig::default(), seed),
        &base.with_batch_size(128).with_max_units(1),
    );
}
