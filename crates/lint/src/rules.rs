//! The static rule catalogue: LINT1–LINT5, mirroring the sanitizer's
//! structured-diagnostic style (`dgnn-analysis` RULE1–8).
//!
//! Where the sanitizer replays *one executed trace*, these rules read
//! *all source code*, so they hold on every path before a trace ever
//! runs:
//!
//! * **LINT1 hash-iteration** — no iteration over `HashMap`/`HashSet`
//!   (`for` loops, `.iter()`, `.keys()`, `.values()`, `.drain()`,
//!   `.into_iter()`, `.retain()`, …) in decision-path crates
//!   ([`DECISION_PATH_CRATES`]). Hash iteration order depends on hasher
//!   state, so any decision derived from it breaks bit-determinism per
//!   seed. Point lookups (`get`/`insert`/`contains_key`/`remove`) and
//!   `BTreeMap` iteration stay legal.
//! * **LINT2 nondeterminism-source** — no wall-clock reads
//!   (`Instant::now`, `SystemTime`), OS randomness (`thread_rng`,
//!   `RandomState`) or environment-dependent entropy (`env::var`)
//!   anywhere except the bench-harness wall-time allowlist
//!   ([`WALLCLOCK_ALLOWLIST`]). Simulated pricing must never observe
//!   host time or entropy.
//! * **LINT3 pricing-discipline** — no direct [`Timeline`] event pushes,
//!   raw `TimelineEvent` construction or lane-clock mutation outside
//!   `dgnn-device` internals, so all priced work flows through
//!   `Dispatcher`/`Executor` (priced = computed).
//! * **LINT4 structural-coverage** — every sanitizer RULE1–8 must have
//!   ≥ 1 adversarial test and ≥ 1 clean-twin test, and every
//!   `InferenceConfig` knob must be exercised by at least one bench bin
//!   or ablation.
//! * **LINT5 float-reduction-order** — unordered `.sum::<f32>()` /
//!   `.fold(…)` float reductions in parallel modules (files that spawn
//!   threads): float addition is not associative, so reducing over an
//!   unordered source makes the result scheduling-dependent.
//!
//! [`Timeline`]: ../../dgnn_device/struct.Timeline.html

use std::fmt;

/// Crates whose control flow decides what gets priced and in which
/// order; hash iteration there is a determinism hazard (LINT1).
pub const DECISION_PATH_CRATES: [&str; 4] = ["serve", "device", "dyngraph", "models"];

/// Files allowed to read the wall clock (LINT2): the self-timed bench
/// harness, whose measurements are report-only and never feed simulated
/// pricing. Paths are workspace-relative.
pub const WALLCLOCK_ALLOWLIST: [&str; 1] = ["crates/bench/src/harness.rs"];

/// The five static rule classes `dgnn-lint` checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintRule {
    /// Iteration over a `HashMap`/`HashSet` in a decision-path crate.
    HashIteration,
    /// Wall-clock, RNG or environment entropy outside the allowlist.
    NondeterminismSource,
    /// Timeline pushes / lane-clock mutation outside `dgnn-device`.
    PricingDiscipline,
    /// Missing adversarial/clean-twin sanitizer test or unexercised
    /// `InferenceConfig` knob.
    StructuralCoverage,
    /// Unordered float reduction in a parallel module.
    FloatReductionOrder,
}

impl LintRule {
    /// All rules, in report order.
    pub const ALL: [LintRule; 5] = [
        LintRule::HashIteration,
        LintRule::NondeterminismSource,
        LintRule::PricingDiscipline,
        LintRule::StructuralCoverage,
        LintRule::FloatReductionOrder,
    ];

    /// Stable rule identifier (`LINT1`..`LINT5`).
    pub fn id(self) -> &'static str {
        match self {
            LintRule::HashIteration => "LINT1",
            LintRule::NondeterminismSource => "LINT2",
            LintRule::PricingDiscipline => "LINT3",
            LintRule::StructuralCoverage => "LINT4",
            LintRule::FloatReductionOrder => "LINT5",
        }
    }

    /// Human-readable rule slug (also the `lint: allow(<slug>)` key).
    pub fn slug(self) -> &'static str {
        match self {
            LintRule::HashIteration => "hash-iteration",
            LintRule::NondeterminismSource => "nondeterminism-source",
            LintRule::PricingDiscipline => "pricing-discipline",
            LintRule::StructuralCoverage => "structural-coverage",
            LintRule::FloatReductionOrder => "float-reduction-order",
        }
    }

    /// Suggested fix attached to every finding of this rule.
    pub fn suggestion(self) -> &'static str {
        match self {
            LintRule::HashIteration => {
                "iterate a BTreeMap/BTreeSet (or sort the keys first) so \
                 the order is independent of hasher state; keep HashMap \
                 only for point lookups, or justify the iteration with \
                 `// lint: allow(hash-iteration) — <why order cannot \
                 leak>`"
            }
            LintRule::NondeterminismSource => {
                "route wall-time through dgnn_bench::harness::walltime() \
                 (report-only), derive randomness from the seeded \
                 deterministic RNG streams, and pass configuration \
                 explicitly instead of reading the environment"
            }
            LintRule::PricingDiscipline => {
                "price the work through Dispatcher/Executor (launch, \
                 transfer, peer_transfer, lane_handoff) so every timeline \
                 event stays paired with its computed work; never push \
                 events or mutate lane clocks by hand outside dgnn-device"
            }
            LintRule::StructuralCoverage => {
                "add the missing adversarial (flagged) or clean-twin test \
                 for the sanitizer rule in crates/analysis/tests, or \
                 exercise the InferenceConfig knob from at least one \
                 bench bin or ablation"
            }
            LintRule::FloatReductionOrder => {
                "reduce over an ordered source (slice, Vec, BTreeMap) or \
                 collect-then-sort before summing: float addition is not \
                 associative, so an unordered reduction makes the value \
                 depend on scheduling"
            }
        }
    }

    /// Looks a rule up by its slug.
    pub fn from_slug(slug: &str) -> Option<LintRule> {
        LintRule::ALL.into_iter().find(|r| r.slug() == slug)
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.slug())
    }
}

/// Which rules a run checks (the fixture tests enable one at a time;
/// the CLI enables all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    enabled: Vec<LintRule>,
}

impl RuleSet {
    /// All five rules.
    pub fn all() -> Self {
        RuleSet {
            enabled: LintRule::ALL.to_vec(),
        }
    }

    /// Just the given rules.
    pub fn only(rules: &[LintRule]) -> Self {
        RuleSet {
            enabled: rules.to_vec(),
        }
    }

    /// Whether a rule is enabled.
    pub fn has(&self, rule: LintRule) -> bool {
        self.enabled.contains(&rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_stable_and_distinct() {
        let ids: Vec<&str> = LintRule::ALL.iter().map(|r| r.id()).collect();
        assert_eq!(ids, vec!["LINT1", "LINT2", "LINT3", "LINT4", "LINT5"]);
        let slugs: Vec<&str> = LintRule::ALL.iter().map(|r| r.slug()).collect();
        assert_eq!(slugs.len(), 5);
        for s in &slugs {
            assert_eq!(LintRule::from_slug(s).map(|r| r.slug()), Some(*s));
        }
        assert!(LintRule::from_slug("no-such-rule").is_none());
    }

    #[test]
    fn rule_sets_filter() {
        let rs = RuleSet::only(&[LintRule::HashIteration]);
        assert!(rs.has(LintRule::HashIteration));
        assert!(!rs.has(LintRule::PricingDiscipline));
        assert!(RuleSet::all().has(LintRule::FloatReductionOrder));
    }
}
