//! JODIE's t-batch algorithm.
//!
//! The t-batch construction (Kumar et al., KDD'19) partitions a
//! time-ordered interaction sequence into the smallest number of batches
//! such that no node appears twice within a batch and every interaction's
//! batch comes after the batches of all earlier interactions touching the
//! same nodes. Interactions inside one batch are then free of
//! read-after-write hazards and can execute in parallel on the GPU —
//! the 9.2× training speedup the JODIE paper reports, which Section 3.3
//! of the profiled paper reuses for inference.

use std::collections::HashMap;

use crate::{EventStream, NodeId, TemporalEvent};

/// One t-batch: indices into the originating event slice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TBatch {
    /// Event indices assigned to this batch, in temporal order.
    pub event_indices: Vec<usize>,
}

impl TBatch {
    /// Number of events in the batch (its parallel width).
    pub fn len(&self) -> usize {
        self.event_indices.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.event_indices.is_empty()
    }
}

/// Builds t-batches from event sequences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TBatcher;

impl TBatcher {
    /// Creates a batcher.
    pub fn new() -> Self {
        TBatcher
    }

    /// Assigns each event of `events` (assumed time-ordered) to a batch:
    /// `batch(e) = 1 + max(batch(last event touching e.src),
    /// batch(last event touching e.dst))`. Also returns the work estimate
    /// in hash-map operations for host pricing.
    pub fn build(&self, events: &[TemporalEvent]) -> (Vec<TBatch>, u64) {
        let mut last_batch: HashMap<NodeId, usize> = HashMap::new();
        let mut batches: Vec<TBatch> = Vec::new();
        let mut ops = 0u64;
        for (idx, e) in events.iter().enumerate() {
            let b_src = last_batch.get(&e.src).map_or(0, |&b| b + 1);
            let b_dst = last_batch.get(&e.dst).map_or(0, |&b| b + 1);
            let b = b_src.max(b_dst);
            if b == batches.len() {
                batches.push(TBatch::default());
            }
            batches[b].event_indices.push(idx);
            last_batch.insert(e.src, b);
            last_batch.insert(e.dst, b);
            ops += 4; // two lookups, two inserts
        }
        (batches, ops)
    }

    /// Convenience: batches an entire stream.
    pub fn build_stream(&self, stream: &EventStream) -> (Vec<TBatch>, u64) {
        self.build(stream.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, time: f64) -> TemporalEvent {
        TemporalEvent {
            src,
            dst,
            time,
            feature_idx: 0,
        }
    }

    #[test]
    fn disjoint_events_share_one_batch() {
        let events = vec![ev(0, 1, 0.0), ev(2, 3, 1.0), ev(4, 5, 2.0)];
        let (batches, _) = TBatcher::new().build(&events);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    fn repeated_node_forces_new_batch() {
        let events = vec![ev(0, 1, 0.0), ev(0, 2, 1.0), ev(0, 3, 2.0)];
        let (batches, _) = TBatcher::new().build(&events);
        assert_eq!(batches.len(), 3);
        for b in &batches {
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn no_node_repeats_within_a_batch() {
        let events: Vec<TemporalEvent> = (0..50)
            .map(|i| ev(i % 7, 7 + (i * 3) % 5, i as f64))
            .collect();
        let (batches, _) = TBatcher::new().build(&events);
        for b in &batches {
            let mut seen = std::collections::HashSet::new();
            for &i in &b.event_indices {
                assert!(seen.insert(events[i].src), "src repeated in batch");
                assert!(seen.insert(events[i].dst), "dst repeated in batch");
            }
        }
    }

    #[test]
    fn batches_respect_temporal_dependencies() {
        let events: Vec<TemporalEvent> = (0..30).map(|i| ev(i % 4, 4 + i % 3, i as f64)).collect();
        let (batches, _) = TBatcher::new().build(&events);
        // For each node, its events must appear in strictly increasing
        // batch order.
        let mut batch_of = vec![0usize; events.len()];
        for (bi, b) in batches.iter().enumerate() {
            for &i in &b.event_indices {
                batch_of[i] = bi;
            }
        }
        for node in 0..7 {
            let mut last = None;
            for (i, e) in events.iter().enumerate() {
                if e.src == node || e.dst == node {
                    if let Some(prev) = last {
                        assert!(batch_of[i] > prev, "event {i} not after {prev}");
                    }
                    last = Some(batch_of[i]);
                }
            }
        }
    }

    #[test]
    fn every_event_is_assigned_exactly_once() {
        let events: Vec<TemporalEvent> = (0..40).map(|i| ev(i % 5, 5 + i % 6, i as f64)).collect();
        let (batches, ops) = TBatcher::new().build(&events);
        let total: usize = batches.iter().map(TBatch::len).sum();
        assert_eq!(total, events.len());
        assert_eq!(ops, 4 * events.len() as u64);
    }

    #[test]
    fn empty_input_produces_no_batches() {
        let (batches, ops) = TBatcher::new().build(&[]);
        assert!(batches.is_empty());
        assert_eq!(ops, 0);
    }
}
