//! Property tests over the neural-network layers.

use dgnn_device::{ExecMode, Executor, PlatformSpec};
use dgnn_nn::{
    BochnerTimeEncoder, GcnLayer, GruCell, LayerNorm, Linear, LstmCell, Mlp, Module,
    MultiHeadAttention, RnnCell, Time2Vec,
};
use dgnn_tensor::{Initializer, Tensor, TensorRng};
use proptest::prelude::*;

fn cpu() -> Executor {
    Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_output_shape_and_finiteness(
        (m, i, o, seed) in (1usize..12, 1usize..24, 1usize..24, any::<u64>())
    ) {
        let mut rng = TensorRng::seed(seed);
        let layer = Linear::new(i, o, &mut rng);
        let x = TensorRng::seed(seed ^ 1).init(&[m, i], Initializer::Normal(2.0));
        let y = layer.forward(&mut cpu(), &x).unwrap();
        prop_assert_eq!(y.dims(), &[m, o]);
        prop_assert!(y.all_finite());
    }

    #[test]
    fn linear_is_linear((m, i, o, seed) in (1usize..8, 1usize..12, 1usize..12, any::<u64>())) {
        let mut rng = TensorRng::seed(seed);
        let layer = Linear::new(i, o, &mut rng);
        let mut ex = cpu();
        let a = TensorRng::seed(seed ^ 2).init(&[m, i], Initializer::Uniform(1.0));
        let b = TensorRng::seed(seed ^ 3).init(&[m, i], Initializer::Uniform(1.0));
        // f(a) + f(b) - f(0) == f(a + b)  (affine with shared bias)
        let fa = layer.forward(&mut ex, &a).unwrap();
        let fb = layer.forward(&mut ex, &b).unwrap();
        let f0 = layer.forward(&mut ex, &Tensor::zeros(&[m, i])).unwrap();
        let fab = layer.forward(&mut ex, &a.add(&b).unwrap()).unwrap();
        fa.add(&fb).unwrap().sub(&f0).unwrap().assert_close(&fab, 1e-3);
    }

    #[test]
    fn recurrent_cells_bound_their_state(
        (b, i, h, seed) in (1usize..6, 1usize..10, 1usize..10, any::<u64>())
    ) {
        let mut rng = TensorRng::seed(seed);
        let x = TensorRng::seed(seed ^ 4).init(&[b, i], Initializer::Normal(3.0));

        let gru = GruCell::new(i, h, &mut rng);
        let h0 = TensorRng::seed(seed ^ 5).init(&[b, h], Initializer::Uniform(1.0));
        let h1 = gru.forward(&mut cpu(), &x, &h0).unwrap();
        prop_assert!(h1.as_slice().iter().all(|v| v.abs() <= 1.01));

        let rnn = RnnCell::new(i, h, &mut rng);
        let r1 = rnn.forward(&mut cpu(), &x, &h0).unwrap();
        prop_assert!(r1.as_slice().iter().all(|v| v.abs() <= 1.0));

        let lstm = LstmCell::new(i, h, &mut rng);
        let (hh, cc) = lstm.forward(&mut cpu(), &x, &lstm.zero_state(b)).unwrap();
        prop_assert!(hh.all_finite() && cc.all_finite());
        prop_assert!(hh.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn attention_output_is_convex_ish_in_values(
        (m, n, seed) in (1usize..5, 1usize..8, any::<u64>())
    ) {
        // With all values equal to a constant row v, attention output is
        // Wo·(Wv·v) for every query regardless of scores.
        let d = 8usize;
        let mut rng = TensorRng::seed(seed);
        let attn = MultiHeadAttention::new(d, 2, &mut rng);
        let q = TensorRng::seed(seed ^ 6).init(&[m, d], Initializer::Normal(1.0));
        let k = TensorRng::seed(seed ^ 7).init(&[n, d], Initializer::Normal(1.0));
        let row = TensorRng::seed(seed ^ 8).init(&[1, d], Initializer::Normal(1.0));
        let mut v = Tensor::zeros(&[n, d]);
        for r in 0..n {
            v = v.scatter_rows(&[r], &row).unwrap();
        }
        let out = attn.forward(&mut cpu(), &q, &k, &v).unwrap();
        for r in 1..m {
            out.row(0).unwrap().assert_close(&out.row(r).unwrap(), 1e-4);
        }
    }

    #[test]
    fn gcn_respects_graph_locality((n, seed) in (2usize..10, any::<u64>())) {
        // With identity adjacency (no edges, self-loops only), output row
        // i depends only on input row i.
        let d = 4usize;
        let mut rng = TensorRng::seed(seed);
        let layer = GcnLayer::new(d, d, &mut rng);
        let adj = Tensor::eye(n);
        let x1 = TensorRng::seed(seed ^ 9).init(&[n, d], Initializer::Normal(1.0));
        let mut x2 = x1.clone();
        // Perturb only the last row.
        let noise = TensorRng::seed(seed ^ 10).init(&[1, d], Initializer::Normal(1.0));
        x2 = x2.scatter_rows(&[n - 1], &noise).unwrap();
        let y1 = layer.forward(&mut cpu(), &adj, &x1).unwrap();
        let y2 = layer.forward(&mut cpu(), &adj, &x2).unwrap();
        for r in 0..n - 1 {
            y1.row(r).unwrap().assert_close(&y2.row(r).unwrap(), 1e-5);
        }
    }

    #[test]
    fn time_encoders_are_deterministic_and_bounded(
        (n, d, seed) in (1usize..20, 1usize..16, any::<u64>())
    ) {
        let mut rng = TensorRng::seed(seed);
        let bochner = BochnerTimeEncoder::new(d, &mut rng);
        let t2v = Time2Vec::new(d, &mut rng);
        let ts = TensorRng::seed(seed ^ 11).init(&[n], Initializer::Uniform(100.0));
        let e1 = bochner.forward(&mut cpu(), &ts).unwrap();
        let e2 = bochner.forward(&mut cpu(), &ts).unwrap();
        prop_assert_eq!(&e1, &e2);
        let bound = (1.0 / d as f32).sqrt() + 1e-5;
        prop_assert!(e1.as_slice().iter().all(|v| v.abs() <= bound));
        prop_assert!(t2v.forward(&mut cpu(), &ts).unwrap().all_finite());
    }

    #[test]
    fn layernorm_is_shift_invariant((m, seed) in (1usize..8, any::<u64>())) {
        let d = 8usize;
        let mut rng = TensorRng::seed(seed);
        let ln = LayerNorm::new(d, &mut rng);
        let x = TensorRng::seed(seed ^ 12).init(&[m, d], Initializer::Normal(2.0));
        let shifted = x.add_scalar(5.0);
        let y1 = ln.forward(&mut cpu(), &x).unwrap();
        let y2 = ln.forward(&mut cpu(), &shifted).unwrap();
        y1.assert_close(&y2, 1e-3);
    }

    #[test]
    fn param_counts_are_consistent((i, h, seed) in (1usize..16, 1usize..16, any::<u64>())) {
        let mut rng = TensorRng::seed(seed);
        let mlp = Mlp::new(&[i, h, 1], &mut rng);
        let total: u64 = mlp.parameters().iter().map(|p| p.value.byte_len()).sum();
        prop_assert_eq!(mlp.param_bytes(), total);
        prop_assert_eq!(mlp.param_tensor_count(), 4);
    }

    #[test]
    fn every_forward_advances_the_clock((m, seed) in (1usize..6, any::<u64>())) {
        let d = 8usize;
        let mut rng = TensorRng::seed(seed);
        let layer = Linear::new(d, d, &mut rng);
        let attn = MultiHeadAttention::new(d, 2, &mut rng);
        let x = Tensor::ones(&[m, d]);
        let mut ex = cpu();
        let t0 = ex.now();
        layer.forward(&mut ex, &x).unwrap();
        let t1 = ex.now();
        attn.forward(&mut ex, &x, &x, &x).unwrap();
        let t2 = ex.now();
        prop_assert!(t0 < t1 && t1 < t2);
    }
}
