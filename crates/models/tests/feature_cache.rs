//! Property tests for the device-resident feature cache: the cache is a
//! *pricing* optimization only. Model numerics (checksums), iteration
//! counts and every byte of functional state must be identical with the
//! cache on or off; only the priced timeline (simulated time, transfer
//! bytes) may differ. Hit/miss counts must be bit-deterministic — the
//! cache keys come from seeded samplers and ordered batch walks, never
//! from map iteration order, so two identical runs agree exactly
//! regardless of thread count (CI runs this suite under both
//! `RAYON_NUM_THREADS=1` and the default).

use dgnn_datasets::{iso17, wikipedia, Scale};
use dgnn_device::{CacheStats, ExecMode, Executor, PlatformSpec, TransferMode};
use dgnn_models::{
    DgnnModel, InferenceConfig, MolDgnn, MolDgnnConfig, RunSummary, Tgat, TgatConfig, Tgn,
    TgnConfig,
};

const SEED: u64 = 11;

fn models() -> Vec<(&'static str, Box<dyn DgnnModel>, InferenceConfig)> {
    vec![
        (
            "tgat",
            Box::new(Tgat::new(
                wikipedia(Scale::Tiny, SEED),
                TgatConfig::default(),
                SEED,
            )),
            InferenceConfig::default()
                .with_batch_size(100)
                .with_max_units(3),
        ),
        (
            "tgn",
            Box::new(Tgn::new(
                wikipedia(Scale::Tiny, SEED),
                TgnConfig::default(),
                SEED,
            )),
            InferenceConfig::default()
                .with_batch_size(100)
                .with_neighbors(10)
                .with_max_units(3),
        ),
        (
            "moldgnn",
            Box::new(MolDgnn::new(
                iso17(Scale::Tiny, SEED),
                MolDgnnConfig::default(),
                SEED,
            )),
            InferenceConfig::default()
                .with_batch_size(32)
                .with_max_units(2),
        ),
    ]
}

fn run(model: &mut dyn DgnnModel, cfg: &InferenceConfig) -> (RunSummary, Executor) {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let summary = model.run(&mut ex, cfg).expect("model runs");
    (summary, ex)
}

#[test]
fn cache_on_and_off_produce_byte_identical_numerics() {
    for (name, _, cfg) in models() {
        let (mut off_m, mut on_m) = rebuild_pair(name);
        let (off, _off_ex) = run(off_m.as_mut(), &cfg);
        let (on, on_ex) = run(on_m.as_mut(), &cfg.clone().with_feature_cache(4096));
        // Functional outputs are bit-identical: the cache only reroutes
        // pricing, never values.
        assert_eq!(
            off.checksum.to_bits(),
            on.checksum.to_bits(),
            "{name}: cache changed model numerics"
        );
        assert_eq!(off.iterations, on.iterations, "{name}");
        // The cache actually engaged (otherwise this test is vacuous).
        let stats = on_ex.cache_stats();
        assert!(stats.lookups() > 0, "{name}: cache never probed");
    }
}

#[test]
fn cache_reduces_priced_transfer_bytes_on_recurrent_workloads() {
    for (name, _, cfg) in models() {
        let (mut off_m, mut on_m) = rebuild_pair(name);
        let (_, off_ex) = run(off_m.as_mut(), &cfg);
        let (_, on_ex) = run(on_m.as_mut(), &cfg.clone().with_feature_cache(1 << 20));
        let off_bytes = off_ex.timeline().transfer_bytes(None);
        let on_bytes = on_ex.timeline().transfer_bytes(None);
        assert!(
            on_bytes < off_bytes,
            "{name}: cache should shed transfer bytes ({on_bytes} !< {off_bytes})"
        );
        assert!(
            on_ex.now() < off_ex.now(),
            "{name}: cache should shorten the simulated run"
        );
    }
}

#[test]
fn hit_and_miss_counts_are_bit_deterministic() {
    for (name, _, cfg) in models() {
        let cached = cfg.clone().with_feature_cache(2048);
        let stats_of = |m: &mut dyn DgnnModel| -> CacheStats {
            let (_, ex) = run(m, &cached);
            ex.cache_stats()
        };
        let (mut a, mut b) = rebuild_pair(name);
        let sa = stats_of(a.as_mut());
        let sb = stats_of(b.as_mut());
        assert_eq!(sa, sb, "{name}: cache stats must be deterministic");
        assert!(sa.misses > 0, "{name}: a cold cache must miss");
    }
}

#[test]
fn transfer_mode_is_a_pure_pricing_knob() {
    for (name, _, cfg) in models() {
        let (mut pinned_m, mut pageable_m) = rebuild_pair(name);
        let (pinned, pinned_ex) = run(pinned_m.as_mut(), &cfg);
        let (pageable, pageable_ex) = run(
            pageable_m.as_mut(),
            &cfg.clone().with_transfer_mode(TransferMode::Pageable),
        );
        assert_eq!(
            pinned.checksum.to_bits(),
            pageable.checksum.to_bits(),
            "{name}: transfer mode changed numerics"
        );
        // Same bytes cross; pageable just pays more per transfer.
        assert_eq!(
            pinned_ex.timeline().transfer_bytes(None),
            pageable_ex.timeline().transfer_bytes(None),
            "{name}"
        );
        assert!(
            pageable_ex.now() > pinned_ex.now(),
            "{name}: pageable transfers must cost more"
        );
    }
}

/// Two fresh, identically seeded instances of one model.
fn rebuild_pair(name: &str) -> (Box<dyn DgnnModel>, Box<dyn DgnnModel>) {
    let build = || -> Box<dyn DgnnModel> {
        match name {
            "tgat" => Box::new(Tgat::new(
                wikipedia(Scale::Tiny, SEED),
                TgatConfig::default(),
                SEED,
            )),
            "tgn" => Box::new(Tgn::new(
                wikipedia(Scale::Tiny, SEED),
                TgnConfig::default(),
                SEED,
            )),
            "moldgnn" => Box::new(MolDgnn::new(
                iso17(Scale::Tiny, SEED),
                MolDgnnConfig::default(),
                SEED,
            )),
            other => panic!("unknown model {other}"),
        }
    };
    (build(), build())
}
