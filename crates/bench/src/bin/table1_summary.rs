//! Regenerates Table 1: the taxonomy of the eight profiled DGNNs.

use dgnn_models::all_model_infos;
use dgnn_profile::TextTable;

fn main() {
    let mut t = TextTable::new(
        "Table 1 — Summary of the DGNNs profiled in this work",
        &[
            "DGNN",
            "type",
            "node feat",
            "edge feat",
            "topology",
            "weights",
            "time encoding",
            "tasks",
        ],
    );
    let check = |b: bool| if b { "yes" } else { "" }.to_string();
    for info in all_model_infos() {
        t.row(&[
            info.name.to_string(),
            info.kind.to_string(),
            check(info.evolving.node_features),
            check(info.evolving.edge_features),
            check(info.evolving.topology),
            check(info.evolving.weights),
            info.time_encoding.to_string(),
            info.tasks.to_string(),
        ]);
    }
    print!("{}", t.render());
}
