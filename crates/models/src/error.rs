use std::fmt;

use dgnn_graph::GraphError;
use dgnn_tensor::TensorError;

/// Error surfaced by model construction or inference.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A tensor operation failed (shape mismatch, bad index, …).
    Tensor(TensorError),
    /// A graph operation failed (bad node id, unsorted events, …).
    Graph(GraphError),
    /// The configuration is invalid for this model.
    InvalidConfig {
        /// Which model rejected it.
        model: &'static str,
        /// Why.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::Graph(e) => write!(f, "graph error: {e}"),
            ModelError::InvalidConfig { model, reason } => {
                write!(f, "invalid configuration for {model}: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            ModelError::Graph(e) => Some(e),
            ModelError::InvalidConfig { .. } => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<GraphError> for ModelError {
    fn from(e: GraphError) -> Self {
        ModelError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_sources() {
        let t: ModelError = TensorError::EmptyInput { op: "mean" }.into();
        assert!(matches!(t, ModelError::Tensor(_)));
        assert!(std::error::Error::source(&t).is_some());
        let g: ModelError = GraphError::EmptyInput { op: "x" }.into();
        assert!(g.to_string().contains("graph error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
