//! Domain scenario: molecular-dynamics surrogate modeling with MolDGNN
//! on ISO17-style trajectories.
//!
//! Demonstrates the data-movement bottleneck of Fig 7(b): the dense
//! per-frame adjacency matrices dominate the GPU's working time, and the
//! §5.2.2 delta-transfer idea (bond graphs barely change between frames)
//! recovers most of it. Prints the memcpy share and the transfer volume
//! a delta encoding would save, computed from the real generated
//! trajectories' frame-to-frame similarity.
//!
//! Run with: `cargo run --example molecular_moldgnn`

use std::collections::HashSet;

use dgnn_suite::datasets::{iso17, Scale};
use dgnn_suite::device::{ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{DgnnModel, InferenceConfig, MolDgnn, MolDgnnConfig};
use dgnn_suite::profile::{pipeline::delta_transfer_bytes, InferenceProfile};

fn main() {
    let data = iso17(Scale::Tiny, 11);
    println!(
        "trajectories: {} molecules x {} frames, {} atoms each",
        data.n_molecules(),
        data.frames_per_molecule(),
        data.n_atoms
    );

    // Measure real frame-to-frame bond-graph similarity.
    let mol = &data.molecules[0];
    let mut similarities = Vec::new();
    let edge_set = |g: &dgnn_suite::graph::Graph| -> HashSet<(usize, usize)> {
        g.iter_edges().map(|(s, d, _)| (s, d)).collect()
    };
    for pair in mol.snapshots().windows(2) {
        let a = edge_set(&pair[0].graph);
        let b = edge_set(&pair[1].graph);
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        similarities.push(inter / union.max(1.0));
    }
    let similarity = similarities.iter().sum::<f64>() / similarities.len().max(1) as f64;
    println!("mean frame-to-frame bond-graph Jaccard similarity: {similarity:.3}");

    // Profile a batch of molecules on the simulated GPU.
    let mut model = MolDgnn::new(data, MolDgnnConfig::default(), 11);
    let mut ex = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
    let cfg = InferenceConfig::default()
        .with_batch_size(512)
        .with_max_units(1);
    model.run(&mut ex, &cfg).expect("inference succeeds");
    let p = InferenceProfile::capture(&ex, "inference");
    let memcpy = p.breakdown.share_of("memcpy_h2d") + p.breakdown.share_of("memcpy_d2h");
    println!(
        "inference {} — memcpy is {:.0}% of the profiled modules; {:.1} MiB crossed PCIe",
        p.inference_time,
        memcpy * 100.0,
        p.pcie_bytes as f64 / (1024.0 * 1024.0)
    );

    // What would delta transfer save, given the measured similarity?
    let sizes: Vec<u64> = ex
        .timeline()
        .events()
        .iter()
        .filter(|e| matches!(e.category, dgnn_suite::device::EventCategory::Transfer(_)))
        .map(|e| e.bytes)
        .collect();
    let full: u64 = sizes.iter().sum();
    let delta = delta_transfer_bytes(&sizes, similarity);
    println!(
        "delta snapshot transfer at similarity {:.2}: {:.1} MiB -> {:.1} MiB ({:.0}% saved)",
        similarity,
        full as f64 / (1024.0 * 1024.0),
        delta as f64 / (1024.0 * 1024.0),
        (1.0 - delta as f64 / full.max(1) as f64) * 100.0
    );
}
