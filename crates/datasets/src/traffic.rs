//! PeMS-style traffic sensor dataset for ASTGNN.

use dgnn_graph::Graph;
use dgnn_tensor::{Tensor, TensorRng};

use crate::scale::Scale;
use crate::types::TimeSeriesDataset;

/// Caltrans PeMS-style dataset: a road-sensor graph (random geometric on
/// a corridor) carrying a `[T, sensors, 3]` signal of flow, occupancy and
/// speed with daily periodicity plus noise. Matches PeMS04's published
/// shape (307 sensors, 5-minute slots, 3 channels).
pub fn pems(scale: Scale, seed: u64) -> TimeSeriesDataset {
    let n_sensors = scale.apply(307, 30);
    let n_steps = scale.apply(16_992, 128);
    let n_channels = 3usize;

    let mut rng = TensorRng::seed(seed);

    // Sensors along a corridor: connect each to 2-4 nearest neighbors.
    let positions: Vec<f64> = {
        let mut p: Vec<f64> = (0..n_sensors)
            .map(|_| rng.uniform_f64(0.0, 100.0))
            .collect();
        p.sort_by(f64::total_cmp);
        p
    };
    let mut edges = Vec::new();
    for i in 0..n_sensors {
        let reach = 1 + rng.index(3);
        for j in 1..=reach {
            if i + j < n_sensors && positions[i + j] - positions[i] < 5.0 {
                edges.push((i, i + j));
                edges.push((i + j, i));
            }
        }
    }
    // Guarantee connectivity along the corridor.
    for i in 0..n_sensors.saturating_sub(1) {
        edges.push((i, i + 1));
        edges.push((i + 1, i));
    }
    let sensor_graph = Graph::from_edges(n_sensors, &edges).expect("indices in range");

    // Daily-periodic signal: 288 five-minute slots per day.
    let day = 288.0f64;
    let mut data = Vec::with_capacity(n_steps * n_sensors * n_channels);
    let base: Vec<f64> = (0..n_sensors).map(|_| rng.uniform_f64(0.3, 1.0)).collect();
    for t in 0..n_steps {
        let phase = 2.0 * std::f64::consts::PI * (t as f64 % day) / day;
        let rush = (phase - 1.0).sin().max(0.0) + 0.6 * (phase - 4.0).sin().max(0.0);
        for b in &base {
            let flow = b * (0.3 + rush) + rng.uniform_f64(-0.05, 0.05);
            let occupancy = (flow * 0.6 + rng.uniform_f64(-0.02, 0.02)).clamp(0.0, 1.0);
            let speed = (1.2 - occupancy + rng.uniform_f64(-0.05, 0.05)).clamp(0.1, 1.5);
            #[expect(
                clippy::cast_possible_truncation,
                reason = "f32 sensor channels suffice"
            )]
            {
                data.push(flow as f32);
                data.push(occupancy as f32);
                data.push(speed as f32);
            }
        }
    }
    let signal = Tensor::from_vec(data, &[n_steps, n_sensors, n_channels])
        .expect("signal length matches shape");

    TimeSeriesDataset {
        name: "pems",
        sensor_graph,
        signal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pems_shape_is_consistent() {
        let d = pems(Scale::Tiny, 1);
        assert_eq!(d.name, "pems");
        assert_eq!(d.n_channels(), 3);
        assert_eq!(d.signal.len(), d.n_steps() * d.n_sensors() * 3);
        assert!(d.sensor_graph.n_edges() > 0);
        assert_eq!(d.sensor_graph.n_nodes(), d.n_sensors());
    }

    #[test]
    fn corridor_is_connected() {
        let d = pems(Scale::Tiny, 2);
        for i in 0..d.n_sensors() - 1 {
            assert!(
                d.sensor_graph.neighbors(i).contains(&(i + 1)),
                "sensor {i} must link forward"
            );
        }
    }

    #[test]
    fn signal_values_are_bounded_and_finite() {
        let d = pems(Scale::Tiny, 3);
        assert!(d.signal.all_finite());
        assert!(d
            .signal
            .as_slice()
            .iter()
            .all(|&v| (-1.0..=3.0).contains(&v)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(pems(Scale::Tiny, 4).signal, pems(Scale::Tiny, 4).signal);
    }

    #[test]
    fn signal_shows_daily_variation() {
        let d = pems(Scale::Tiny, 5);
        // Flow channel of sensor 0 must not be constant.
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for t in 0..d.n_steps() {
            let v = d.signal.at(&[t, 0, 0]).unwrap();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(hi - lo > 0.1, "flow range {lo}..{hi} too flat");
    }
}
