//! Topology-aware multi-GPU shard sweep.
//!
//! The paper profiles single-device inference; this binary measures what
//! the same analytical platform predicts for sharded execution across a
//! device graph. Each model splits its batch across `s` GPUs — TGN/TGAT
//! by contiguous source-node range, MolDGNN by molecule block, with
//! cross-shard feature and memory rows priced as peer transfers
//! (`InferenceConfig::shards`) — under two interconnects:
//!
//! * **nvlink**: a fully connected NVLink clique; remote rows move over
//!   direct peer links.
//! * **pcie**: no peer links; every cross-device row bounces through
//!   host memory, paying PCIe twice.
//!
//! Shard counts 1/2/4/8 are swept per model × topology. The `shards=1`
//! cell runs the untouched single-device driver and is asserted
//! bit-identical to a plain single-GPU run — idle extra devices and
//! peer links must change nothing.
//!
//! Every measurement is emitted as a machine-readable `BENCH {json}`
//! line; the committed `BENCH_multigpu.json` baseline at the repo root
//! is the array of these records.
//!
//! Usage: `multi_gpu [--scale tiny|small|full] [--seed N] [--smoke]`
//!
//! `--smoke` shrinks the sweep to tiny configurations and adds a
//! shards=4 determinism replay plus a RULE1–RULE8 sanitizer audit of a
//! traced sharded run, so CI exercises the cross-device path in seconds.

use dgnn_bench::{build_model, parse_opts};
use dgnn_datasets::Scale;
use dgnn_device::{ExecMode, Executor, PlatformSpec};
use dgnn_models::InferenceConfig;
use dgnn_profile::{InferenceProfile, TextTable};

/// One measured cell. Times cover the inference window only — context
/// and model warm-up are identical across shard counts and would drown
/// the sharding signal in a constant.
struct Cell {
    inference_ns: u64,
    checksum_bits: u32,
    peer_bytes: u64,
    platform_busy: f64,
    per_device_busy: Vec<f64>,
}

fn platform(topology: &str, n: usize) -> PlatformSpec {
    match topology {
        "nvlink" => PlatformSpec::multi_gpu_nvlink(n),
        "pcie" => PlatformSpec::multi_gpu_pcie(n),
        other => panic!("unknown topology `{other}`"),
    }
}

fn run_cell(
    name: &str,
    scale: Scale,
    seed: u64,
    cfg: &InferenceConfig,
    spec: PlatformSpec,
) -> Cell {
    let mut model = build_model(name, scale, seed);
    let mut ex = Executor::new(spec, ExecMode::Gpu);
    let summary = model
        .run(&mut ex, cfg)
        .unwrap_or_else(|e| panic!("{name} inference failed: {e}"));
    let profile = InferenceProfile::capture(&ex, "inference");
    Cell {
        inference_ns: profile.inference_time.as_nanos(),
        checksum_bits: summary.checksum.to_bits(),
        peer_bytes: ex.timeline().peer_bytes(),
        platform_busy: profile.utilization.platform_busy_fraction,
        per_device_busy: profile.utilization.per_device,
    }
}

fn main() {
    let opts = parse_opts();
    let smoke = opts.rest.iter().any(|a| a == "--smoke");
    // Shard scaling is batch-structure-sensitive, not event-count-
    // sensitive; cap at Small to keep host-side sampling wall-clock sane.
    let scale = if smoke {
        Scale::Tiny
    } else {
        match opts.scale {
            Scale::Full => Scale::Small,
            s => s,
        }
    };

    let units = if smoke { 2 } else { 4 };
    let cases: Vec<(&str, InferenceConfig)> = vec![
        (
            "tgn",
            InferenceConfig::default()
                .with_batch_size(if smoke { 128 } else { 512 })
                .with_neighbors(10)
                .with_max_units(units),
        ),
        (
            "tgat",
            InferenceConfig::default()
                .with_batch_size(if smoke { 100 } else { 200 })
                .with_neighbors(20)
                .with_max_units(units),
        ),
        (
            "moldgnn",
            InferenceConfig::default()
                .with_batch_size(if smoke { 16 } else { 128 })
                .with_max_units(if smoke { 2 } else { 3 }),
        ),
    ];
    let shard_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut table = TextTable::new(
        &format!("Multi-GPU shard sweep — end-to-end simulated inference time ({scale:?})"),
        &[
            "model",
            "topology",
            "shards",
            "base ms",
            "sharded ms",
            "speedup",
            "peer MB",
            "platform busy",
        ],
    );
    let mut best_nvlink4 = 0.0f64;

    for (name, cfg) in &cases {
        // Bit-identity anchor: the default single-GPU platform.
        let single = run_cell(name, scale, opts.seed, cfg, PlatformSpec::default());
        for topology in ["nvlink", "pcie"] {
            let mut base_ns = 0u64;
            for &shards in shard_counts {
                let cell = run_cell(
                    name,
                    scale,
                    opts.seed,
                    &cfg.clone().with_shards(shards),
                    platform(topology, shards.max(2)),
                );
                if shards == 1 {
                    // Idle extra GPUs and peer links must be invisible.
                    assert_eq!(
                        cell.inference_ns, single.inference_ns,
                        "{name}/{topology}: shards=1 must match the single-GPU clock"
                    );
                    assert_eq!(
                        cell.checksum_bits, single.checksum_bits,
                        "{name}/{topology}: shards=1 must match single-GPU numerics"
                    );
                    assert_eq!(cell.peer_bytes, 0);
                    base_ns = cell.inference_ns;
                }
                let speedup = base_ns as f64 / cell.inference_ns as f64;
                if topology == "nvlink" && shards == 4 {
                    best_nvlink4 = best_nvlink4.max(speedup);
                }
                table.row(&[
                    (*name).to_string(),
                    topology.to_string(),
                    format!("{shards}"),
                    format!("{:.3}", base_ns as f64 / 1e6),
                    format!("{:.3}", cell.inference_ns as f64 / 1e6),
                    format!("{speedup:.2}x"),
                    format!("{:.2}", cell.peer_bytes as f64 / 1e6),
                    format!("{:.1}%", cell.platform_busy * 100.0),
                ]);
                let busy = cell
                    .per_device_busy
                    .iter()
                    .map(|f| format!("{f:.4}"))
                    .collect::<Vec<_>>()
                    .join(",");
                println!(
                    "BENCH {{\"bench\":\"multi_gpu\",\"model\":\"{name}\",\
                     \"topology\":\"{topology}\",\"shards\":{shards},\"base_ns\":{base_ns},\
                     \"sharded_ns\":{},\"speedup\":{speedup:.4},\"peer_bytes\":{},\
                     \"platform_busy\":{:.4},\"per_device_busy\":[{busy}]}}",
                    cell.inference_ns, cell.peer_bytes, cell.platform_busy,
                );
            }
        }
    }
    print!("{}", table.render());

    if smoke {
        // Determinism replay: a sharded cell twice, bit for bit.
        let (name, cfg) = &cases[0];
        let sharded = cfg.clone().with_shards(4);
        let a = run_cell(name, scale, opts.seed, &sharded, platform("nvlink", 4));
        let b = run_cell(name, scale, opts.seed, &sharded, platform("nvlink", 4));
        assert_eq!(
            a.inference_ns, b.inference_ns,
            "sharded replay must be exact"
        );
        assert_eq!(a.checksum_bits, b.checksum_bits);
        assert_eq!(a.peer_bytes, b.peer_bytes, "peer traffic must replay");

        // Sanitizer audit of a traced sharded run: every RULE including
        // the RULE8 peer-transfer conservation check must come back
        // clean on both topologies.
        for topology in ["nvlink", "pcie"] {
            let mut model = build_model(name, scale, opts.seed);
            let mut ex = Executor::new(platform(topology, 4), ExecMode::Gpu);
            ex.enable_tracing();
            model
                .run(&mut ex, &sharded)
                .unwrap_or_else(|e| panic!("{name} traced sharded run failed: {e}"));
            let report = dgnn_analysis::audit(&ex);
            assert!(
                report.is_clean(),
                "sharded {topology} run has hazards: {report}"
            );
        }
        println!("smoke OK: sharded replay exact, sanitizer clean on both topologies ({name})");
    } else {
        assert!(
            best_nvlink4 >= 1.5,
            "expected >= 1.5x end-to-end reduction at 4 NVLink shards on at least one model, \
             best {best_nvlink4:.2}x"
        );
    }
}
