//! LINT1 clean twin: ordered iteration, point lookups, and one
//! escape hatch with a rationale.
use std::collections::{BTreeMap, HashMap};

pub fn drain_pending(pending: &BTreeMap<u64, u64>, cache: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    // BTreeMap iterates in key order: deterministic, legal.
    for (_k, v) in pending.iter() {
        total += *v;
    }
    // Point lookup into a hash map is order-free, legal.
    total += cache.get(&7).copied().unwrap_or(0);
    // lint: allow(hash-iteration) — keys are drained into a sort directly below
    let mut keys: Vec<u64> = cache.keys().copied().collect();
    keys.sort_unstable();
    total + keys.first().copied().unwrap_or(0)
}
