//! Conversions between dataset representations.

use dgnn_graph::snapshots_from_events;

use crate::types::{SnapshotDataset, TemporalDataset};

/// Views a continuous-time interaction dataset as a discrete snapshot
/// sequence of `n_windows` equal time windows — how the paper feeds the
/// JODIE-format Wikipedia/Reddit data to EvolveGCN (Fig 7i/j).
///
/// # Panics
///
/// Panics when `n_windows == 0` or the stream is empty.
pub fn as_snapshots(data: &TemporalDataset, n_windows: usize) -> SnapshotDataset {
    assert!(n_windows > 0, "need at least one window");
    let span = data.stream.end_time().max(f64::MIN_POSITIVE);
    let window = span / n_windows as f64;
    let snapshots = snapshots_from_events(&data.stream, window, window)
        .expect("non-empty stream with positive window");
    SnapshotDataset {
        name: data.name,
        snapshots,
        node_features: data.node_features.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reddit, wikipedia, Scale};

    #[test]
    fn windows_cover_all_events() {
        let d = wikipedia(Scale::Tiny, 1);
        let s = as_snapshots(&d, 10);
        let total: usize = s.snapshots.iter().map(|x| x.graph.n_edges()).sum();
        assert_eq!(total, d.stream.len());
        assert!(s.snapshots.len() >= 10);
    }

    #[test]
    fn reddit_snapshots_denser_than_wikipedia() {
        let w = as_snapshots(&wikipedia(Scale::Tiny, 1), 12);
        let r = as_snapshots(&reddit(Scale::Tiny, 1), 12);
        assert!(
            r.snapshots.mean_edges() > w.snapshots.mean_edges(),
            "reddit {} vs wikipedia {}",
            r.snapshots.mean_edges(),
            w.snapshots.mean_edges()
        );
    }

    #[test]
    fn keeps_node_features() {
        let d = wikipedia(Scale::Tiny, 2);
        let s = as_snapshots(&d, 5);
        assert_eq!(s.node_features, d.node_features);
        assert_eq!(s.name, "wikipedia");
    }
}
