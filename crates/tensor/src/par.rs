//! Minimal deterministic fan-out over OS threads.
//!
//! The workspace builds offline with no external crates, so this module
//! stands in for rayon's `par_iter().map().collect()`: it splits a slice
//! into contiguous chunks, maps each chunk on a scoped thread, and
//! re-concatenates the per-chunk results **in chunk order**, so the
//! output is always identical to `items.iter().map(f).collect()`
//! regardless of thread count or scheduling.
//!
//! Thread count comes from `RAYON_NUM_THREADS` when set (the same knob
//! rayon honors, which is what CI uses to pin the suite to one thread),
//! falling back to [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;

/// Fewest items worth shipping to a worker thread; below this the spawn
/// overhead dwarfs the work and the map runs inline.
const MIN_CHUNK: usize = 8;

/// Worker threads the process should use: `RAYON_NUM_THREADS` when set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn max_threads() -> usize {
    // lint: allow(nondeterminism-source) — thread count shapes pacing only; par_map output is chunk-ordered and identical at any width
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` using up to [`max_threads`] worker threads.
///
/// Output order (and therefore content) is identical to the serial
/// `items.iter().map(f).collect()`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, max_threads(), f)
}

/// [`par_map`] with an explicit thread cap — lets tests assert that any
/// thread count reproduces the serial result without touching the
/// process environment.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().div_ceil(MIN_CHUNK));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

/// [`par_map_threads`] for *coarse* items — each item is assumed to be a
/// substantial unit of work (a row block, a whole subgraph), so the
/// minimum-chunk heuristic is skipped: up to `threads` workers take one
/// contiguous run of items each, and results are concatenated in item
/// order, identical to the serial map.
pub fn par_map_coarse<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map_coarse worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_map_matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 5, 37, 64] {
            assert_eq!(
                par_map_coarse(&items, threads, |x| x * 3 + 1),
                serial,
                "threads={threads}"
            );
        }
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_coarse(&empty, 4, |x| *x).is_empty());
    }

    #[test]
    fn matches_serial_map_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 7, 16, 64] {
            let par = par_map_threads(&items, threads, |x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map_threads(&[41u32], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
