//! Element-wise binary/unary arithmetic (the element-wise kernel family).

use crate::cost::OpDescriptor;
use crate::{Result, Tensor, TensorError};

/// Descriptor of a two-input element-wise op over `len` elements
/// ([`Tensor::add`], [`Tensor::sub`], [`Tensor::mul`]).
pub fn binary_desc(len: usize) -> OpDescriptor {
    OpDescriptor::elementwise("binary", len, 1, 2)
}

/// Descriptor of a one-input element-wise op with `ops_per_elem`
/// arithmetic ops each ([`Tensor::add_scalar`], [`Tensor::scale`],
/// [`Tensor::map`] with a known cost).
pub fn unary_desc(len: usize, ops_per_elem: u64) -> OpDescriptor {
    OpDescriptor::elementwise("unary", len, ops_per_elem, 1)
}

/// Descriptor of [`Tensor::add_row_broadcast`] over an `[m, n]` tensor.
pub fn add_row_broadcast_desc(m: usize, n: usize) -> OpDescriptor {
    OpDescriptor::elementwise("add_row_broadcast", m * n, 1, 2)
}

/// Descriptor of [`Tensor::lerp_gate`] over `len` elements
/// (three inputs, `a·(1−t) + b·t` ≈ 3 ops each).
pub fn lerp_gate_desc(len: usize) -> OpDescriptor {
    OpDescriptor::elementwise("lerp_gate", len, 3, 3)
}

impl Tensor {
    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        self.shape().check_same(rhs.shape(), op)?;
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Element-wise sum of two equally shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.as_slice().iter().map(|&v| f(v)).collect(), self.dims())
            .expect("map preserves element count")
    }

    /// Adds a rank-1 `bias` of length `n` to every row of a `[m, n]` tensor.
    ///
    /// This is the broadcast used after every linear layer.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `self` is not rank 2 or the bias length
    /// differs from the row width.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_row_broadcast",
                expected: 2,
                actual: self.rank(),
            });
        }
        if bias.rank() != 1 || bias.len() != self.dims()[1] {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.dims().to_vec(),
                rhs: bias.dims().to_vec(),
            });
        }
        let n = self.dims()[1];
        let data = self
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &v)| v + bias.as_slice()[i % n])
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`, element-wise with a
    /// per-element gate tensor `t` (the GRU update-gate blend).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when any shape differs.
    pub fn lerp_gate(&self, rhs: &Tensor, gate: &Tensor) -> Result<Tensor> {
        self.shape().check_same(rhs.shape(), "lerp_gate")?;
        self.shape().check_same(gate.shape(), "lerp_gate")?;
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .zip(gate.as_slice())
            .map(|((&a, &b), &t)| a * (1.0 - t) + b * t)
            .collect();
        Tensor::from_vec(data, self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_mul_known_values() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn binary_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, -1.0]);
        assert_eq!(a.scale(-2.0).as_slice(), &[-2.0, 4.0]);
    }

    #[test]
    fn row_broadcast_adds_bias_to_each_row() {
        let x = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        let b = t(&[1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(x.add_row_broadcast(&t(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn lerp_gate_blends() {
        let a = t(&[0.0, 0.0]);
        let b = t(&[10.0, 10.0]);
        let g = t(&[0.25, 1.0]);
        assert_eq!(a.lerp_gate(&b, &g).unwrap().as_slice(), &[2.5, 10.0]);
    }
}
