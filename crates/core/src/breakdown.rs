//! Per-module execution-time breakdowns — the Figure 7 panels.

use dgnn_device::{DurationNs, ScopeRecord};

use crate::tablefmt::TextTable;

/// One module's share of an inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownEntry {
    /// Module name (the scope's final path component).
    pub module: String,
    /// Accumulated time across all occurrences.
    pub time: DurationNs,
    /// Share of the root scope's total time, in `[0, 1]`.
    pub share: f64,
    /// Number of scope occurrences aggregated (≈ iterations).
    pub count: usize,
}

/// A per-module breakdown of a run, aggregated by module name across
/// iterations, sorted by descending time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Breakdown {
    entries: Vec<BreakdownEntry>,
    total: DurationNs,
}

impl Breakdown {
    /// Aggregates module scopes under `root`.
    ///
    /// A *module scope* is any scope whose relative path under `root` is a
    /// single segment, or two segments where the first is `"iteration"`.
    /// The remainder of the root's time not covered by any module is
    /// reported as `"other"`.
    pub fn from_scopes(scopes: &[ScopeRecord], root: &str) -> Self {
        let total: DurationNs = scopes
            .iter()
            .filter(|s| s.path == root)
            .map(ScopeRecord::duration)
            .sum();

        let prefix = format!("{root}/");
        let mut acc: Vec<(String, DurationNs, usize)> = Vec::new();
        for s in scopes {
            let Some(rel) = s.path.strip_prefix(&prefix) else {
                continue;
            };
            let segments: Vec<&str> = rel.split('/').collect();
            let module = match segments.as_slice() {
                [name] if *name != "iteration" => *name,
                ["iteration", name] => *name,
                _ => continue,
            };
            match acc.iter_mut().find(|(m, _, _)| m == module) {
                Some((_, t, c)) => {
                    *t += s.duration();
                    *c += 1;
                }
                None => acc.push((module.to_string(), s.duration(), 1)),
            }
        }

        let covered: DurationNs = acc.iter().map(|(_, t, _)| *t).sum();
        if total > covered {
            let other = total - covered;
            // Only report an "other" slice when it is non-trivial (>0.5%).
            if other.as_nanos() * 200 > total.as_nanos() {
                acc.push(("other".to_string(), other, 1));
            }
        }

        acc.sort_by_key(|e| std::cmp::Reverse(e.1));
        let entries = acc
            .into_iter()
            .map(|(module, time, count)| BreakdownEntry {
                module,
                share: if total.as_nanos() > 0 {
                    time.as_nanos() as f64 / total.as_nanos() as f64
                } else {
                    0.0
                },
                time,
                count,
            })
            .collect();
        Breakdown { entries, total }
    }

    /// The aggregated entries, largest first.
    pub fn entries(&self) -> &[BreakdownEntry] {
        &self.entries
    }

    /// Total time of the root scope.
    pub fn total(&self) -> DurationNs {
        self.total
    }

    /// Looks up one module's entry by name.
    pub fn module(&self, name: &str) -> Option<&BreakdownEntry> {
        self.entries.iter().find(|e| e.module == name)
    }

    /// Share of a module (0 when absent).
    pub fn share_of(&self, name: &str) -> f64 {
        self.module(name).map_or(0.0, |e| e.share)
    }

    /// Renders the breakdown as a text table with the paper's annotation
    /// style: time (ms) and percentage per module.
    pub fn to_table(&self, title: &str) -> String {
        let mut t = TextTable::new(title, &["module", "time (ms)", "share"]);
        for e in &self.entries {
            t.row(&[
                e.module.clone(),
                format!("{:.3}", e.time.as_millis_f64()),
                format!("{:.1}%", e.share * 100.0),
            ]);
        }
        t.row(&[
            "total".to_string(),
            format!("{:.3}", self.total.as_millis_f64()),
            "100.0%".to_string(),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(path: &str, depth: usize, start: u64, end: u64) -> ScopeRecord {
        ScopeRecord {
            path: path.to_string(),
            depth,
            start: DurationNs::from_nanos(start),
            end: DurationNs::from_nanos(end),
        }
    }

    #[test]
    fn aggregates_repeated_modules() {
        let scopes = vec![
            scope("inference/sampling", 1, 0, 50),
            scope("inference/attention", 1, 50, 70),
            scope("inference/sampling", 1, 70, 130),
            scope("inference", 0, 0, 130),
        ];
        let b = Breakdown::from_scopes(&scopes, "inference");
        assert_eq!(b.total().as_nanos(), 130);
        let s = b.module("sampling").unwrap();
        assert_eq!(s.time.as_nanos(), 110);
        assert_eq!(s.count, 2);
        assert!((b.share_of("sampling") - 110.0 / 130.0).abs() < 1e-9);
        // Sorted descending.
        assert_eq!(b.entries()[0].module, "sampling");
    }

    #[test]
    fn iteration_wrapper_is_transparent() {
        let scopes = vec![
            scope("run/iteration/gnn", 2, 0, 10),
            scope("run/iteration", 1, 0, 10),
            scope("run/iteration/gnn", 2, 10, 30),
            scope("run/iteration", 1, 10, 30),
            scope("run", 0, 0, 30),
        ];
        let b = Breakdown::from_scopes(&scopes, "run");
        let g = b.module("gnn").unwrap();
        assert_eq!(g.time.as_nanos(), 30);
        assert_eq!(g.count, 2);
        assert!(b.module("iteration").is_none());
    }

    #[test]
    fn uncovered_time_becomes_other() {
        let scopes = vec![scope("run/gnn", 1, 0, 40), scope("run", 0, 0, 100)];
        let b = Breakdown::from_scopes(&scopes, "run");
        assert_eq!(b.module("other").unwrap().time.as_nanos(), 60);
    }

    #[test]
    fn shares_sum_to_one() {
        let scopes = vec![
            scope("run/a", 1, 0, 30),
            scope("run/b", 1, 30, 100),
            scope("run", 0, 0, 100),
        ];
        let b = Breakdown::from_scopes(&scopes, "run");
        let sum: f64 = b.entries().iter().map(|e| e.share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_root_yields_empty_total() {
        let b = Breakdown::from_scopes(&[], "run");
        assert_eq!(b.total(), DurationNs::ZERO);
        assert!(b.entries().is_empty());
    }

    #[test]
    fn table_renders_all_modules() {
        let scopes = vec![
            scope("run/sampling", 1, 0, 90),
            scope("run/gnn", 1, 90, 100),
            scope("run", 0, 0, 100),
        ];
        let table = Breakdown::from_scopes(&scopes, "run").to_table("fig7");
        assert!(table.contains("sampling"));
        assert!(table.contains("90.0%"));
        assert!(table.contains("total"));
    }
}
