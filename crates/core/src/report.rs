//! One-call profile capture: everything the paper reports about a run.

use dgnn_device::{DurationNs, ExecMode, Executor, Place};

use crate::bottleneck::{BottleneckClassifier, BottleneckFinding};
use crate::breakdown::Breakdown;
use crate::utilization::UtilizationReport;
use crate::warmup::WarmupReport;

/// A complete profile of one inference run, captured from an
/// [`Executor`] after the model finished.
#[derive(Debug, Clone)]
pub struct InferenceProfile {
    /// Execution mode of the run.
    pub mode: ExecMode,
    /// Total simulated time of the inference root scope (excludes
    /// warm-up performed before the scope opened).
    pub inference_time: DurationNs,
    /// End-to-end simulated time including warm-up.
    pub end_to_end: DurationNs,
    /// Per-module breakdown under the root scope.
    pub breakdown: Breakdown,
    /// GPU utilization over the inference window.
    pub utilization: UtilizationReport,
    /// Warm-up decomposition over the whole run.
    pub warmup: WarmupReport,
    /// Peak GPU memory in bytes.
    pub gpu_peak_bytes: u64,
    /// Peak CPU memory in bytes.
    pub cpu_peak_bytes: u64,
    /// Total bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// Host (CPU preprocessing) busy time within the run.
    pub host_time: DurationNs,
    /// Detected bottlenecks, most severe first.
    pub findings: Vec<BottleneckFinding>,
}

impl InferenceProfile {
    /// Captures a profile from a finished run whose inference was wrapped
    /// in the scope named `root`.
    ///
    /// # Panics
    ///
    /// Panics when no scope named `root` was recorded.
    pub fn capture(ex: &Executor, root: &str) -> Self {
        let roots: Vec<_> = ex.scopes().iter().filter(|s| s.path == root).collect();
        assert!(!roots.is_empty(), "no scope named `{root}` was recorded");
        let start = roots.iter().map(|s| s.start).min().expect("non-empty");
        let end = roots.iter().map(|s| s.end).max().expect("non-empty");
        let inference_time: DurationNs = roots.iter().map(|s| s.duration()).sum();

        let timeline = ex.timeline();
        let breakdown = Breakdown::from_scopes(ex.scopes(), root);
        let utilization = UtilizationReport::over_window(timeline, start, end);
        let warmup = WarmupReport::from_timeline(timeline);
        let host_time: DurationNs = timeline
            .events()
            .iter()
            .filter(|e| e.place == Place::Cpu && e.category == dgnn_device::EventCategory::Host)
            .map(|e| e.overlap(start, end))
            .sum();
        let findings = BottleneckClassifier::new().classify(timeline, start, end, ex.now());

        InferenceProfile {
            mode: ex.mode(),
            inference_time,
            end_to_end: ex.now(),
            breakdown,
            utilization,
            warmup,
            gpu_peak_bytes: ex.gpu_memory().peak_bytes(),
            cpu_peak_bytes: ex.cpu_memory().peak_bytes(),
            pcie_bytes: timeline.transfer_bytes(None),
            host_time,
            findings,
        }
    }

    /// Peak GPU memory in MiB.
    pub fn gpu_peak_mib(&self) -> f64 {
        self.gpu_peak_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Renders the full profile as a multi-section text report.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("===== {title} ({:?}) =====\n", self.mode));
        out.push_str(&format!(
            "inference: {}   end-to-end: {}   gpu-util: {:.2}%   gpu-mem: {:.1} MiB   pcie: {:.2} MiB\n",
            self.inference_time,
            self.end_to_end,
            self.utilization.average * 100.0,
            self.gpu_peak_mib(),
            self.pcie_bytes as f64 / (1024.0 * 1024.0),
        ));
        out.push_str(&self.breakdown.to_table("module breakdown"));
        if !self.findings.is_empty() {
            out.push_str("bottlenecks:\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "  [{:>4.0}%] {} — {}\n",
                    f.severity * 100.0,
                    f.kind,
                    f.evidence
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{HostWork, KernelDesc, PlatformSpec, TransferDir};

    fn profiled_run() -> Executor {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.model_init(1 << 20, 8);
        ex.scope("inference", |ex| {
            for _ in 0..4 {
                ex.scope("sampling", |ex| {
                    ex.host(HostWork::irregular("sample", 100_000, 1 << 20));
                });
                ex.scope("memcpy_h2d", |ex| {
                    ex.transfer(TransferDir::H2D, 1 << 20);
                });
                ex.scope("attention", |ex| {
                    ex.launch(KernelDesc::gemm("qk", 64, 64, 64));
                });
            }
        });
        ex
    }

    #[test]
    fn capture_produces_consistent_numbers() {
        let ex = profiled_run();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.inference_time > DurationNs::ZERO);
        assert!(p.end_to_end >= p.inference_time);
        assert_eq!(p.breakdown.entries().len(), 3);
        assert!(p.breakdown.share_of("sampling") > 0.0);
        assert!(p.pcie_bytes >= 4 << 20);
        assert!(p.gpu_peak_bytes >= 1 << 20);
        assert!(p.host_time > DurationNs::ZERO);
    }

    #[test]
    #[should_panic(expected = "no scope named")]
    fn capture_requires_root_scope() {
        let ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let _ = InferenceProfile::capture(&ex, "inference");
    }

    #[test]
    fn render_mentions_key_sections() {
        let ex = profiled_run();
        let p = InferenceProfile::capture(&ex, "inference");
        let s = p.render("TGAT wikipedia bs=200");
        assert!(s.contains("TGAT"));
        assert!(s.contains("module breakdown"));
        assert!(s.contains("sampling"));
    }

    #[test]
    fn cpu_mode_profile_has_no_transfers() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        ex.scope("inference", |ex| {
            ex.scope("gnn", |ex| {
                ex.launch(KernelDesc::gemm("k", 32, 32, 32));
            });
        });
        let p = InferenceProfile::capture(&ex, "inference");
        assert_eq!(p.pcie_bytes, 0);
        assert_eq!(p.gpu_peak_bytes, 0);
    }
}
