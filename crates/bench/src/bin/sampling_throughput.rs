//! Wall-clock throughput of the CSR temporal sampling engine, serial vs
//! parallel, plus the simulated "parallel sampling" ablation.
//!
//! The paper's Section 4.2 bottleneck is CPU-side temporal neighbor
//! sampling (83–94% of TGAT inference as batch size goes 200→4000). This
//! binary measures two things:
//!
//! 1. **Real wall-clock** of the host sampler itself: `sample_khop`
//!    (serial) vs `sample_khop_batch` (thread fan-out) over a power-law
//!    interaction stream, sweeping batch size and fan-out `k`. Both
//!    paths return byte-identical samples (asserted), so the comparison
//!    is pure engine throughput.
//! 2. **Simulated sampling share** of TGAT inference as the platform's
//!    core count grows with `parallel_sampling` enabled — the ablation
//!    that shrinks the paper's workload imbalance.
//!
//! Every measurement is also emitted as a machine-readable
//! `BENCH {json}` line for downstream tooling.
//!
//! Usage: `sampling_throughput [--scale tiny|small|full] [--seed N]`

use dgnn_bench::harness::walltime;
use dgnn_bench::parse_opts;
use dgnn_datasets::{wikipedia, PowerLawSampler, Scale};
use dgnn_device::{ExecMode, Executor, PlatformSpec};
use dgnn_graph::{par, EventStream, NeighborSampler, SampleStrategy, TemporalAdjacency};
use dgnn_models::{DgnnModel, InferenceConfig, Tgat, TgatConfig};
use dgnn_profile::{InferenceProfile, TextTable};
use dgnn_tensor::TensorRng;

/// Power-law interaction stream: uniform sources, Zipf destinations.
fn power_law_stream(n_nodes: usize, n_events: usize, alpha: f64, seed: u64) -> EventStream {
    let mut rng = TensorRng::seed(seed);
    let zipf = PowerLawSampler::new(n_nodes, alpha);
    let mut t = 0.0f64;
    let events = (0..n_events)
        .map(|i| {
            t += rng.unit_f64();
            let src = rng.index(n_nodes);
            let mut dst = zipf.sample(&mut rng);
            if dst == src {
                dst = (dst + 1) % n_nodes;
            }
            dgnn_graph::TemporalEvent {
                src,
                dst,
                time: t,
                feature_idx: i,
            }
        })
        .collect();
    EventStream::new(n_nodes, events).expect("generated stream is valid")
}

/// Times `f` over `samples` iterations (one untimed warm-up), mean ns.
fn mean_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let t0 = walltime();
    for _ in 0..samples {
        std::hint::black_box(f());
    }
    t0.elapsed().as_nanos() as f64 / samples as f64
}

fn main() {
    let opts = parse_opts();
    let n_events = opts.scale.apply(600_000, 20_000);
    let n_nodes = (n_events / 10).max(1_000);
    let stream = power_law_stream(n_nodes, n_events, 1.2, opts.seed);
    let adj = TemporalAdjacency::from_stream(&stream);
    let threads = par::max_threads();
    let samples = 5;

    let mut table = TextTable::new(
        &format!(
            "Sampling throughput — CSR engine, serial vs parallel ({threads} threads, \
             {n_events} events, {n_nodes} nodes)"
        ),
        &[
            "batch",
            "k (2 hops)",
            "serial ms",
            "parallel ms",
            "speedup",
            "roots/s parallel",
        ],
    );

    for &batch in &[200usize, 1_000, 4_000] {
        for &k in &[10usize, 20] {
            let roots: Vec<(usize, f64)> = stream
                .events()
                .iter()
                .rev()
                .take(batch)
                .map(|e| (e.src, e.time))
                .collect();
            let ks = [k, k];
            let sampler = NeighborSampler::new(SampleStrategy::Uniform, opts.seed);

            // Parallel must reproduce serial byte-for-byte.
            let serial_out = sampler.sample_khop(&adj, &roots, &ks);
            let parallel_out = sampler.sample_khop_batch(&adj, &roots, &ks);
            assert_eq!(serial_out, parallel_out, "parallel sampling diverged");

            let serial_ns = mean_ns(samples, || sampler.sample_khop(&adj, &roots, &ks));
            let parallel_ns = mean_ns(samples, || sampler.sample_khop_batch(&adj, &roots, &ks));
            let speedup = serial_ns / parallel_ns;
            let roots_per_sec = roots.len() as f64 / (parallel_ns / 1e9);

            table.row(&[
                format!("{batch}"),
                format!("{k}"),
                format!("{:.3}", serial_ns / 1e6),
                format!("{:.3}", parallel_ns / 1e6),
                format!("{speedup:.2}x"),
                format!("{roots_per_sec:.0}"),
            ]);
            println!(
                "BENCH {{\"bench\":\"sampling_throughput\",\"mode\":\"serial\",\"batch\":{batch},\
                 \"k\":{k},\"threads\":1,\"mean_ns\":{serial_ns:.0}}}"
            );
            println!(
                "BENCH {{\"bench\":\"sampling_throughput\",\"mode\":\"parallel\",\"batch\":{batch},\
                 \"k\":{k},\"threads\":{threads},\"mean_ns\":{parallel_ns:.0},\
                 \"speedup\":{speedup:.3},\"roots_per_sec\":{roots_per_sec:.0}}}"
            );
        }
    }
    print!("{}", table.render());

    // Simulated ablation: TGAT sampling share vs core count with the
    // cost model charging sampling as a parallel critical path.
    let mut ablation = TextTable::new(
        "Parallel sampling ablation — simulated TGAT sampling share vs CPU cores",
        &["cores", "sampling share", "batch time ms"],
    );
    // Full-scale wikipedia is overkill for a share measurement; cap the
    // ablation dataset at Small.
    let ablation_scale = match opts.scale {
        Scale::Full => Scale::Small,
        s => s,
    };
    let data = wikipedia(ablation_scale, opts.seed);
    let cfg = InferenceConfig::default()
        .with_batch_size(4_000)
        .with_max_units(1)
        .with_parallel_sampling(true);
    for &cores in &[1u32, 2, 4, 8, 16] {
        let mut spec = PlatformSpec::default();
        spec.cpu.cores = cores;
        spec.cpu.saturation_width = cores as u64 * 256;
        let mut model = Tgat::new(data.clone(), TgatConfig::default(), opts.seed);
        let mut ex = Executor::new(spec, ExecMode::Gpu);
        let summary = model.run(&mut ex, &cfg).expect("tgat run");
        let profile = InferenceProfile::capture(&ex, "inference");
        let share = profile.breakdown.share_of("sampling");
        let ms = summary.inference_time.as_nanos() as f64 / 1e6;
        ablation.row(&[
            format!("{cores}"),
            format!("{:.1}%", share * 100.0),
            format!("{ms:.2}"),
        ]);
        println!(
            "BENCH {{\"bench\":\"parallel_sampling_ablation\",\"cores\":{cores},\
             \"sampling_share\":{share:.4},\"inference_ms\":{ms:.3}}}"
        );
    }
    print!("{}", ablation.render());
}
