//! Fleet sweep: routing policies × workload shapes, autoscaled vs
//! static, with the §4.4 warm-up cost priced into every scale-out.
//!
//! The serving sweep (`serve_sweep`) amortizes GPU warm-up inside one
//! warm pool. This binary scales the question to a fleet: N pools
//! behind a deterministic router, an autoscaler that spawns pools
//! (each replica re-paying context + model init before its first
//! request) and drains them (replica-seconds stop accruing), and
//! traffic shapes representative of production — homogeneous Poisson,
//! diurnal sinusoid, flash crowd, heavy-tailed per-user sessions.
//!
//! Each cell reports the policy-level metrics the architecture surveys
//! ask for on top of kernel timelines: SLO attainment over *offered*
//! load (shed requests count as misses), shed rate, replica-seconds
//! (the capacity bill), and scale-event counts. The autoscaled fleet
//! is compared against a static fleet of the same initial size — the
//! SLO-attainment / replica-seconds trade-off in one table.
//!
//! Every cell is emitted as a machine-readable `BENCH {json}` line; a
//! non-smoke run also writes the committed `BENCH_fleet.json`.
//!
//! Usage: `fleet_sweep [--scale tiny|small|full] [--seed N] [--smoke]`
//!
//! `--smoke` shrinks to a tiny two-model mix and additionally
//! (1) replays one autoscaled flash-crowd cell to assert
//! bit-determinism (request records, scale decisions, numerics),
//! (2) audits every replica session of every pool — including
//! autoscaler-spawned ones — with the timeline sanitizer, and
//! (3) asserts the flash crowd actually triggers a scale-out.

use dgnn_bench::{parse_opts, served_zoo};
use dgnn_datasets::Scale;
use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_profile::TextTable;
use dgnn_serve::{
    serve_fleet, AutoscalerConfig, FleetConfig, FleetOutcome, RouterPolicy, WorkloadShape,
};

fn shapes() -> Vec<WorkloadShape> {
    vec![
        WorkloadShape::Poisson,
        WorkloadShape::Diurnal {
            period: DurationNs::from_secs_f64(30.0),
            amplitude: 0.8,
        },
        // ×20 overload, sustained past the ~6.5 s replica provisioning
        // lag: the burst has to both exceed the static fleet's service
        // capacity (so queues actually build and the SLO is at risk)
        // and outlast the warm-up window (a burst shorter than
        // provisioning ends before any scale-out's capacity lands).
        WorkloadShape::FlashCrowd {
            at: DurationNs::from_secs_f64(10.0),
            duration: DurationNs::from_secs_f64(30.0),
            multiplier: 20.0,
        },
        WorkloadShape::Sessions {
            mean_length: 4.0,
            think_time: DurationNs::from_millis(500),
        },
    ]
}

fn scaler() -> AutoscalerConfig {
    AutoscalerConfig {
        min_pools: 1,
        max_pools: 6,
        scale_out_queue: 4,
        scale_in_queue: 1,
        idle_window: DurationNs::from_secs_f64(4.0),
        cooldown: DurationNs::from_secs_f64(2.0),
    }
}

fn fleet_cfg(
    n_requests: usize,
    shape: WorkloadShape,
    policy: RouterPolicy,
    autoscaled: bool,
    trace: bool,
) -> FleetConfig {
    FleetConfig {
        seed: 1,
        n_requests,
        arrival_rate_rps: 1.0,
        shape,
        policy,
        batch_window: DurationNs::from_millis(50),
        max_batch: 4,
        initial_pools: 2,
        replicas_per_pool: 2,
        queue_bound: 32,
        slo: DurationNs::from_secs_f64(10.0),
        autoscaler: autoscaled.then(scaler),
        mode: ExecMode::Gpu,
        trace,
        spec: PlatformSpec::default(),
    }
}

fn record_json(out: &FleetOutcome, scaling: &str) -> String {
    let r = &out.report;
    format!(
        "{{\"bench\":\"fleet_sweep\",\"policy\":\"{}\",\"shape\":\"{}\",\
         \"scaling\":\"{scaling}\",\"offered\":{},\"served\":{},\"shed\":{},\
         \"shed_rate\":{:.4},\"slo_ms\":{:.0},\"slo_attainment\":{:.4},\
         \"replica_seconds\":{:.2},\"pools_spawned\":{},\"peak_pools\":{},\
         \"final_pools\":{},\"scale_outs\":{},\"scale_ins\":{},\
         \"cold_services\":{},\"warm_services\":{},\"mean_batch\":{:.3},\
         \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"mean_ns\":{},\
         \"throughput_rps\":{:.2},\"warmup_share\":{:.4},\"makespan_ms\":{:.1}}}",
        r.policy.label(),
        r.shape,
        r.offered,
        r.served,
        r.shed,
        r.shed_rate(),
        r.slo.as_secs_f64() * 1e3,
        r.slo_attainment(),
        r.replica_seconds,
        r.pools_spawned,
        r.peak_pools,
        r.final_pools,
        r.scale_outs,
        r.scale_ins,
        r.cold_services,
        r.warm_services,
        r.mean_batch_size,
        r.latency.p50.as_nanos(),
        r.latency.p95.as_nanos(),
        r.latency.p99.as_nanos(),
        r.latency.mean.as_nanos(),
        r.throughput_rps,
        r.warmup_share(),
        r.makespan.as_secs_f64() * 1e3,
    )
}

fn main() {
    let opts = parse_opts();
    let smoke = opts.rest.iter().any(|a| a == "--smoke");
    // Like serve_sweep: the object of study is placement + pricing,
    // both scale-insensitive; cap datasets at Small.
    let scale = if smoke {
        Scale::Tiny
    } else {
        match opts.scale {
            Scale::Full => Scale::Small,
            s => s,
        }
    };
    let names: &[&str] = if smoke {
        &["jodie", "dyrep"]
    } else {
        &["jodie", "tgn", "dyrep", "ldg_mlp"]
    };
    let n_requests = if smoke { 16 } else { 192 };
    let policies = [
        RouterPolicy::AffinityFirst,
        RouterPolicy::PowerOfTwoChoices,
        RouterPolicy::JoinShortestQueue,
    ];

    if smoke {
        run_smoke(names, scale, opts.seed, n_requests);
        return;
    }

    let mut table = TextTable::new(
        &format!(
            "Fleet sweep — mix [{}], 1 rps mean, SLO 10 s, 2×2 start ({scale:?})",
            names.join("+")
        ),
        &[
            "shape",
            "policy",
            "scaling",
            "served/shed",
            "SLO att.",
            "replica-s",
            "out/in",
            "p99 (s)",
        ],
    );
    let mut records: Vec<String> = Vec::new();
    let mut emit = |out: &FleetOutcome, scaling: &str| {
        let r = &out.report;
        table.row(&[
            r.shape.to_string(),
            r.policy.label().to_string(),
            scaling.to_string(),
            format!("{}/{}", r.served, r.shed),
            format!("{:.1}%", r.slo_attainment() * 100.0),
            format!("{:.1}", r.replica_seconds),
            format!("{}/{}", r.scale_outs, r.scale_ins),
            format!("{:.2}", r.latency.p99.as_secs_f64()),
        ]);
        let json = record_json(out, scaling);
        println!("BENCH {json}");
        records.push(format!("    {json}"));
    };

    for shape in shapes() {
        // Autoscaled fleet under every policy…
        for policy in policies {
            let cfg = fleet_cfg(n_requests, shape, policy, true, false);
            let out = serve_fleet(&cfg, &served_zoo(names, scale, opts.seed));
            emit(&out, "auto");
        }
        // …and a static JSQ fleet of the same initial size as baseline.
        let cfg = fleet_cfg(
            n_requests,
            shape,
            RouterPolicy::JoinShortestQueue,
            false,
            false,
        );
        let out = serve_fleet(&cfg, &served_zoo(names, scale, opts.seed));
        emit(&out, "static");
    }
    print!("{}", table.render());

    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p dgnn-bench --bin fleet_sweep\",\n  \
         \"scale\": \"{scale_name}\",\n  \"seed\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
        opts.seed,
        records.join(",\n"),
    );
    std::fs::write("BENCH_fleet.json", json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json ({} records)", records.len());
}

fn run_smoke(names: &[&str], scale: Scale, seed: u64, n_requests: usize) {
    let flash = WorkloadShape::FlashCrowd {
        at: DurationNs::from_secs_f64(2.0),
        duration: DurationNs::from_secs_f64(6.0),
        multiplier: 8.0,
    };

    // 1. Bit-determinism: an identical autoscaled configuration
    //    replays the identical schedule, scale decisions and numerics.
    let mut cfg = fleet_cfg(
        n_requests,
        flash,
        RouterPolicy::PowerOfTwoChoices,
        true,
        false,
    );
    cfg.initial_pools = 1;
    cfg.replicas_per_pool = 1;
    cfg.autoscaler = Some(AutoscalerConfig {
        scale_out_queue: 2,
        idle_window: DurationNs::from_secs_f64(2.0),
        cooldown: DurationNs::from_secs_f64(1.0),
        ..scaler()
    });
    let a = serve_fleet(&cfg, &served_zoo(names, scale, seed));
    let b = serve_fleet(&cfg, &served_zoo(names, scale, seed));
    assert_eq!(a.requests, b.requests, "fleet replay diverged");
    assert_eq!(a.scale_events, b.scale_events, "scale decisions diverged");
    let bits = |o: &FleetOutcome| -> Vec<u32> {
        o.batches
            .iter()
            .map(|x| x.batch.summary.checksum.to_bits())
            .collect()
    };
    assert_eq!(bits(&a), bits(&b), "fleet numerics diverged");

    // 2. The flash crowd must trigger the autoscaler, and every
    //    spawned pool prices its provisioning warm-up.
    assert!(
        a.report.scale_outs >= 1,
        "flash crowd failed to trigger a scale-out: {:?}",
        a.scale_events
    );
    assert_eq!(a.report.pools_spawned, 1 + a.report.scale_outs);
    assert!(a.report.provision.warmup > DurationNs::ZERO);

    // 3. Sanitizer audit over every replica session of every pool,
    //    autoscaler-spawned pools included.
    cfg.trace = true;
    let out = serve_fleet(&cfg, &served_zoo(names, scale, seed));
    assert!(out.report.pools_spawned > 1, "trace run must also scale");
    for (i, session) in out.sessions.iter().enumerate() {
        let report = dgnn_analysis::audit(session);
        assert!(
            report.is_clean(),
            "fleet replica {i} has hazards: {report:?}"
        );
    }

    // 4. Policies and shapes stay deterministic and conserve requests.
    for policy in [RouterPolicy::AffinityFirst, RouterPolicy::JoinShortestQueue] {
        for shape in shapes() {
            let cfg = fleet_cfg(12, shape, policy, false, false);
            let out = serve_fleet(&cfg, &served_zoo(names, scale, seed));
            assert_eq!(
                out.report.served + out.report.shed,
                12,
                "{} × {} lost requests",
                out.report.policy.label(),
                out.report.shape
            );
        }
    }
    println!("fleet_sweep --smoke: determinism + autoscale + sanitizer OK");
}
