//! Regenerates the §4.4 warm-up ratios:
//!
//! * one-time GPU warm-up (context + model init) versus the time to
//!   process one mini-batch/snapshot — the paper reports 86×, 41× and
//!   33× for TGAT, EvolveGCN-O and EvolveGCN-H;
//! * model initialization on GPU versus CPU — the paper reports 40×,
//!   855× and 937×.
//!
//! Usage: `warmup_ratios [--scale ...]`

use dgnn_bench::{build_model, default_config, measure, parse_opts};
use dgnn_device::{ExecMode, Executor, PlatformSpec};
use dgnn_profile::TextTable;

fn main() {
    let opts = parse_opts();
    let mut t = TextTable::new(
        "Sec 4.4 — GPU warm-up ratios",
        &[
            "model",
            "one-time warm-up (s)",
            "per-unit inference (ms)",
            "warm-up / unit",
            "model-init gpu/cpu",
        ],
    );
    for name in ["tgat", "evolvegcn_o", "evolvegcn_h"] {
        let cfg = default_config(name);
        let mut m = build_model(name, opts.scale, opts.seed);
        let run = measure(m.as_mut(), ExecMode::Gpu, &cfg);
        let one_time = run.profile.warmup.context + run.profile.warmup.model_init;
        let ratio = run
            .profile
            .warmup
            .one_time_warmup_ratio(run.summary.unit_time);

        // Model-init comparison on both devices.
        let mut mg = build_model(name, opts.scale, opts.seed);
        let mut exg = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        exg.ensure_context();
        let init_gpu = exg.model_init(mg.param_bytes(), mg.param_tensors());
        let mut exc = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let init_cpu = exc.model_init(mg.param_bytes(), mg.param_tensors());
        let _ = &mut mg;

        t.row(&[
            name.to_string(),
            format!("{:.2}", one_time.as_secs_f64()),
            format!("{:.1}", run.summary.unit_time.as_millis_f64()),
            format!("{ratio:.0}x"),
            format!(
                "{:.0}x",
                init_gpu.as_nanos() as f64 / init_cpu.as_nanos().max(1) as f64
            ),
        ]);
    }
    print!("{}", t.render());
}
