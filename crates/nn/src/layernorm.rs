//! Layer normalization (ASTGNN's attention blocks).

use dgnn_device::{Executor, KernelDesc};
use dgnn_tensor::{Tensor, TensorError, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

/// Row-wise layer normalization with learned gain and bias.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    gain: Param,
    bias: Param,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over feature width `dim`.
    pub fn new(dim: usize, _rng: &mut TensorRng) -> Self {
        LayerNorm {
            gain: Param::new("gain", Tensor::ones(&[dim])),
            bias: Param::new("bias", Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalized feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Normalizes each row of `x: [m, dim]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` is not `[m, dim]`.
    pub fn forward(&self, ex: &mut Executor, x: &Tensor) -> Result<Tensor> {
        if x.rank() != 2 || x.dims()[1] != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: x.dims().to_vec(),
                rhs: vec![0, self.dim],
            });
        }
        let (m, n) = (x.dims()[0], self.dim);
        ex.launch(KernelDesc::reduce("layer_norm", m, n));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &x.as_slice()[i * n..(i + 1) * n];
            let mean: f32 = row.iter().sum::<f32>() / n as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            for j in 0..n {
                out[i * n + j] = (row[j] - mean) * inv * self.gain.value.as_slice()[j]
                    + self.bias.value.as_slice()[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.gain, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_tensor::Initializer;

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    #[test]
    fn rows_become_zero_mean_unit_var() {
        let mut rng = TensorRng::seed(1);
        let ln = LayerNorm::new(8, &mut rng);
        let mut ex = ex();
        let x = TensorRng::seed(2).init(&[4, 8], Initializer::Normal(5.0));
        let y = ln.forward(&mut ex, &x).unwrap();
        for i in 0..4 {
            let row = y.row(i).unwrap();
            let mean = row.mean().unwrap();
            let var = row.norm_sq() / 8.0 - mean * mean;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn constant_rows_are_stable() {
        let mut rng = TensorRng::seed(3);
        let ln = LayerNorm::new(4, &mut rng);
        let mut ex = ex();
        let y = ln.forward(&mut ex, &Tensor::full(&[2, 4], 7.0)).unwrap();
        assert!(y.all_finite());
        assert!(y.as_slice().iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn wrong_width_errors() {
        let mut rng = TensorRng::seed(4);
        let ln = LayerNorm::new(4, &mut rng);
        let mut ex = ex();
        assert!(ln.forward(&mut ex, &Tensor::zeros(&[2, 5])).is_err());
    }
}
