//! LINT1 adversarial fixture: hash iteration on the decision path.
//! Visit order depends on hasher state, so batch formation built this
//! way is not bit-deterministic per seed.
use std::collections::{HashMap, HashSet};

pub fn drain_pending(pending: &mut HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in pending.iter() {
        total += *v;
    }
    let live: HashSet<u64> = HashSet::new();
    let mut first = 0;
    for id in &live {
        first = *id;
        break;
    }
    total + first
}
