//! LINT5 adversarial fixture: a float reduction over an unordered
//! source in a module that spawns threads — the sum's value depends on
//! hasher visit order.
use std::collections::HashMap;

pub fn total(per_lane: &HashMap<u32, f32>) -> f32 {
    std::thread::scope(|_s| {});
    per_lane.values().copied().sum::<f32>()
}
