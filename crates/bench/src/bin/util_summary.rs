//! Regenerates the §4.1 GPU-utilization summary across all models, with
//! the detected bottleneck classes.
//!
//! The paper's numbers: EvolveGCN and MolDGNN below 1%, TGAT 5–6%,
//! JODIE 1.5–2.5%, DyRep and LDG below 2%.
//!
//! Usage: `util_summary [--scale ...]`

use dgnn_bench::{build_model, default_config, measure, parse_opts, MODEL_NAMES};
use dgnn_device::ExecMode;
use dgnn_profile::TextTable;

fn main() {
    let opts = parse_opts();
    let mut t = TextTable::new(
        "Sec 4.1 — GPU utilization during inference",
        &["model", "gpu util", "gpu mem (MiB)", "top bottleneck"],
    );
    for name in MODEL_NAMES {
        let mut m = build_model(name, opts.scale, opts.seed);
        let run = measure(m.as_mut(), ExecMode::Gpu, &default_config(name));
        // Warm-up dominates every short run (the paper's 86x ratios);
        // report the most severe *steady-state* bottleneck alongside it.
        let top = run
            .profile
            .findings
            .iter()
            .find(|f| f.kind != dgnn_profile::BottleneckKind::GpuWarmup)
            .or_else(|| run.profile.findings.first())
            .map(|f| f.kind.to_string())
            .unwrap_or_else(|| "-".to_string());
        t.row(&[
            name.to_string(),
            format!("{:.2}%", run.profile.utilization.busy_fraction * 100.0),
            format!("{:.1}", run.profile.gpu_peak_mib()),
            top,
        ]);
    }
    print!("{}", t.render());
}
