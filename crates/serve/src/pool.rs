//! The warm pool: pre-initialized replica sessions that amortize GPU
//! warm-up across requests.
//!
//! The paper's §4.4 bottleneck is that context/model initialization for
//! TGAT costs ≈ 86× one mini-batch — paid once per process in the
//! profiled frameworks, and therefore catastrophic if every request
//! were served by a fresh process. The pool models the mitigation the
//! paper proposes but does not build: each replica slot owns one
//! long-lived [`Executor`] session whose CUDA context is initialized at
//! provisioning time and whose resident model's weights stay on the
//! device between requests.
//!
//! * **Provisioning** (pool start-up): every slot pays context init +
//!   model init once, before the first request is admitted.
//! * **Warm hit**: a request for the slot's resident model pays only
//!   per-run activation allocation (the batch-dependent Table 2
//!   component) plus inference.
//! * **Cold start** (eviction): a request for a model the pool does not
//!   hold resident evicts the least-recently-used free slot — the old
//!   weights are released and the new model's `model_init` is paid
//!   inside the request's service time.
//!
//! The model *struct* is rebuilt from its [`ReplicaHandle`] on every
//! service, so request numerics depend only on the handle's recipe —
//! session reuse amortizes priced warm-up without carrying mutable
//! model state between requests.

use dgnn_device::{
    accumulate_class_stats, CacheStats, ClassCacheStats, DurationNs, ExecMode, Executor,
    PlatformSpec,
};
use dgnn_models::RunSummary;
use dgnn_profile::ServicePhases;

use crate::ServedModel;

/// One replica slot: a long-lived executor session plus residence
/// bookkeeping.
#[derive(Debug)]
pub struct Replica {
    /// Slot id (stable, 0-based).
    pub id: usize,
    session: Executor,
    /// Mix index of the model whose weights are resident, if any.
    resident: Option<usize>,
    resident_param_bytes: u64,
    busy: bool,
    last_used: u64,
    /// Cold starts served by this slot (model swaps after provisioning).
    pub cold_starts: usize,
    /// Total services (batches) executed by this slot.
    pub services: usize,
}

impl Replica {
    /// Mix index of the resident model.
    pub fn resident(&self) -> Option<usize> {
        self.resident
    }

    /// Borrow of the slot's session executor.
    pub fn session(&self) -> &Executor {
        &self.session
    }
}

/// Result of one service executed on a replica.
#[derive(Debug, Clone)]
pub struct ServiceRecord {
    /// Slot that served the batch.
    pub replica: usize,
    /// Whether the service paid a model swap (cold start).
    pub cold: bool,
    /// Simulated service duration (warm-up + inference makespan).
    pub duration: DurationNs,
    /// Busy-time phase decomposition of the service span.
    pub phases: ServicePhases,
    /// The model-reported inference summary.
    pub summary: RunSummary,
}

/// A fixed-size pool of warm replica sessions.
#[derive(Debug)]
pub struct WarmPool {
    replicas: Vec<Replica>,
    spec: PlatformSpec,
    mode: ExecMode,
}

impl WarmPool {
    /// Creates `pool_size` empty slots (no sessions yet — call
    /// [`WarmPool::provision`]).
    ///
    /// # Panics
    ///
    /// Panics when `pool_size` is zero.
    pub fn new(pool_size: usize, spec: PlatformSpec, mode: ExecMode, trace: bool) -> Self {
        assert!(pool_size >= 1, "pool needs at least one replica");
        let replicas = (0..pool_size)
            .map(|id| {
                let mut session = Executor::new(spec.clone(), mode);
                if trace {
                    session.enable_tracing();
                }
                Replica {
                    id,
                    session,
                    resident: None,
                    resident_param_bytes: 0,
                    busy: false,
                    last_used: 0,
                    cold_starts: 0,
                    services: 0,
                }
            })
            .collect();
        WarmPool {
            replicas,
            spec,
            mode,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the pool has no slots (never true — see
    /// [`WarmPool::new`]).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Slot accessor.
    pub fn replica(&self, id: usize) -> &Replica {
        &self.replicas[id]
    }

    /// Pre-initializes every slot before the server opens: slot `i`
    /// gets model `i % zoo.len()` — context init plus model init, the
    /// one-time warm-up of §4.4, paid up front instead of inside any
    /// request's latency. Returns each slot's provisioning completion
    /// time (slots provision concurrently from t = 0); the slots stay
    /// marked busy until then, so the caller must schedule their
    /// release.
    pub fn provision(&mut self, zoo: &[ServedModel]) -> Vec<DurationNs> {
        assert!(!zoo.is_empty(), "cannot provision an empty model mix");
        let mut completions = Vec::with_capacity(self.replicas.len());
        for r in &mut self.replicas {
            let model_idx = r.id % zoo.len();
            let model = zoo[model_idx].handle.build();
            let done = r.session.scope("provision", |ex| {
                ex.model_init(model.param_bytes(), model.param_tensors());
                ex.now()
            });
            r.resident = Some(model_idx);
            r.resident_param_bytes = model.param_bytes();
            r.busy = true;
            completions.push(done);
        }
        completions
    }

    /// Busy-time phases paid during provisioning, summed over slots.
    pub fn provision_phases(&self) -> ServicePhases {
        let mut total = ServicePhases::default();
        for r in &self.replicas {
            let events = r.session.timeline().events();
            let provisioned: Vec<_> = events
                .iter()
                .filter(|e| e.scope.starts_with("provision"))
                .cloned()
                .collect();
            total.accumulate(&ServicePhases::from_events(&provisioned));
        }
        total
    }

    /// Picks a slot for `model` with model affinity:
    ///
    /// 1. a *free* slot already holding the model → warm hit (smallest
    ///    id wins ties);
    /// 2. the model resident only on *busy* slots → `None` (wait for
    ///    that slot rather than evict another model's warm weights —
    ///    eager eviction would thrash a pool that exactly fits the mix);
    /// 3. the model resident nowhere → the least-recently-used free
    ///    slot, as a cold start (its resident model is evicted);
    /// 4. every slot busy → `None`.
    ///
    /// Returns `(slot, cold)`. A `None` is always transient: some slot
    /// is busy and its completion retries the dispatch.
    pub fn pick(&self, model: usize) -> Option<(usize, bool)> {
        let warm = self
            .replicas
            .iter()
            .find(|r| !r.busy && r.resident == Some(model));
        if let Some(r) = warm {
            return Some((r.id, false));
        }
        if self.replicas.iter().any(|r| r.resident == Some(model)) {
            return None; // resident but busy: wait, don't evict a peer
        }
        self.replicas
            .iter()
            .filter(|r| !r.busy)
            .min_by_key(|r| (r.last_used, r.id))
            .map(|r| (r.id, true))
    }

    /// Executes one batched service of `units` request-units of
    /// `zoo[model_idx]` on `slot`, advancing that slot's session clock.
    /// `seq` is a monotone dispatch counter used for LRU bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics when the slot is busy, or when inference fails (serving
    /// configurations are known-good).
    pub fn service(
        &mut self,
        slot: usize,
        model_idx: usize,
        zoo: &[ServedModel],
        units: usize,
        seq: u64,
    ) -> ServiceRecord {
        let m = &zoo[model_idx];
        let r = &mut self.replicas[slot];
        assert!(!r.busy, "slot {slot} is mid-service");
        let cold = r.resident != Some(model_idx);

        let run_cfg = m
            .cfg
            .clone()
            .with_max_units(m.cfg.max_units.max(1) * units.max(1));
        let mut model = m.handle.build();

        let t0 = r.session.now();
        let i0 = r.session.timeline().len();
        let summary = if cold {
            // Evict the resident model, then pay the §4.4 model-init
            // warm-up inside this request's service time. The context
            // stays warm — the session (process) survives the swap.
            r.session.release(r.resident_param_bytes);
            r.cold_starts += 1;
            model.run(&mut r.session, &run_cfg)
        } else {
            // Warm hit: only the batch-dependent activation allocation
            // (Table 2) is paid before inference.
            r.session.scope("warmup", |ex| {
                ex.alloc_warmup(model.activation_bytes(&run_cfg));
            });
            model.infer(&mut r.session, &run_cfg)
        }
        .unwrap_or_else(|e| panic!("{} service failed: {e}", model.name()));

        let duration = r.session.now() - t0;
        let phases = ServicePhases::from_events(&r.session.timeline().events()[i0..]);
        // The activation pool is recycled between services.
        r.session.release(model.activation_bytes(&run_cfg));

        r.resident = Some(model_idx);
        r.resident_param_bytes = model.param_bytes();
        r.busy = true;
        r.last_used = seq;
        r.services += 1;

        ServiceRecord {
            replica: slot,
            cold,
            duration,
            phases,
            summary,
        }
    }

    /// Marks a slot free (its scheduled completion time was reached).
    pub fn mark_free(&mut self, slot: usize) {
        self.replicas[slot].busy = false;
    }

    /// Total cold starts across slots (excludes provisioning).
    pub fn cold_starts(&self) -> usize {
        self.replicas.iter().map(|r| r.cold_starts).sum()
    }

    /// Feature-cache counters summed over every slot's session. A slot's
    /// cache stays warm between services — the whole point of the pool —
    /// so hits here measure cross-request reuse, not just intra-batch
    /// locality. All zeros when the served configs never enable the
    /// cache.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.replicas {
            total.accumulate(&r.session.cache_stats());
        }
        total
    }

    /// Per-[`dgnn_device::TensorClass`] feature-cache counters summed
    /// over every slot's session — splits the [`WarmPool::cache_stats`]
    /// total into node-feature / edge-feature / node-memory traffic.
    pub fn cache_class_stats(&self) -> ClassCacheStats {
        let mut total = ClassCacheStats::default();
        for r in &self.replicas {
            accumulate_class_stats(&mut total, &r.session.cache_class_stats());
        }
        total
    }

    /// Consumes the pool, returning each slot's session executor in
    /// slot order — ready for sanitizer audit or profile capture.
    pub fn into_sessions(self) -> Vec<Executor> {
        self.replicas.into_iter().map(|r| r.session).collect()
    }

    /// The execution mode replicas run in.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The platform specification replicas run on.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }
}
