//! # dgnn-datasets
//!
//! Seeded synthetic generators standing in for the nine datasets of the
//! paper's artifact: Wikipedia, Reddit, LastFM (JODIE-format bipartite
//! interaction streams), Bitcoin-Alpha and the Stochastic Block Model
//! (snapshot sequences), PeMS (traffic sensor time series), ISO17
//! (molecular trajectories), Social Evolution and GitHub (event streams).
//!
//! ## Why synthetic stands in for the real data
//!
//! The paper's bottlenecks are functions of *workload shape* — event
//! counts, degree skew, snapshot sizes, feature dimensions — not of which
//! particular user edited which particular page. Each generator matches
//! its real counterpart's published scale and skew (power-law popularity
//! for the interaction networks, block structure for SBM, fixed atom
//! counts for ISO17) and is parameterized by [`Scale`] so CI runs stay
//! fast while `Scale::Full` approaches the real dataset sizes.
//!
//! All generators are deterministic in their seed.
//!
//! ```
//! use dgnn_datasets::{wikipedia, Scale};
//!
//! let a = wikipedia(Scale::Tiny, 1);
//! let b = wikipedia(Scale::Tiny, 1);
//! assert_eq!(a.stream.len(), b.stream.len());
//! assert!(a.stream.len() > 100);
//! ```

#![forbid(unsafe_code)]

mod convert;
mod events;
mod interaction;
mod molecular;
mod power_law;
mod scale;
mod snapshots;
mod traffic;
mod types;

pub use convert::as_snapshots;
pub use events::{github, social_evolution};
pub use interaction::{lastfm, reddit, wikipedia};
pub use molecular::iso17;
pub use power_law::PowerLawSampler;
pub use scale::Scale;
pub use snapshots::{bitcoin_alpha, sbm};
pub use traffic::pems;
pub use types::{SnapshotDataset, TemporalDataset, TimeSeriesDataset, TrajectoryDataset};
