//! DyRep (Trivedi et al., ICLR'19) — temporal point process over
//! dynamic graphs.
//!
//! Events are processed **one at a time**: computing the conditional
//! intensity at time `t` requires the node embeddings as of the previous
//! event, so updating embeddings and evaluating intensities strictly
//! alternate (Fig 4a). On the GPU this produces thousands of tiny,
//! serialized kernels; inference on the GPU never beats the CPU at any
//! batch size (Fig 8) and utilization stays under 2%.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{Executor, HostWork, KernelDesc, TransferDir};
use dgnn_nn::{EmbeddingTable, Linear, Module, RnnCell};
use dgnn_tensor::TensorRng;

use crate::common::{DgnnModel, InferenceConfig, RunSummary, REP_CAP};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per event in the reference implementation's Python
/// event loop (embedding gathering, neighborhood bookkeeping, intensity
/// bookkeeping) — DyRep processes events at roughly millisecond cost.
const EVENT_LOOP_OPS: u64 = 400_000;

/// DyRep hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DyRepConfig {
    /// Node-embedding dimension.
    pub dim: usize,
}

impl Default for DyRepConfig {
    fn default() -> Self {
        DyRepConfig { dim: 32 }
    }
}

/// The DyRep model bound to a dataset.
#[derive(Debug)]
pub struct DyRep {
    data: TemporalDataset,
    cfg: DyRepConfig,
    embeddings: EmbeddingTable,
    update_rnn: RnnCell,
    intensity: Linear,
    attention_w: Linear,
}

impl DyRep {
    /// Builds DyRep over an event dataset.
    pub fn new(data: TemporalDataset, cfg: DyRepConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let d = cfg.dim;
        // RNN input: local propagation + self propagation + exogenous drive.
        DyRep {
            embeddings: EmbeddingTable::new(data.stream.n_nodes(), d, &mut rng),
            update_rnn: RnnCell::new(3 * d, d, &mut rng),
            intensity: Linear::new(2 * d, 1, &mut rng),
            attention_w: Linear::new(2 * d, 1, &mut rng),
            data,
            cfg,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![&self.embeddings, &self.update_rnn, &self.intensity, &self.attention_w]
    }

    /// Per-event GPU kernels: the serialized inner loop shared with LDG.
    pub(crate) fn event_kernels(ex: &mut Executor, d: usize) {
        // Embedding update: tiny GEMMs over a single node pair.
        ex.launch(KernelDesc::gemm("dyrep_update", 2, 3 * d + d, d));
        ex.launch(KernelDesc::elementwise("dyrep_tanh", 2 * d, 1, 1));
        // Conditional intensity (bilinear + softplus).
        ex.launch(KernelDesc::gemm("intensity", 1, 2 * d, 1));
        ex.launch(KernelDesc::elementwise("softplus", 1, 4, 1));
        // Temporal attention weight refresh.
        ex.launch(KernelDesc::gemm("attn_weight", 1, 2 * d, 1));
    }
}

impl DgnnModel for DyRep {
    fn name(&self) -> &'static str {
        "dyrep"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos().into_iter().find(|i| i.name == "dyrep").expect("dyrep registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        (cfg.batch_size * self.cfg.dim * 4 * 4) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let d = self.cfg.dim;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let run: Result<()> = ex.scope("inference", |ex| {
            for batch in &batches {
                // Batch features to device once per batch.
                ex.scope("memcpy_h2d", |ex| {
                    ex.transfer(
                        TransferDir::H2D,
                        (batch.len() * (self.data.edge_dim() + 4) * 4) as u64,
                    );
                });

                // Serial per-event processing — the temporal dependency.
                for (i, e) in batch.iter().enumerate() {
                    ex.scope("event_loop", |ex| {
                        ex.host(HostWork {
                            label: "event_bookkeeping",
                            ops: EVENT_LOOP_OPS,
                            seq_bytes: 512,
                            irregular_bytes: (4 * d * 4) as u64,
                        });
                    });
                    let functional = i < REP_CAP;
                    ex.scope("embedding_update", |ex| -> Result<()> {
                        DyRep::event_kernels(ex, d);
                        if functional {
                            let mut cpu = Executor::new(
                                ex.spec().clone(),
                                dgnn_device::ExecMode::CpuOnly,
                            );
                            let pair = [e.src, e.dst];
                            let emb = self.embeddings.table().gather_rows(&pair)?;
                            let x = emb.concat_cols(&emb)?.concat_cols(&emb)?;
                            let new = self.update_rnn.forward(&mut cpu, &x, &emb)?;
                            self.embeddings.update(&mut cpu, &pair, &new)?;
                            let both = new.reshape(&[1, 2 * d])?;
                            let lambda =
                                self.intensity.forward(&mut cpu, &both)?.softplus();
                            checksum += lambda.sum();
                        }
                        Ok(())
                    })?;
                }

                ex.scope("memcpy_d2h", |ex| {
                    ex.transfer(TransferDir::D2H, (batch.len() * d * 4) as u64);
                });
                iterations += 1;
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{social_evolution, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> DyRep {
        DyRep::new(social_evolution(Scale::Tiny, 1), DyRepConfig::default(), 7)
    }

    fn cfg(bs: usize) -> InferenceConfig {
        InferenceConfig::default().with_batch_size(bs).with_max_units(2)
    }

    #[test]
    fn runs_and_produces_finite_intensities() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let s = m.run(&mut ex, &cfg(64)).unwrap();
        assert_eq!(s.iterations, 2);
        assert!(s.checksum.is_finite());
        assert!(s.checksum > 0.0, "softplus intensities are positive");
    }

    #[test]
    fn gpu_utilization_below_two_percent() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(64)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.utilization.busy_fraction < 0.05,
            "DyRep util {}",
            p.utilization.busy_fraction
        );
    }

    #[test]
    fn gpu_never_beats_cpu() {
        for bs in [32usize, 128] {
            let time = |mode| {
                let mut m = build();
                let mut ex = Executor::new(PlatformSpec::default(), mode);
                m.run(&mut ex, &cfg(bs)).unwrap().inference_time
            };
            let cpu = time(ExecMode::CpuOnly);
            let gpu = time(ExecMode::Gpu);
            assert!(gpu >= cpu, "bs={bs}: gpu {gpu} should not beat cpu {cpu}");
        }
    }

    #[test]
    fn embeddings_update_serially() {
        let mut m = build();
        let before = m.embeddings.table().clone();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(32)).unwrap();
        assert_ne!(&before, m.embeddings.table());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(32)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }
}
