//! FLOP and byte estimators for the simulated-kernel cost model.
//!
//! The device layer (`dgnn-device`) prices every kernel as
//! `launch + max(flops / effective_throughput, bytes / bandwidth)`.
//! These helpers centralize the arithmetic so models and layers report
//! consistent work estimates.

/// Bytes per `f32` element.
pub const F32_BYTES: u64 = 4;

/// FLOPs of a dense `[m, k] × [k, n]` matrix multiplication
/// (multiply–add counted as 2 FLOPs).
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Bytes moved by a dense `[m, k] × [k, n]` matmul (read A, read B, write C).
pub fn matmul_bytes(m: usize, k: usize, n: usize) -> u64 {
    F32_BYTES * (m as u64 * k as u64 + k as u64 * n as u64 + m as u64 * n as u64)
}

/// FLOPs of an element-wise op over `len` elements with `ops_per_elem`
/// arithmetic operations each.
pub fn elementwise_flops(len: usize, ops_per_elem: u64) -> u64 {
    len as u64 * ops_per_elem
}

/// Bytes moved by an element-wise op (`n_inputs` reads + one write).
pub fn elementwise_bytes(len: usize, n_inputs: u64) -> u64 {
    F32_BYTES * len as u64 * (n_inputs + 1)
}

/// Bytes of `len` `f32` elements.
pub fn f32_bytes(len: usize) -> u64 {
    F32_BYTES * len as u64
}

/// FLOPs of a row-wise softmax over an `[m, n]` matrix
/// (max, exp, sum, divide ≈ 4 passes).
pub fn softmax_flops(m: usize, n: usize) -> u64 {
    4 * m as u64 * n as u64
}

/// Degree of data parallelism of a GEMM: one lane per output element.
pub fn matmul_parallelism(m: usize, n: usize) -> u64 {
    m as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_counts_fma_as_two() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }

    #[test]
    fn matmul_bytes_counts_three_matrices() {
        assert_eq!(matmul_bytes(2, 3, 4), 4 * (6 + 12 + 8));
    }

    #[test]
    fn elementwise_estimates() {
        assert_eq!(elementwise_flops(10, 3), 30);
        assert_eq!(elementwise_bytes(10, 2), 4 * 10 * 3);
    }

    #[test]
    fn parallelism_is_output_size() {
        assert_eq!(matmul_parallelism(32, 64), 2048);
    }
}
