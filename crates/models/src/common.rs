//! Shared model-execution machinery.

use dgnn_device::{DurationNs, Executor};

use crate::registry::ModelInfo;
use crate::Result;

/// Cap on the number of rows the *functional* tensor math processes per
/// unit of work. Kernel and transfer costs are always priced at the full
/// configured batch size; the representative subset only bounds host-side
/// arithmetic so full-scale sweeps stay fast.
pub const REP_CAP: usize = 32;

/// Clamps a workload size to the representative cap.
pub fn representative(n: usize) -> usize {
    n.clamp(1, REP_CAP)
}

/// Inference configuration shared by all models. Fields a model does not
/// use (e.g. `n_neighbors` for MolDGNN) are ignored by that model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceConfig {
    /// Mini-batch size: events per batch (continuous models), subgraphs
    /// or molecules per batch (ASTGNN/MolDGNN).
    pub batch_size: usize,
    /// Temporal neighbors sampled per node (TGAT, TGN).
    pub n_neighbors: usize,
    /// Number of units (mini-batches or snapshots) to process; the
    /// datasets usually contain more than needed for stable profiles.
    pub max_units: usize,
    /// Seed for model weights and samplers.
    pub seed: u64,
    /// When true, temporal neighbor sampling (TGAT, TGN) is charged as a
    /// parallel critical path fanned out over the batch's roots instead
    /// of a serial per-node loop — the "parallel sampling" ablation. The
    /// paper's profiled frameworks sample serially, so this defaults to
    /// `false`.
    pub parallel_sampling: bool,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            batch_size: 200,
            n_neighbors: 20,
            max_units: 8,
            seed: 42,
            parallel_sampling: false,
        }
    }
}

impl InferenceConfig {
    /// Builder-style batch size override.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style neighbor count override.
    pub fn with_neighbors(mut self, n_neighbors: usize) -> Self {
        self.n_neighbors = n_neighbors;
        self
    }

    /// Builder-style unit-count override.
    pub fn with_max_units(mut self, max_units: usize) -> Self {
        self.max_units = max_units;
        self
    }

    /// Builder-style parallel-sampling toggle (see
    /// [`InferenceConfig::parallel_sampling`]).
    pub fn with_parallel_sampling(mut self, parallel_sampling: bool) -> Self {
        self.parallel_sampling = parallel_sampling;
        self
    }
}

/// Outcome of one inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Units (mini-batches / snapshots) processed.
    pub iterations: usize,
    /// Total simulated time inside the `"inference"` scope.
    pub inference_time: DurationNs,
    /// Mean time per unit — the denominator of the §4.4 warm-up ratios.
    pub unit_time: DurationNs,
    /// Deterministic checksum over representative outputs (numeric
    /// sanity: finite and reproducible).
    pub checksum: f32,
}

impl RunSummary {
    /// Builds a summary from totals.
    pub fn new(iterations: usize, inference_time: DurationNs, checksum: f32) -> Self {
        let unit_time = if iterations > 0 {
            DurationNs::from_nanos(inference_time.as_nanos() / iterations as u64)
        } else {
            DurationNs::ZERO
        };
        RunSummary {
            iterations,
            inference_time,
            unit_time,
            checksum,
        }
    }
}

/// A profiled dynamic graph neural network.
///
/// Implementations price kernels/transfers at full batch size, compute
/// representative numerics, and annotate profiler scopes per the Figure 7
/// module taxonomy.
pub trait DgnnModel {
    /// Model name (lowercase, e.g. `"tgat"`).
    fn name(&self) -> &'static str;

    /// Table 1 metadata.
    fn info(&self) -> ModelInfo;

    /// Total parameter bytes (drives model-init warm-up).
    fn param_bytes(&self) -> u64;

    /// Number of parameter tensors (drives model-init warm-up).
    fn param_tensors(&self) -> u64;

    /// Peak activation bytes for a run with `cfg` (drives per-run
    /// allocation warm-up, Table 2).
    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64;

    /// Runs inference inside an `"inference"` scope. Assumes warm-up has
    /// already been performed (see [`DgnnModel::run`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError`] on shape or configuration problems.
    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary>;

    /// Full measured run: model initialization, activation allocation,
    /// then inference — the sequence the paper profiles end-to-end.
    ///
    /// # Errors
    ///
    /// Propagates [`DgnnModel::infer`] errors.
    fn run(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        // Warm-up gets its own top-level scope so that the run's top-level
        // scopes tile the timeline: warmup + inference == Executor::now().
        ex.scope("warmup", |ex| {
            ex.model_init(self.param_bytes(), self.param_tensors());
            ex.alloc_warmup(self.activation_bytes(cfg));
        });
        self.infer(ex, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_is_capped_and_positive() {
        assert_eq!(representative(0), 1);
        assert_eq!(representative(5), 5);
        assert_eq!(representative(100_000), REP_CAP);
    }

    #[test]
    fn summary_divides_unit_time() {
        let s = RunSummary::new(4, DurationNs::from_nanos(100), 1.0);
        assert_eq!(s.unit_time.as_nanos(), 25);
        let z = RunSummary::new(0, DurationNs::from_nanos(100), 1.0);
        assert_eq!(z.unit_time, DurationNs::ZERO);
    }

    #[test]
    fn config_builders_chain() {
        let c = InferenceConfig::default()
            .with_batch_size(4_000)
            .with_neighbors(100)
            .with_max_units(2);
        assert_eq!(c.batch_size, 4_000);
        assert_eq!(c.n_neighbors, 100);
        assert_eq!(c.max_units, 2);
    }
}
