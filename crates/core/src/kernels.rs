//! Nsight-style CUDA kernel summary: per-kernel-name statistics.

use std::collections::BTreeMap;

use dgnn_device::{DurationNs, Timeline};

use crate::tablefmt::TextTable;

/// Aggregate statistics for one kernel name.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStat {
    /// Kernel label.
    pub name: &'static str,
    /// Invocations.
    pub count: usize,
    /// Total GPU time.
    pub total: DurationNs,
    /// Mean duration.
    pub mean: DurationNs,
    /// Mean occupancy across invocations.
    pub mean_occupancy: f64,
    /// Share of total kernel time.
    pub share: f64,
}

/// Summarizes GPU kernels by name, like Nsight Systems' "CUDA GPU Kernel
/// Summary" view — sorted by total time, largest first. The accumulator
/// is a `BTreeMap` so kernels tied on total time keep a stable
/// (name-ordered) position across runs.
pub fn kernel_summary(timeline: &Timeline) -> Vec<KernelStat> {
    let mut acc: BTreeMap<&'static str, (usize, u64, f64)> = BTreeMap::new();
    let mut grand_total = 0u64;
    for e in timeline.events() {
        if !e.category.is_gpu_compute() {
            continue;
        }
        let d = e.duration().as_nanos();
        grand_total += d;
        let entry = acc.entry(e.label).or_insert((0, 0, 0.0));
        entry.0 += 1;
        entry.1 += d;
        entry.2 += e.occupancy;
    }
    let mut stats: Vec<KernelStat> = acc
        .into_iter()
        .map(|(name, (count, total, occ))| KernelStat {
            name,
            count,
            total: DurationNs::from_nanos(total),
            mean: DurationNs::from_nanos(total / count.max(1) as u64),
            mean_occupancy: occ / count.max(1) as f64,
            share: if grand_total > 0 {
                total as f64 / grand_total as f64
            } else {
                0.0
            },
        })
        .collect();
    stats.sort_by_key(|s| std::cmp::Reverse(s.total));
    stats
}

/// Renders the kernel summary as a text table (top `limit` kernels).
pub fn render_kernel_summary(timeline: &Timeline, title: &str, limit: usize) -> String {
    let mut t = TextTable::new(
        title,
        &[
            "kernel",
            "calls",
            "total (ms)",
            "mean (µs)",
            "occupancy",
            "share",
        ],
    );
    for s in kernel_summary(timeline).into_iter().take(limit) {
        t.row(&[
            s.name.to_string(),
            s.count.to_string(),
            format!("{:.3}", s.total.as_millis_f64()),
            format!("{:.1}", s.mean.as_nanos() as f64 / 1e3),
            format!("{:.1}%", s.mean_occupancy * 100.0),
            format!("{:.1}%", s.share * 100.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, KernelDesc, PlatformSpec};

    fn run() -> Executor {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        for _ in 0..3 {
            ex.launch(KernelDesc::gemm("big", 512, 512, 512));
        }
        for _ in 0..10 {
            ex.launch(KernelDesc::elementwise("relu", 1024, 1, 1));
        }
        ex
    }

    #[test]
    fn summary_groups_and_sorts_by_total_time() {
        let ex = run();
        let stats = kernel_summary(ex.timeline());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "big");
        assert_eq!(stats[0].count, 3);
        assert_eq!(stats[1].count, 10);
        let share_sum: f64 = stats.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_times_are_consistent() {
        let ex = run();
        for s in kernel_summary(ex.timeline()) {
            assert_eq!(s.mean.as_nanos(), s.total.as_nanos() / s.count as u64);
            assert!((0.0..=1.0).contains(&s.mean_occupancy));
        }
    }

    #[test]
    fn render_lists_top_kernels() {
        let ex = run();
        let s = render_kernel_summary(ex.timeline(), "kernels", 1);
        assert!(s.contains("big"));
        assert!(!s.contains("relu"), "limit of 1 hides the second kernel");
    }

    #[test]
    fn empty_timeline_is_empty_summary() {
        let ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        assert!(kernel_summary(ex.timeline()).is_empty());
    }
}
