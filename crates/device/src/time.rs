//! Virtual time: all durations in the simulator are integer nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time in nanoseconds.
///
/// The newtype keeps simulated time from being confused with host
/// wall-clock time anywhere in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DurationNs(u64);

impl DurationNs {
    /// Zero duration.
    pub const ZERO: DurationNs = DurationNs(0);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        DurationNs(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        DurationNs(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        DurationNs(ms * 1_000_000)
    }

    /// Constructs from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    #[expect(clippy::cast_possible_truncation, reason = "rounded ns count fits u64")]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        DurationNs((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.min(rhs.0))
    }
}

impl Add for DurationNs {
    type Output = DurationNs;
    fn add(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0 + rhs.0)
    }
}

impl AddAssign for DurationNs {
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 += rhs.0;
    }
}

impl Sub for DurationNs {
    type Output = DurationNs;
    fn sub(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl Sum for DurationNs {
    fn sum<I: Iterator<Item = DurationNs>>(iter: I) -> DurationNs {
        DurationNs(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for DurationNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(DurationNs::from_micros(5).as_nanos(), 5_000);
        assert_eq!(DurationNs::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(DurationNs::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((DurationNs::from_millis(3).as_millis_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = DurationNs::from_nanos(10);
        let b = DurationNs::from_nanos(3);
        assert_eq!((a + b).as_nanos(), 13);
        assert_eq!((a - b).as_nanos(), 7);
        assert_eq!(b.saturating_sub(a), DurationNs::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "duration underflow")]
    fn sub_underflow_panics() {
        let _ = DurationNs::from_nanos(1) - DurationNs::from_nanos(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(DurationNs::from_nanos(12).to_string(), "12ns");
        assert_eq!(DurationNs::from_micros(12).to_string(), "12.000µs");
        assert_eq!(DurationNs::from_millis(12).to_string(), "12.000ms");
        assert_eq!(DurationNs::from_secs_f64(1.2).to_string(), "1.200s");
    }

    #[test]
    fn sum_accumulates() {
        let total: DurationNs = (1..=4).map(DurationNs::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
