//! LINT2 adversarial fixture: host time, entropy and environment reads
//! inside simulated code. Any of these makes a run unreproducible.

pub fn jitter_ns() -> u128 {
    let t0 = std::time::Instant::now();
    let _stamp = std::time::SystemTime::now();
    let _threads = std::env::var("NUM_THREADS").ok();
    t0.elapsed().as_nanos()
}
