//! LINT2 clean twin: the bench harness is the one allowlisted owner of
//! the wall clock — timings it reads are report-only and never feed
//! back into simulated pricing.

pub fn walltime() -> std::time::Instant {
    std::time::Instant::now()
}
