//! The paper's headline quantitative claims, asserted against the
//! simulator. Each test names the paper section/figure it checks.
//!
//! Absolute values come from a simulator, so the assertions check the
//! paper's *shapes*: orderings, dominance relations and monotone trends.

use dgnn_suite::datasets::{iso17, social_evolution, wikipedia, Scale};
use dgnn_suite::device::{ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{
    DgnnModel, DyRep, DyRepConfig, InferenceConfig, MolDgnn, MolDgnnConfig, Tgat, TgatConfig, Tgn,
    TgnConfig,
};
use dgnn_suite::profile::{BottleneckKind, InferenceProfile};

const SEED: u64 = 21;

fn gpu_run(model: &mut dyn DgnnModel, cfg: &InferenceConfig) -> (InferenceProfile, Executor) {
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    model.run(&mut ex, cfg).expect("inference succeeds");
    (InferenceProfile::capture(&ex, "inference"), ex)
}

#[test]
fn sec42_tgat_sampling_dominates_inference() {
    // Paper: neighborhood sampling is 83%→94% of TGAT inference time.
    let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(200)
        .with_max_units(3);
    let (p, _) = gpu_run(&mut m, &cfg);
    let share = p.breakdown.share_of("sampling");
    assert!((0.70..=0.97).contains(&share), "sampling share {share}");
}

#[test]
fn sec42_tgat_total_time_flat_in_batch_size() {
    // Paper Fig 8a: increasing the mini-batch size does not reduce total
    // inference time over the whole dataset (sampling is the bottleneck).
    let total_time = |bs: usize| {
        let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
        // Whole dataset: units large enough to cover it at every bs.
        let cfg = InferenceConfig::default()
            .with_batch_size(bs)
            .with_max_units(1_000);
        let (p, _) = gpu_run(&mut m, &cfg);
        p.inference_time
    };
    let t_small = total_time(200);
    let t_large = total_time(800);
    let ratio = t_small.as_nanos() as f64 / t_large.as_nanos() as f64;
    assert!(
        (0.8..=1.4).contains(&ratio),
        "total time should stay roughly flat: 200→{t_small}, 800→{t_large}"
    );
}

#[test]
fn sec43_tgat_data_movement_explodes_past_k100() {
    // Paper: past ~100 sampled neighbors, transfer time grows rapidly
    // (quadratic in k).
    let pcie_time = |k: usize| {
        let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
        let cfg = InferenceConfig::default()
            .with_batch_size(100)
            .with_neighbors(k)
            .with_max_units(2);
        let (_, ex) = gpu_run(&mut m, &cfg);
        ex.timeline().busy_time(dgnn_suite::device::Place::Pcie)
    };
    let t20 = pcie_time(20);
    let t200 = pcie_time(200);
    assert!(
        t200.as_nanos() > 40 * t20.as_nanos(),
        "k=200 transfers ({t200}) should dwarf k=20 ({t20})"
    );
}

#[test]
fn sec43_tgn_message_passing_is_top_module_and_data_movement_flagged() {
    // Paper Fig 7a: message passing dominates TGN at large batches;
    // the data-movement bottleneck fires.
    let mut m = Tgn::new(wikipedia(Scale::Tiny, SEED), TgnConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(1_024)
        .with_neighbors(10)
        .with_max_units(1);
    let (p, _) = gpu_run(&mut m, &cfg);
    assert_eq!(p.breakdown.entries()[0].module, "message_passing");
    assert!(p
        .findings
        .iter()
        .any(|f| f.kind == BottleneckKind::DataMovement));
}

#[test]
fn sec43_moldgnn_memcpy_dominates_gpu_working_time() {
    // Paper Fig 7b: memcpy is 80–90% of MolDGNN's GPU working time at
    // realistic batch sizes.
    let mut m = MolDgnn::new(iso17(Scale::Tiny, SEED), MolDgnnConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(512)
        .with_max_units(1);
    let (_, ex) = gpu_run(&mut m, &cfg);
    let tl = ex.timeline();
    let memcpy = tl.busy_time(dgnn_suite::device::Place::Pcie).as_nanos() as f64;
    let kernels = tl
        .category_time(dgnn_suite::device::EventCategory::is_gpu_compute)
        .as_nanos() as f64;
    let share = memcpy / (memcpy + kernels);
    assert!(
        (0.6..=0.98).contains(&share),
        "memcpy share of GPU working time {share}"
    );
}

#[test]
fn sec41_dyrep_gpu_never_outperforms_cpu() {
    // Paper Fig 8: DyRep inference on GPU does not beat the CPU at any
    // batch size.
    for bs in [16usize, 64, 160] {
        let time = |mode| {
            let mut m = DyRep::new(
                social_evolution(Scale::Tiny, SEED),
                DyRepConfig::default(),
                SEED,
            );
            let mut ex = Executor::new(PlatformSpec::default(), mode);
            let cfg = InferenceConfig::default()
                .with_batch_size(bs)
                .with_max_units(1);
            m.run(&mut ex, &cfg).expect("inference").inference_time
        };
        assert!(
            time(ExecMode::Gpu) >= time(ExecMode::CpuOnly),
            "bs={bs}: GPU should not win"
        );
    }
}

#[test]
fn sec44_one_time_warmup_is_tens_of_batches() {
    // Paper: GPU warm-up ≈ 86× one TGAT mini-batch.
    let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(200)
        .with_max_units(4);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let s = m.run(&mut ex, &cfg).expect("inference");
    let p = InferenceProfile::capture(&ex, "inference");
    let ratio = p.warmup.one_time_warmup_ratio(s.unit_time);
    assert!(
        (20.0..=500.0).contains(&ratio),
        "warm-up/unit ratio {ratio} out of the paper's order of magnitude"
    );
}

#[test]
fn sec44_batch_warmup_share_grows_with_batch_size() {
    // Paper Table 2: for a fixed workload, warm-up share of GPU working
    // time grows with batch size.
    let share = |bs: usize| {
        let mut m = Tgn::new(wikipedia(Scale::Tiny, SEED), TgnConfig::default(), SEED);
        let units = (2_048 / bs).max(1);
        let cfg = InferenceConfig::default()
            .with_batch_size(bs)
            .with_neighbors(10)
            .with_max_units(units);
        let (p, _) = gpu_run(&mut m, &cfg);
        p.warmup.batch_warmup_share()
    };
    let s8 = share(8);
    let s2048 = share(2_048);
    assert!(s2048 > s8, "warm-up share should grow: {s8} -> {s2048}");
}

#[test]
fn sec41_utilization_ordering_matches_paper() {
    // Paper §4.1: TGAT (5–6%) runs hotter than DyRep (<2%) and MolDGNN
    // (<1%).
    let util = |name: &str| -> f64 {
        let (p, _) = match name {
            "tgat" => {
                let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
                gpu_run(
                    &mut m,
                    &InferenceConfig::default()
                        .with_batch_size(200)
                        .with_max_units(2),
                )
            }
            "dyrep" => {
                let mut m = DyRep::new(
                    social_evolution(Scale::Tiny, SEED),
                    DyRepConfig::default(),
                    SEED,
                );
                gpu_run(
                    &mut m,
                    &InferenceConfig::default()
                        .with_batch_size(64)
                        .with_max_units(1),
                )
            }
            _ => {
                let mut m = MolDgnn::new(iso17(Scale::Tiny, SEED), MolDgnnConfig::default(), SEED);
                gpu_run(
                    &mut m,
                    &InferenceConfig::default()
                        .with_batch_size(512)
                        .with_max_units(1),
                )
            }
        };
        p.utilization.busy_fraction
    };
    let tgat = util("tgat");
    let dyrep = util("dyrep");
    let moldgnn = util("moldgnn");
    assert!(tgat > dyrep, "tgat {tgat} vs dyrep {dyrep}");
    assert!(tgat > moldgnn, "tgat {tgat} vs moldgnn {moldgnn}");
    assert!(tgat < 0.12, "tgat stays single-digit: {tgat}");
    assert!(dyrep < 0.05, "dyrep {dyrep}");
    assert!(moldgnn < 0.05, "moldgnn {moldgnn}");
}
