//! Two-tier streaming adjacency: immutable CSR base + append-only delta
//! log, with deterministic threshold compaction.
//!
//! A frozen [`TemporalAdjacency`](crate::TemporalAdjacency) is the right index for offline
//! inference, but the paper's dynamic-graph setting is most interesting
//! when events arrive *while* queries are being served. Rebuilding the
//! CSR per event is O(total history); a mutable CSR would invalidate
//! borrowed rows under readers. [`StreamingAdjacency`] takes the
//! LSM-style middle road:
//!
//! * **Base tier** — compacted CSR slabs, identical layout to
//!   [`TemporalAdjacency`](crate::TemporalAdjacency) plus one `event_idx` slab recording which
//!   global event produced each entry.
//! * **Delta tier** — append-only struct-of-arrays log in arrival
//!   order, plus a per-node position index so a node's delta history is
//!   recoverable without scanning the log.
//! * **Compaction** — when the delta log holds `threshold` events,
//!   [`StreamingAdjacency::append`] folds the whole log into fresh base
//!   slabs. The trigger depends only on the event sequence, so replays
//!   compact at identical points.
//!
//! # Read-through views and byte-identity
//!
//! [`StreamingAdjacency::view_prefix`] borrows a [`StreamingView`]: a
//! read snapshot exposing exactly the first `visible` events, however
//! they are currently split between tiers. Because appends are
//! time-monotone and both tiers preserve arrival order, a node's
//! visible history is `base-row prefix ++ delta-row prefix` — the same
//! entries in the same order as a frozen [`TemporalAdjacency`](crate::TemporalAdjacency) built
//! from that event prefix. [`crate::TemporalView`] is implemented over
//! that composition with the same bisection step accounting, so
//! sampling through a view is **byte-identical** — samples and
//! [`crate::SampleCost`] both — to sampling the frozen graph, before
//! and after compaction, at any thread count.
//!
//! # Cost accounting
//!
//! Mutations return [`IngestCost`] receipts (ops, sequential bytes,
//! irregular bytes) that the serving layer prices through the
//! `Executor` as Host-lane work, so ingestion and query sampling
//! contend on the same virtual clock.

use crate::error::GraphError;
use crate::sampler::TemporalView;
use crate::{EventStream, NodeId, TemporalEvent};

/// Bytes of one CSR entry across the four slabs (neighbor, time,
/// feature row, event index).
const ENTRY_BYTES: u64 = 32;

/// Host-side work performed by an append or a compaction, in the same
/// units as `dgnn-device`'s `HostWork` so the serving layer can price
/// it on the Host lane without conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestCost {
    /// Comparison/index operations (bounds checks, cursor updates).
    pub ops: u64,
    /// Bytes touched sequentially (slab tail appends, slab rewrites).
    pub seq_bytes: u64,
    /// Bytes touched with irregular access (per-node row indexes).
    pub irregular_bytes: u64,
}

impl IngestCost {
    /// Accumulates another cost.
    pub fn add(&mut self, other: IngestCost) {
        self.ops += other.ops;
        self.seq_bytes += other.seq_bytes;
        self.irregular_bytes += other.irregular_bytes;
    }
}

/// Receipt of one [`StreamingAdjacency::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Global index the appended event received (0-based, dense).
    pub event_index: usize,
    /// Cost of the append itself.
    pub cost: IngestCost,
    /// Cost of the threshold compaction the append triggered, if any.
    pub compaction: Option<IngestCost>,
}

/// Appendable two-tier temporal adjacency (see module docs).
///
/// ```
/// use dgnn_graph::{
///     EventStream, NeighborSampler, SampleStrategy, StreamingAdjacency,
///     TemporalAdjacency, TemporalEvent,
/// };
///
/// let ev = |src, dst, time, feature_idx| TemporalEvent { src, dst, time, feature_idx };
/// let prefix = EventStream::new(3, vec![ev(0, 1, 1.0, 0), ev(1, 2, 2.0, 1)]).unwrap();
/// let mut live = StreamingAdjacency::from_stream(&prefix, 4);
/// let receipt = live.append(ev(0, 2, 3.0, 2)).unwrap();
/// assert_eq!(receipt.event_index, 2);
/// assert_eq!(live.delta_events(), 1);
///
/// // Sampling through the two tiers is byte-identical to a frozen
/// // graph built from the same three events.
/// let full = EventStream::new(
///     3,
///     vec![ev(0, 1, 1.0, 0), ev(1, 2, 2.0, 1), ev(0, 2, 3.0, 2)],
/// )
/// .unwrap();
/// let frozen = TemporalAdjacency::from_stream(&full);
/// let sampler = NeighborSampler::new(SampleStrategy::Uniform, 7);
/// assert_eq!(
///     sampler.sample(&live.view(), 0, 4.0, 5),
///     sampler.sample(&frozen, 0, 4.0, 5),
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingAdjacency {
    n_nodes: usize,
    threshold: usize,
    // Base tier: compacted CSR slabs (layout of `TemporalAdjacency`
    // plus the per-entry global event index).
    base_offsets: Vec<usize>,
    base_neighbors: Vec<NodeId>,
    base_times: Vec<f64>,
    base_feature_idx: Vec<usize>,
    base_event_idx: Vec<usize>,
    // Delta tier: append-order slabs + per-node position index.
    delta_rows: Vec<Vec<usize>>,
    delta_neighbors: Vec<NodeId>,
    delta_times: Vec<f64>,
    delta_feature_idx: Vec<usize>,
    delta_event_idx: Vec<usize>,
    delta_events: usize,
    total_events: usize,
    compactions: usize,
    watermark: Option<f64>,
}

impl StreamingAdjacency {
    /// Creates an empty store over `n_nodes` nodes that compacts every
    /// time the delta log reaches `threshold` events.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is zero — the delta log must be allowed
    /// to hold at least one event between compactions.
    pub fn new(n_nodes: usize, threshold: usize) -> Self {
        assert!(threshold >= 1, "compaction threshold must be >= 1");
        StreamingAdjacency {
            n_nodes,
            threshold,
            base_offsets: vec![0; n_nodes + 1],
            base_neighbors: Vec::new(),
            base_times: Vec::new(),
            base_feature_idx: Vec::new(),
            base_event_idx: Vec::new(),
            delta_rows: vec![Vec::new(); n_nodes],
            delta_neighbors: Vec::new(),
            delta_times: Vec::new(),
            delta_feature_idx: Vec::new(),
            delta_event_idx: Vec::new(),
            delta_events: 0,
            total_events: 0,
            compactions: 0,
            watermark: None,
        }
    }

    /// Builds a store whose base tier holds the whole `stream` (already
    /// compacted) and whose delta log is empty — the usual starting
    /// point for serving: a historical prefix plus live ingestion.
    pub fn from_stream(stream: &EventStream, threshold: usize) -> Self {
        let mut s = StreamingAdjacency::new(stream.n_nodes(), threshold);
        let mut degree = vec![0usize; s.n_nodes];
        for e in stream.events() {
            degree[e.src] += 1;
            degree[e.dst] += 1;
        }
        let mut acc = 0usize;
        for (v, &d) in degree.iter().enumerate() {
            acc += d;
            s.base_offsets[v + 1] = acc;
        }
        s.base_neighbors = vec![0 as NodeId; acc];
        s.base_times = vec![0.0f64; acc];
        s.base_feature_idx = vec![0usize; acc];
        s.base_event_idx = vec![0usize; acc];
        let mut cursor = s.base_offsets[..s.n_nodes].to_vec();
        for (i, e) in stream.events().iter().enumerate() {
            for (from, to) in [(e.src, e.dst), (e.dst, e.src)] {
                let at = cursor[from];
                s.base_neighbors[at] = to;
                s.base_times[at] = e.time;
                s.base_feature_idx[at] = e.feature_idx;
                s.base_event_idx[at] = i;
                cursor[from] += 1;
            }
        }
        s.total_events = stream.len();
        s.watermark = stream.events().last().map(|e| e.time);
        s
    }

    /// Number of nodes indexed (fixed at construction).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Events folded into the base tier.
    pub fn base_events(&self) -> usize {
        self.total_events - self.delta_events
    }

    /// Events currently in the delta log.
    pub fn delta_events(&self) -> usize {
        self.delta_events
    }

    /// Total events ingested (base + delta).
    pub fn total_events(&self) -> usize {
        self.total_events
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// The compaction threshold (delta events that trigger a fold).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Time of the most recently ingested event; `None` when empty.
    /// Appends must be monotone in this watermark.
    pub fn watermark(&self) -> Option<f64> {
        self.watermark
    }

    /// Appends one event to the delta log, compacting first into the
    /// base tier when the log reaches the threshold. Returns a receipt
    /// carrying the event's global index and the Host-lane cost(s).
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] — an endpoint is not a node.
    /// * [`GraphError::InvalidTimestamp`] — the time is not finite.
    /// * [`GraphError::UnsortedEvents`] — the time precedes the
    ///   watermark (ingestion must be time-monotone, like the sorted
    ///   [`EventStream`] the base was built from).
    pub fn append(&mut self, event: TemporalEvent) -> Result<AppendReceipt, GraphError> {
        for node in [event.src, event.dst] {
            if node >= self.n_nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node,
                    n_nodes: self.n_nodes,
                });
            }
        }
        if !event.time.is_finite() {
            return Err(GraphError::InvalidTimestamp {
                index: self.total_events,
            });
        }
        if let Some(w) = self.watermark {
            if event.time < w {
                return Err(GraphError::UnsortedEvents {
                    index: self.total_events,
                });
            }
        }

        let event_index = self.total_events;
        for (from, to) in [(event.src, event.dst), (event.dst, event.src)] {
            self.delta_rows[from].push(self.delta_neighbors.len());
            self.delta_neighbors.push(to);
            self.delta_times.push(event.time);
            self.delta_feature_idx.push(event.feature_idx);
            self.delta_event_idx.push(event_index);
        }
        self.delta_events += 1;
        self.total_events += 1;
        self.watermark = Some(event.time);

        // Two slab-tail appends are sequential; the two per-node row
        // index pushes each chase one scattered cache line.
        let cost = IngestCost {
            ops: 8,
            seq_bytes: 2 * ENTRY_BYTES,
            irregular_bytes: 128,
        };
        let compaction = (self.delta_events >= self.threshold).then(|| self.compact());
        Ok(AppendReceipt {
            event_index,
            cost,
            compaction,
        })
    }

    /// Folds the whole delta log into fresh base slabs, preserving
    /// per-row entry order (base prefix, then delta entries in arrival
    /// order). Views are unaffected: a [`StreamingView`] filters both
    /// tiers by event index, so the same prefix reads the same entries
    /// before and after. Returns the Host-lane cost; no-op (zero cost)
    /// when the log is empty.
    pub fn compact(&mut self) -> IngestCost {
        if self.delta_events == 0 {
            return IngestCost::default();
        }
        let merged_entries = self.base_neighbors.len() + self.delta_neighbors.len();
        let mut offsets = vec![0usize; self.n_nodes + 1];
        let mut neighbors = vec![0 as NodeId; merged_entries];
        let mut times = vec![0.0f64; merged_entries];
        let mut feature_idx = vec![0usize; merged_entries];
        let mut event_idx = vec![0usize; merged_entries];
        let mut at = 0usize;
        for v in 0..self.n_nodes {
            let b = self.base_offsets[v]..self.base_offsets[v + 1];
            let width = b.len() + self.delta_rows[v].len();
            for i in b {
                neighbors[at] = self.base_neighbors[i];
                times[at] = self.base_times[i];
                feature_idx[at] = self.base_feature_idx[i];
                event_idx[at] = self.base_event_idx[i];
                at += 1;
            }
            for &p in &self.delta_rows[v] {
                neighbors[at] = self.delta_neighbors[p];
                times[at] = self.delta_times[p];
                feature_idx[at] = self.delta_feature_idx[p];
                event_idx[at] = self.delta_event_idx[p];
                at += 1;
            }
            offsets[v + 1] = offsets[v] + width;
        }
        debug_assert_eq!(at, merged_entries);

        let delta_entries = self.delta_neighbors.len() as u64;
        let cost = IngestCost {
            ops: merged_entries as u64 + self.n_nodes as u64,
            // Every merged entry is read once and written once.
            seq_bytes: 2 * merged_entries as u64 * ENTRY_BYTES,
            // Delta entries are gathered through the per-node position
            // index — one scattered line each.
            irregular_bytes: delta_entries * 64,
        };

        self.base_offsets = offsets;
        self.base_neighbors = neighbors;
        self.base_times = times;
        self.base_feature_idx = feature_idx;
        self.base_event_idx = event_idx;
        for row in &mut self.delta_rows {
            row.clear();
        }
        self.delta_neighbors.clear();
        self.delta_times.clear();
        self.delta_feature_idx.clear();
        self.delta_event_idx.clear();
        self.delta_events = 0;
        self.compactions += 1;
        cost
    }

    /// Borrows a read snapshot over every ingested event. Equivalent to
    /// `view_prefix(total_events())`.
    pub fn view(&self) -> StreamingView<'_> {
        self.view_prefix(self.total_events)
    }

    /// Borrows a read snapshot exposing only the first `visible`
    /// events, wherever they currently live (base or delta). Sampling
    /// through the snapshot is byte-identical to sampling a frozen
    /// [`TemporalAdjacency`](crate::TemporalAdjacency) built from that event prefix.
    ///
    /// The snapshot is a plain borrow — no slab is cloned — and is
    /// `Sync`, so batch sampling can fan it out across threads.
    ///
    /// # Panics
    ///
    /// Panics when `visible` exceeds the events ingested so far.
    pub fn view_prefix(&self, visible: usize) -> StreamingView<'_> {
        assert!(
            visible <= self.total_events,
            "view of {visible} events but only {} ingested",
            self.total_events
        );
        StreamingView {
            store: self,
            visible,
        }
    }
}

/// Borrowed read snapshot of a [`StreamingAdjacency`] prefix.
///
/// Implements [`TemporalView`], so every `NeighborSampler` method —
/// including the parallel batch APIs — reads through both tiers without
/// copying them. Obtain one with [`StreamingAdjacency::view`] or
/// [`StreamingAdjacency::view_prefix`].
#[derive(Debug, Clone, Copy)]
pub struct StreamingView<'a> {
    store: &'a StreamingAdjacency,
    visible: usize,
}

impl StreamingView<'_> {
    /// Number of events this snapshot exposes.
    pub fn visible_events(&self) -> usize {
        self.visible
    }

    /// Visible entry counts of `node` in (base, delta): entries whose
    /// producing event index precedes the visibility horizon. Both row
    /// segments store event indexes in increasing order, so each prefix
    /// length is one bisection.
    fn visible_split(&self, node: NodeId) -> (usize, usize) {
        let s = self.store;
        let row = &s.base_event_idx[s.base_offsets[node]..s.base_offsets[node + 1]];
        let base = row.partition_point(|&e| e < self.visible);
        let delta = s.delta_rows[node].partition_point(|&p| s.delta_event_idx[p] < self.visible);
        (base, delta)
    }
}

impl TemporalView for StreamingView<'_> {
    fn n_nodes(&self) -> usize {
        self.store.n_nodes
    }

    fn degree(&self, node: NodeId) -> usize {
        let (base, delta) = self.visible_split(node);
        base + delta
    }

    fn entry(&self, node: NodeId, i: usize) -> (NodeId, f64, usize) {
        let s = self.store;
        let (base, _) = self.visible_split(node);
        if i < base {
            let at = s.base_offsets[node] + i;
            (
                s.base_neighbors[at],
                s.base_times[at],
                s.base_feature_idx[at],
            )
        } else {
            let p = s.delta_rows[node][i - base];
            (
                s.delta_neighbors[p],
                s.delta_times[p],
                s.delta_feature_idx[p],
            )
        }
    }

    fn count_before(&self, node: NodeId, t: f64) -> (usize, u64) {
        let s = self.store;
        let (base, delta) = self.visible_split(node);
        let len = base + delta;
        if len == 0 {
            return (0, 0);
        }
        // The visible row is `base prefix ++ delta prefix`, globally
        // time-sorted (appends are watermark-monotone), so the strict
        // lower bound splits across the two segments. The step count is
        // a function of the *visible row length* alone — the same
        // bisection a frozen CSR of this prefix would pay.
        let b0 = s.base_offsets[node];
        let in_base = s.base_times[b0..b0 + base].partition_point(|&x| x < t);
        let in_delta = s.delta_rows[node][..delta].partition_point(|&p| s.delta_times[p] < t);
        #[expect(clippy::cast_possible_truncation, reason = "log2 of a length fits u64")]
        let steps = (len as f64).log2().ceil() as u64 + 1;
        (in_base + in_delta, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NeighborSampler, SampleStrategy, TemporalAdjacency};

    fn ev(src: usize, dst: usize, time: f64, feature_idx: usize) -> TemporalEvent {
        TemporalEvent {
            src,
            dst,
            time,
            feature_idx,
        }
    }

    fn events() -> Vec<TemporalEvent> {
        vec![
            ev(0, 1, 1.0, 0),
            ev(0, 2, 2.0, 1),
            ev(1, 2, 3.0, 2),
            ev(0, 3, 4.0, 3),
            ev(2, 3, 5.0, 4),
            ev(1, 3, 5.0, 5),
        ]
    }

    #[test]
    fn append_grows_the_log_and_compacts_at_threshold() {
        let mut s = StreamingAdjacency::new(4, 3);
        for (i, e) in events().into_iter().enumerate() {
            let r = s.append(e).unwrap();
            assert_eq!(r.event_index, i);
        }
        // Six appends with threshold 3 → two compactions, empty log.
        assert_eq!(s.compactions(), 2);
        assert_eq!(s.delta_events(), 0);
        assert_eq!(s.base_events(), 6);
        assert_eq!(s.total_events(), 6);
        assert_eq!(s.watermark(), Some(5.0));
    }

    #[test]
    fn append_rejects_bad_events() {
        let mut s = StreamingAdjacency::new(3, 8);
        assert!(matches!(
            s.append(ev(0, 3, 1.0, 0)),
            Err(GraphError::NodeOutOfBounds { node: 3, .. })
        ));
        assert!(matches!(
            s.append(ev(0, 1, f64::NAN, 0)),
            Err(GraphError::InvalidTimestamp { .. })
        ));
        s.append(ev(0, 1, 2.0, 0)).unwrap();
        assert!(matches!(
            s.append(ev(1, 2, 1.5, 1)),
            Err(GraphError::UnsortedEvents { index: 1 })
        ));
        // Equal times are fine (ties keep arrival order).
        s.append(ev(1, 2, 2.0, 1)).unwrap();
    }

    #[test]
    fn view_matches_frozen_prefix_at_every_split() {
        let all = events();
        for split in 0..=all.len() {
            let prefix = EventStream::new(4, all[..split].to_vec()).unwrap();
            let mut live = StreamingAdjacency::from_stream(&prefix, 100);
            for e in &all[split..] {
                live.append(*e).unwrap();
            }
            for visible in 0..=all.len() {
                let frozen = TemporalAdjacency::from_stream(
                    &EventStream::new(4, all[..visible].to_vec()).unwrap(),
                );
                let view = live.view_prefix(visible);
                for node in 0..4 {
                    assert_eq!(view.degree(node), TemporalView::degree(&frozen, node));
                    for t in [0.5, 2.0, 3.5, 6.0] {
                        assert_eq!(
                            TemporalView::count_before(&view, node, t),
                            TemporalView::count_before(&frozen, node, t),
                            "split {split} visible {visible} node {node} t {t}"
                        );
                    }
                    for i in 0..view.degree(node) {
                        assert_eq!(view.entry(node, i), TemporalView::entry(&frozen, node, i));
                    }
                }
            }
        }
    }

    #[test]
    fn compaction_does_not_change_what_a_view_reads() {
        let all = events();
        let mut live = StreamingAdjacency::new(4, 100);
        for e in &all {
            live.append(*e).unwrap();
        }
        let sampler = NeighborSampler::new(SampleStrategy::Uniform, 5);
        let before: Vec<_> = (0..4)
            .map(|n| sampler.sample(&live.view_prefix(4), n, 9.0, 6))
            .collect();
        let cost = live.compact();
        assert!(cost.seq_bytes > 0);
        assert_eq!(live.delta_events(), 0);
        let after: Vec<_> = (0..4)
            .map(|n| sampler.sample(&live.view_prefix(4), n, 9.0, 6))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn empty_compaction_is_free() {
        let mut s = StreamingAdjacency::new(2, 4);
        assert_eq!(s.compact(), IngestCost::default());
        assert_eq!(s.compactions(), 0);
    }

    #[test]
    #[should_panic(expected = "only 1 ingested")]
    fn view_beyond_ingested_panics() {
        let mut s = StreamingAdjacency::new(2, 4);
        s.append(ev(0, 1, 1.0, 0)).unwrap();
        let _ = s.view_prefix(2);
    }
}
