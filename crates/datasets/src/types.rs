//! Dataset container types shared by all generators.

use dgnn_graph::{EventStream, Graph, SnapshotSequence};
use dgnn_tensor::Tensor;

/// A continuous-time interaction dataset (JODIE format): an event stream
/// plus node and per-event edge features. Consumed by JODIE, TGN, TGAT,
/// DyRep and LDG.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalDataset {
    /// Dataset name (e.g. `"wikipedia"`).
    pub name: &'static str,
    /// Time-sorted interaction events.
    pub stream: EventStream,
    /// Static node features, `[n_nodes, node_dim]`.
    pub node_features: Tensor,
    /// Per-event edge features, `[n_events, edge_dim]`.
    pub edge_features: Tensor,
}

impl TemporalDataset {
    /// Node feature dimension.
    pub fn node_dim(&self) -> usize {
        self.node_features.dims()[1]
    }

    /// Edge feature dimension.
    pub fn edge_dim(&self) -> usize {
        self.edge_features.dims()[1]
    }
}

/// A discrete-time snapshot dataset. Consumed by EvolveGCN.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDataset {
    /// Dataset name (e.g. `"bitcoin_alpha"`).
    pub name: &'static str,
    /// Time-ordered graph snapshots.
    pub snapshots: SnapshotSequence,
    /// Static node features, `[n_nodes, node_dim]`.
    pub node_features: Tensor,
}

impl SnapshotDataset {
    /// Node feature dimension.
    pub fn node_dim(&self) -> usize {
        self.node_features.dims()[1]
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_features.dims()[0]
    }
}

/// A spatio-temporal sensor dataset (PeMS format). Consumed by ASTGNN.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesDataset {
    /// Dataset name (e.g. `"pems"`).
    pub name: &'static str,
    /// Static road/sensor graph.
    pub sensor_graph: Graph,
    /// Traffic signal, `[T, n_sensors, n_channels]`.
    pub signal: Tensor,
}

impl TimeSeriesDataset {
    /// Number of time slots.
    pub fn n_steps(&self) -> usize {
        self.signal.dims()[0]
    }

    /// Number of sensors.
    pub fn n_sensors(&self) -> usize {
        self.signal.dims()[1]
    }

    /// Number of signal channels.
    pub fn n_channels(&self) -> usize {
        self.signal.dims()[2]
    }
}

/// A molecular trajectory dataset (ISO17 format). Consumed by MolDGNN.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryDataset {
    /// Dataset name (e.g. `"iso17"`).
    pub name: &'static str,
    /// Atoms per molecule (fixed — ISO17 is C7O2H10 isomers, 19 atoms).
    pub n_atoms: usize,
    /// One bond-graph trajectory per molecule.
    pub molecules: Vec<SnapshotSequence>,
    /// Atom positions, `[n_molecules * frames, n_atoms, 3]`.
    pub positions: Tensor,
}

impl TrajectoryDataset {
    /// Number of molecules.
    pub fn n_molecules(&self) -> usize {
        self.molecules.len()
    }

    /// Frames per molecule (uniform across the dataset).
    pub fn frames_per_molecule(&self) -> usize {
        self.molecules.first().map_or(0, SnapshotSequence::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::{Snapshot, TemporalEvent};

    #[test]
    fn temporal_dataset_dims() {
        let stream = EventStream::new(
            3,
            vec![TemporalEvent {
                src: 0,
                dst: 1,
                time: 0.5,
                feature_idx: 0,
            }],
        )
        .unwrap();
        let d = TemporalDataset {
            name: "t",
            stream,
            node_features: Tensor::zeros(&[3, 8]),
            edge_features: Tensor::zeros(&[1, 4]),
        };
        assert_eq!(d.node_dim(), 8);
        assert_eq!(d.edge_dim(), 4);
    }

    #[test]
    fn snapshot_dataset_dims() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let d = SnapshotDataset {
            name: "s",
            snapshots: SnapshotSequence::new(vec![Snapshot {
                time: 0.0,
                graph: g,
            }])
            .unwrap(),
            node_features: Tensor::zeros(&[2, 5]),
        };
        assert_eq!(d.n_nodes(), 2);
        assert_eq!(d.node_dim(), 5);
    }

    #[test]
    fn time_series_dims() {
        let d = TimeSeriesDataset {
            name: "p",
            sensor_graph: Graph::from_edges(4, &[(0, 1)]).unwrap(),
            signal: Tensor::zeros(&[10, 4, 3]),
        };
        assert_eq!(d.n_steps(), 10);
        assert_eq!(d.n_sensors(), 4);
        assert_eq!(d.n_channels(), 3);
    }
}
