//! Non-linear activations (element-wise kernel family).

use crate::cost::OpDescriptor;
use crate::Tensor;

/// Descriptor of a cheap piecewise-linear activation over `len`
/// elements ([`Tensor::relu`], [`Tensor::leaky_relu`]).
pub fn relu_desc(len: usize) -> OpDescriptor {
    OpDescriptor::elementwise("relu", len, 1, 1)
}

/// Descriptor of a transcendental activation over `len` elements
/// ([`Tensor::sigmoid`], [`Tensor::tanh`], [`Tensor::softplus`] — exp
/// plus a few arithmetic ops ≈ 4 each).
pub fn transcendental_desc(len: usize) -> OpDescriptor {
    OpDescriptor::elementwise("transcendental", len, 4, 1)
}

/// Descriptor of a single-call math-function activation over `len`
/// elements ([`Tensor::exp`], [`Tensor::cos`], [`Tensor::sin`]).
pub fn math_fn_desc(len: usize) -> OpDescriptor {
    OpDescriptor::elementwise("math_fn", len, 2, 1)
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Tensor {
    /// Rectified linear unit: `max(0, x)`.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Leaky ReLU with negative slope `alpha` (TGAT's attention uses 0.2).
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        self.map(move |v| if v >= 0.0 { v } else { alpha * v })
    }

    /// Logistic sigmoid, numerically stable over the whole range.
    pub fn sigmoid(&self) -> Tensor {
        self.map(sigmoid_scalar)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Element-wise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Softplus `ln(1 + e^x)`, the positive-intensity link used by DyRep's
    /// conditional intensity function.
    pub fn softplus(&self) -> Tensor {
        self.map(|v| {
            if v > 20.0 {
                v
            } else if v < -20.0 {
                v.exp()
            } else {
                (1.0 + v.exp()).ln()
            }
        })
    }

    /// Element-wise cosine (used by the Bochner/Time2Vec time encoders).
    pub fn cos(&self) -> Tensor {
        self.map(f32::cos)
    }

    /// Element-wise sine.
    pub fn sin(&self) -> Tensor {
        self.map(f32::sin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(t.relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let t = Tensor::from_vec(vec![-10.0, 5.0], &[2]).unwrap();
        assert_eq!(t.leaky_relu(0.2).as_slice(), &[-2.0, 5.0]);
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let t = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let s = t.sigmoid();
        assert!(s.as_slice()[0] >= 0.0 && s.as_slice()[0] < 1e-6);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice()[2] > 1.0 - 1e-6 && s.as_slice()[2] <= 1.0);
        assert!(s.all_finite());
    }

    #[test]
    fn softplus_is_stable_at_extremes() {
        let t = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let s = t.softplus();
        assert!(s.all_finite());
        assert!((s.as_slice()[1] - 2.0f32.ln()).abs() < 1e-6);
        assert!((s.as_slice()[2] - 100.0).abs() < 1e-4);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Tensor::from_vec(vec![-1.5, 1.5], &[2]).unwrap();
        let y = t.tanh();
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn sin_cos_pythagorean() {
        let t = Tensor::from_vec(vec![0.3, 1.2, 2.5], &[3]).unwrap();
        let s = t.sin();
        let c = t.cos();
        for (a, b) in s.as_slice().iter().zip(c.as_slice()) {
            assert!((a * a + b * b - 1.0).abs() < 1e-6);
        }
    }
}
