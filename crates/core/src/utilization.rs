//! GPU utilization analysis — Figures 6 and 9.

use dgnn_device::{DurationNs, Timeline};

use crate::tablefmt::TextTable;

/// GPU utilization over a measurement window, with an optional sampled
/// time-series.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Window start.
    pub window_start: DurationNs,
    /// Window end.
    pub window_end: DurationNs,
    /// Occupancy-weighted average utilization over the window, `[0, 1]`.
    pub average: f64,
    /// Fraction of the window during which *any* kernel was resident
    /// (ignoring occupancy) — the "GPU busy" bar in Nsight. Scoped to
    /// device 0; see [`UtilizationReport::per_device`] for the rest.
    pub busy_fraction: f64,
    /// Kernel-resident fraction per device: `per_device[d]` is GPU `d`.
    /// Single-device timelines have exactly one entry equal to
    /// `busy_fraction`.
    pub per_device: Vec<f64>,
    /// Mean of the per-device busy fractions — the platform-wide
    /// utilization a fleet scheduler would report. Equal to
    /// `busy_fraction` on a single-device timeline.
    pub platform_busy_fraction: f64,
}

impl UtilizationReport {
    /// Measures utilization over `[start, end)` of a timeline.
    pub fn over_window(timeline: &Timeline, start: DurationNs, end: DurationNs) -> Self {
        let per_device: Vec<f64> = (0..timeline.n_devices())
            .map(|d| timeline.device_busy_fraction(d, start, end))
            .collect();
        UtilizationReport {
            window_start: start,
            window_end: end,
            average: timeline.gpu_utilization(start, end),
            busy_fraction: timeline.gpu_busy_fraction(start, end),
            per_device,
            platform_busy_fraction: timeline.platform_busy_fraction(start, end),
        }
    }

    /// Samples kernel-resident utilization (the nvidia-smi metric) over
    /// fixed windows within `[start, end)` — Figure 9's series. Returns
    /// `(window_start, utilization)` pairs.
    pub fn series(
        timeline: &Timeline,
        start: DurationNs,
        end: DurationNs,
        window: DurationNs,
    ) -> Vec<(DurationNs, f64)> {
        assert!(window.as_nanos() > 0, "window must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let next = (t + window).min(end);
            out.push((t, timeline.gpu_busy_fraction(t, next)));
            t += window;
        }
        out
    }

    /// Renders a utilization time-series as a textual sparkline table
    /// (one row per window) for the Figure 9 binary.
    pub fn render_series(series: &[(DurationNs, f64)], title: &str) -> String {
        let mut t = TextTable::new(title, &["t (ms)", "util", "bar"]);
        for &(start, u) in series {
            #[expect(
                clippy::cast_possible_truncation,
                reason = "utilization bar length ≤ 50"
            )]
            let bars = (u * 50.0).round() as usize;
            t.row(&[
                format!("{:.2}", start.as_millis_f64()),
                format!("{:5.1}%", u * 100.0),
                "#".repeat(bars),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, KernelDesc, PlatformSpec};

    fn run_kernels(n: usize, size: usize) -> Executor {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        for _ in 0..n {
            ex.launch(KernelDesc::gemm("k", size, size, size));
        }
        ex
    }

    #[test]
    fn average_bounded_by_busy_fraction() {
        let ex = run_kernels(10, 64);
        let r = UtilizationReport::over_window(ex.timeline(), DurationNs::ZERO, ex.now());
        assert!(r.average <= r.busy_fraction + 1e-12);
        assert!(r.average > 0.0);
        assert!(r.busy_fraction <= 1.0);
    }

    #[test]
    fn small_kernels_give_low_utilization() {
        let small = run_kernels(20, 16);
        let big = run_kernels(20, 2048);
        let t0 = DurationNs::from_secs_f64(6.0); // skip context init
        let u_small = UtilizationReport::over_window(small.timeline(), t0, small.now()).average;
        let u_big = UtilizationReport::over_window(big.timeline(), t0, big.now()).average;
        assert!(
            u_small < 0.05,
            "tiny kernels should underutilize, got {u_small}"
        );
        assert!(u_big > 10.0 * u_small, "big {u_big} vs small {u_small}");
    }

    #[test]
    fn series_spans_interval() {
        let ex = run_kernels(5, 128);
        let series = UtilizationReport::series(
            ex.timeline(),
            DurationNs::ZERO,
            ex.now(),
            DurationNs::from_millis(1_000),
        );
        assert!(!series.is_empty());
        assert!(series.iter().all(|&(_, u)| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn render_series_contains_bars() {
        let series = vec![(DurationNs::ZERO, 0.5), (DurationNs::from_millis(1), 0.0)];
        let s = UtilizationReport::render_series(&series, "fig9");
        assert!(s.contains("fig9"));
        assert!(s.contains("#########"));
    }

    #[test]
    fn single_device_per_device_matches_busy_fraction() {
        let ex = run_kernels(5, 128);
        let r = UtilizationReport::over_window(ex.timeline(), DurationNs::ZERO, ex.now());
        assert_eq!(r.per_device, vec![r.busy_fraction]);
        assert!((r.platform_busy_fraction - r.busy_fraction).abs() < 1e-12);
    }

    #[test]
    fn two_device_fork_reports_per_device_and_platform_fractions() {
        use dgnn_device::StreamId;
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        ex.ensure_context();
        ex.fork_streams_multi(2);
        // Device 0 does twice the kernel work of device 1.
        ex.on_device(0, |ex| {
            ex.on_stream(StreamId::Compute, |ex| {
                for _ in 0..8 {
                    ex.launch(KernelDesc::gemm("k0", 256, 256, 256));
                }
            });
        });
        ex.on_device(1, |ex| {
            ex.on_stream(StreamId::Compute, |ex| {
                for _ in 0..4 {
                    ex.launch(KernelDesc::gemm("k1", 256, 256, 256));
                }
            });
        });
        ex.join_streams();
        let r = UtilizationReport::over_window(ex.timeline(), DurationNs::ZERO, ex.now());
        assert_eq!(r.per_device.len(), 2, "both devices must be reported");
        assert!(r.per_device.iter().all(|&f| f > 0.0 && f <= 1.0));
        assert!(
            r.per_device[0] > r.per_device[1],
            "device 0 ran 2x the kernels: {:?}",
            r.per_device
        );
        assert_eq!(r.per_device[0], r.busy_fraction);
        let mean = (r.per_device[0] + r.per_device[1]) / 2.0;
        assert!((r.platform_busy_fraction - mean).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let ex = run_kernels(1, 8);
        let r = UtilizationReport::over_window(ex.timeline(), ex.now(), ex.now());
        assert_eq!(r.average, 0.0);
        assert_eq!(r.busy_fraction, 0.0);
    }
}
