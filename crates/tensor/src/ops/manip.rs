//! Data-manipulation kernels: transpose, concatenation, slicing, gathers.
//!
//! In the profiled frameworks these correspond to the irregular-access
//! gather/scatter kernels the paper blames for workload imbalance, so the
//! device layer prices them against *memory bandwidth with an
//! irregular-access penalty* rather than FLOPs.

use crate::cost::OpDescriptor;
use crate::{Result, Tensor, TensorError};

/// Descriptor of [`Tensor::gather_rows`]: `rows` rows of `width` f32.
pub fn gather_rows_desc(rows: usize, width: usize) -> OpDescriptor {
    OpDescriptor::gather("gather_rows", rows, width)
}

/// Descriptor of [`Tensor::scatter_rows`]: `rows` rows of `width` f32.
pub fn scatter_rows_desc(rows: usize, width: usize) -> OpDescriptor {
    OpDescriptor::gather("scatter_rows", rows, width)
}

/// Descriptor of [`Tensor::transpose`] of an `[m, n]` matrix — a
/// strided permutation priced as an irregular copy.
pub fn transpose_desc(m: usize, n: usize) -> OpDescriptor {
    OpDescriptor::gather("transpose", m * n, 1)
}

/// Descriptor of a contiguous copy/concatenation producing `len`
/// elements ([`Tensor::concat_cols`], [`Tensor::concat_rows`],
/// [`Tensor::stack_rows`]).
pub fn concat_desc(len: usize) -> OpDescriptor {
    OpDescriptor::elementwise("concat", len, 0, 1)
}

impl Tensor {
    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless rank is 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.as_slice()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Concatenates rank-2 tensors along columns: `[m, a] ++ [m, b] → [m, a+b]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when ranks are not 2 or row counts differ.
    pub fn concat_cols(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "concat_cols",
                expected: 2,
                actual: self.rank().min(rhs.rank()),
            });
        }
        let (m, a) = (self.dims()[0], self.dims()[1]);
        let (m2, b) = (rhs.dims()[0], rhs.dims()[1]);
        if m != m2 {
            return Err(TensorError::ShapeMismatch {
                op: "concat_cols",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = Vec::with_capacity(m * (a + b));
        for i in 0..m {
            out.extend_from_slice(&self.as_slice()[i * a..(i + 1) * a]);
            out.extend_from_slice(&rhs.as_slice()[i * b..(i + 1) * b]);
        }
        Tensor::from_vec(out, &[m, a + b])
    }

    /// Concatenates rank-2 tensors along rows: `[a, n] ++ [b, n] → [a+b, n]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when ranks are not 2 or column counts differ.
    pub fn concat_rows(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "concat_rows",
                expected: 2,
                actual: self.rank().min(rhs.rank()),
            });
        }
        if self.dims()[1] != rhs.dims()[1] {
            return Err(TensorError::ShapeMismatch {
                op: "concat_rows",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut data = self.as_slice().to_vec();
        data.extend_from_slice(rhs.as_slice());
        Tensor::from_vec(data, &[self.dims()[0] + rhs.dims()[0], self.dims()[1]])
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns rank/index errors.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if i >= m {
            return Err(TensorError::IndexOutOfBounds {
                op: "row",
                index: i,
                len: m,
            });
        }
        Tensor::from_vec(self.as_slice()[i * n..(i + 1) * n].to_vec(), &[n])
    }

    /// Gathers rows of a rank-2 tensor by index: output row `k` is input row
    /// `indices[k]`. This is the embedding-table lookup / neighbor gather.
    ///
    /// # Errors
    ///
    /// Returns rank errors or [`TensorError::IndexOutOfBounds`] when any
    /// index exceeds the row count.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "gather_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = Vec::with_capacity(indices.len() * n);
        for &i in indices {
            if i >= m {
                return Err(TensorError::IndexOutOfBounds {
                    op: "gather_rows",
                    index: i,
                    len: m,
                });
            }
            out.extend_from_slice(&self.as_slice()[i * n..(i + 1) * n]);
        }
        Tensor::from_vec(out, &[indices.len(), n])
    }

    /// Scatters `rows` (rank-2, one row per index) into a copy of `self` at
    /// the given row indices; later duplicates win.
    ///
    /// # Errors
    ///
    /// Returns shape/index errors when widths differ, `rows` has fewer rows
    /// than `indices`, or any index is out of bounds.
    pub fn scatter_rows(&self, indices: &[usize], rows: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rows.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "scatter_rows",
                expected: 2,
                actual: self.rank().min(rows.rank()),
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if rows.dims()[1] != n || rows.dims()[0] < indices.len() {
            return Err(TensorError::ShapeMismatch {
                op: "scatter_rows",
                lhs: self.dims().to_vec(),
                rhs: rows.dims().to_vec(),
            });
        }
        let mut out = self.as_slice().to_vec();
        for (k, &i) in indices.iter().enumerate() {
            if i >= m {
                return Err(TensorError::IndexOutOfBounds {
                    op: "scatter_rows",
                    index: i,
                    len: m,
                });
            }
            out[i * n..(i + 1) * n].copy_from_slice(&rows.as_slice()[k * n..(k + 1) * n]);
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty list and shape
    /// errors when lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Result<Tensor> {
        let first = rows
            .first()
            .ok_or(TensorError::EmptyInput { op: "stack_rows" })?;
        let n = first.len();
        let mut data = Vec::with_capacity(rows.len() * n);
        for r in rows {
            if r.rank() != 1 || r.len() != n {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_rows",
                    lhs: vec![n],
                    rhs: r.dims().to_vec(),
                });
            }
            data.extend_from_slice(r.as_slice());
        }
        Tensor::from_vec(data, &[rows.len(), n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
        assert_eq!(t.transpose().unwrap().dims(), &[3, 2]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]).unwrap();
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let c = a.concat_rows(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(a.concat_rows(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    fn gather_rows_picks_and_validates() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]).unwrap();
        let g = t.gather_rows(&[2, 0, 2]).unwrap();
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        assert!(t.gather_rows(&[3]).is_err());
    }

    #[test]
    fn scatter_rows_overwrites() {
        let base = Tensor::zeros(&[3, 2]);
        let rows = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0], &[2, 2]).unwrap();
        let out = base.scatter_rows(&[2, 0], &rows).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn scatter_gather_round_trip() {
        let base = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]).unwrap();
        let idx = [1usize, 3];
        let g = base.gather_rows(&idx).unwrap();
        let back = base.scatter_rows(&idx, &g).unwrap();
        assert_eq!(base, back);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows = vec![
            Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
            Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap(),
        ];
        let m = Tensor::stack_rows(&rows).unwrap();
        assert_eq!(m.dims(), &[2, 2]);
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    #[test]
    fn row_extracts() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]).unwrap();
        assert_eq!(t.row(1).unwrap().as_slice(), &[2.0, 3.0]);
        assert!(t.row(3).is_err());
    }
}
