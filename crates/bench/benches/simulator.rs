//! Benchmarks of the simulator's own host-side performance: the
//! substrate operations every experiment leans on. These measure real
//! wall-clock (not simulated time), so regressions in the reproduction
//! infrastructure itself are visible.

use std::hint::black_box;

use dgnn_bench::harness::bench;
use dgnn_datasets::{wikipedia, Scale};
use dgnn_device::{ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, TransferDir};
use dgnn_graph::{NeighborSampler, SampleStrategy, TBatcher, TemporalAdjacency};
use dgnn_tensor::{Initializer, TensorRng};

const SAMPLES: usize = 20;

fn bench_tensor_ops() {
    for &n in &[32usize, 128] {
        let a = TensorRng::seed(1).init(&[n, n], Initializer::Uniform(1.0));
        let b = TensorRng::seed(2).init(&[n, n], Initializer::Uniform(1.0));
        bench(&format!("tensor/matmul_{n}x{n}"), SAMPLES, || {
            black_box(a.matmul(&b).unwrap())
        });
    }
    let m = TensorRng::seed(3).init(&[256, 64], Initializer::Uniform(1.0));
    bench("tensor/softmax_rows_256x64", SAMPLES, || {
        black_box(m.softmax_rows().unwrap())
    });
    let idx: Vec<usize> = (0..256).map(|i| (i * 7) % 256).collect();
    bench("tensor/gather_rows_256", SAMPLES, || {
        black_box(m.gather_rows(&idx).unwrap())
    });
}

fn bench_graph_substrate() {
    let data = wikipedia(Scale::Tiny, 1);
    bench("graph/temporal_adjacency_build", SAMPLES, || {
        black_box(TemporalAdjacency::from_stream(&data.stream))
    });
    let adj = TemporalAdjacency::from_stream(&data.stream);
    let t_end = data.stream.end_time();
    bench("graph/sample_khop_2x20", SAMPLES, || {
        let s = NeighborSampler::new(SampleStrategy::Uniform, 7);
        black_box(s.sample_khop(&adj, &[(0, t_end)], &[20, 20]))
    });
    let batch_roots: Vec<(usize, f64)> = data
        .stream
        .events()
        .iter()
        .rev()
        .take(256)
        .map(|e| (e.src, e.time))
        .collect();
    bench("graph/sample_khop_batch_256x2x20_serial", SAMPLES, || {
        let s = NeighborSampler::new(SampleStrategy::Uniform, 7);
        black_box(s.sample_khop_batch_threads(&adj, &batch_roots, &[20, 20], 1))
    });
    bench("graph/sample_khop_batch_256x2x20_parallel", SAMPLES, || {
        let s = NeighborSampler::new(SampleStrategy::Uniform, 7);
        black_box(s.sample_khop_batch(&adj, &batch_roots, &[20, 20]))
    });
    bench("graph/tbatch_build_full_stream", SAMPLES, || {
        black_box(TBatcher::new().build_stream(&data.stream))
    });
}

fn bench_executor() {
    bench("executor/launch_1000_kernels", SAMPLES, || {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        for _ in 0..1_000 {
            ex.launch(KernelDesc::gemm("k", 64, 64, 64));
        }
        black_box(ex.now())
    });
    bench("executor/mixed_schedule_100_iterations", SAMPLES, || {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        for _ in 0..100 {
            ex.scope("iter", |ex| {
                ex.host(HostWork::irregular("sample", 10_000, 4_096));
                ex.transfer(TransferDir::H2D, 1 << 16);
                ex.launch(KernelDesc::gemm("mm", 128, 64, 128));
                ex.transfer(TransferDir::D2H, 1 << 12);
            });
        }
        black_box(ex.timeline().len())
    });
}

fn main() {
    bench_tensor_ops();
    bench_graph_substrate();
    bench_executor();
}
