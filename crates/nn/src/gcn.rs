//! Graph convolution layer (EvolveGCN, MolDGNN, ASTGNN's spatial block).

use dgnn_device::{DeviceTensor, Dispatcher};
use dgnn_tensor::{Initializer, Tensor, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

/// One GCN layer `H' = σ(Â H W)` over a dense normalized adjacency `Â`.
///
/// The layer also supports an *external* weight matrix
/// ([`GcnLayer::forward_with_weight`]) because EvolveGCN's RNN rewrites
/// the GCN weights at every time step.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayer {
    weight: Param,
    in_dim: usize,
    out_dim: usize,
}

impl GcnLayer {
    /// Creates a GCN layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        GcnLayer {
            weight: Param::new(
                "weight",
                rng.init(&[in_dim, out_dim], Initializer::XavierUniform),
            ),
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's own weight `[in, out]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Forward with the layer's own weight.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `adj` is not `[n, n]` or `x` not `[n, in]`.
    pub fn forward(
        &self,
        dx: &mut Dispatcher,
        adj: &DeviceTensor,
        x: &DeviceTensor,
    ) -> Result<DeviceTensor> {
        self.forward_with_weight(dx, adj, x, &self.weight.value)
    }

    /// Forward with an externally supplied weight (EvolveGCN).
    ///
    /// # Errors
    ///
    /// Returns shape errors on dimension mismatch.
    pub fn forward_with_weight(
        &self,
        dx: &mut Dispatcher,
        adj: &DeviceTensor,
        x: &DeviceTensor,
        weight: &Tensor,
    ) -> Result<DeviceTensor> {
        // Propagation (A·X) then transformation (·W), then ReLU.
        let propagated = dx.matmul("gcn_propagate", adj, x)?;
        let transformed = dx.matmul("gcn_transform", &propagated, weight)?;
        Ok(dx.relu("gcn_relu", &transformed))
    }
}

impl Module for GcnLayer {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.weight]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, PlatformSpec};
    use dgnn_graph::Graph;

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    fn dt(t: Tensor) -> DeviceTensor {
        DeviceTensor::host(t)
    }

    fn ring_adjacency(n: usize) -> Tensor {
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Tensor::from_vec(g.normalized_adjacency(), &[n, n]).unwrap()
    }

    #[test]
    fn forward_shape_and_nonnegativity() {
        let mut rng = TensorRng::seed(1);
        let layer = GcnLayer::new(6, 4, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let adj = dt(ring_adjacency(5));
        let x = dt(TensorRng::seed(2).init(&[5, 6], Initializer::Normal(1.0)));
        let h = layer.forward(&mut dx, &adj, &x).unwrap();
        assert_eq!(h.data().dims(), &[5, 4]);
        assert!(h.data().as_slice().iter().all(|&v| v >= 0.0), "ReLU output");
    }

    #[test]
    fn isolated_node_keeps_only_self_loop_signal() {
        // Empty graph: normalized adjacency is the identity (self-loops).
        let g = Graph::from_edges(3, &[]).unwrap();
        let adj = dt(Tensor::from_vec(g.normalized_adjacency(), &[3, 3]).unwrap());
        let mut rng = TensorRng::seed(3);
        let layer = GcnLayer::new(2, 2, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let x = TensorRng::seed(4).init(&[3, 2], Initializer::Normal(1.0));
        let h = layer.forward(&mut dx, &adj, &dt(x.clone())).unwrap();
        let manual = x.matmul(layer.weight()).unwrap().relu();
        h.data().assert_close(&manual, 1e-5);
    }

    #[test]
    fn external_weight_overrides_internal() {
        let mut rng = TensorRng::seed(5);
        let layer = GcnLayer::new(3, 3, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let adj = dt(ring_adjacency(4));
        let x = dt(Tensor::ones(&[4, 3]));
        let w_zero = Tensor::zeros(&[3, 3]);
        let h = layer
            .forward_with_weight(&mut dx, &adj, &x, &w_zero)
            .unwrap();
        assert_eq!(h.data().sum(), 0.0);
    }

    #[test]
    fn launches_two_gemms_and_relu() {
        let mut rng = TensorRng::seed(6);
        let layer = GcnLayer::new(2, 2, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let adj = dt(ring_adjacency(3));
        layer
            .forward(&mut dx, &adj, &dt(Tensor::zeros(&[3, 2])))
            .unwrap();
        assert_eq!(dx.executor().timeline().len(), 3);
    }
}
