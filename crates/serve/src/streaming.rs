//! Streaming serving: queries race live graph ingestion.
//!
//! The offline serving loop treats the graph as frozen. Real DGNN
//! deployments do not get that luxury: edge events keep arriving while
//! queries are in flight, and the host must split its time between
//! *ingesting* (appending to the delta log, updating TGN/JODIE node
//! memory, periodically compacting) and *sampling* for queries. This
//! module wires that contention into the discrete-event loop:
//!
//! * a seeded Poisson **ingest stream** ([`generate_ingest`]) assigns a
//!   virtual arrival instant to every event of a
//!   [`dgnn_graph::EventStream`];
//! * one shared **ingest executor** (a Host-lane session clock) prices
//!   every append, memory update, compaction *and* every query's
//!   neighbor sampling — ingestion and sampling contend for the same
//!   virtual core budget, so a burst of events delays queries and vice
//!   versa;
//! * each dispatched batch samples from a [`StreamingAdjacency`]
//!   snapshot capped at the events whose append work *completed* by the
//!   read's start ([`StreamingAdjacency::view_prefix`]), and logs
//!   `GraphAppend`/`GraphSample` provenance so `dgnn-analysis` RULE7
//!   can prove the run raced nothing;
//! * every served request carries a **staleness** measurement: the
//!   virtual time between the last ingest event its snapshot exposed
//!   and its own arrival (zero when nothing that had arrived was
//!   missing).
//!
//! The **frozen baseline** ([`StreamingConfig::frozen`]) builds the
//! whole graph before serving starts: zero staleness, no ingest
//! contention — the reference column for the freshness-vs-latency
//! tradeoff in `BENCH_streaming.json`.

use dgnn_device::{DurationNs, ExecMode, Executor, HostWork};
use dgnn_graph::{
    EventStream, NeighborSampler, SampleCost, SampleStrategy, StreamingAdjacency, TemporalEvent,
};
use dgnn_models::{IngestMemory, MemoryRule};
use dgnn_tensor::TensorRng;

use crate::report::ServedRequest;
use crate::sim::{serve_with_streaming, ServeOutcome};
use crate::workload::{validate_rate, RateError, Request};
use crate::{ServeConfig, ServedModel};

/// Identity of the shared streaming store in provenance traces.
const STORE_ID: u64 = 1;

/// Configuration of the live-ingestion side of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// The edge events to ingest, in dataset time order.
    pub stream: EventStream,
    /// Expected ingest arrivals per simulated second.
    pub ingest_rate_eps: f64,
    /// Delta-log size at which the store compacts (see
    /// [`StreamingAdjacency`]).
    pub compaction_threshold: usize,
    /// Node-memory update rule applied at ingest time.
    pub memory_rule: MemoryRule,
    /// Node-memory row width.
    pub memory_dim: usize,
    /// Neighbors sampled per hop for each query.
    pub n_neighbors: usize,
    /// Sampling hops per query.
    pub hops: usize,
    /// Build the full graph before serving starts instead of ingesting
    /// live: the zero-staleness, zero-contention baseline.
    pub frozen: bool,
}

impl StreamingConfig {
    /// A small default over the given stream: TGN-style memory, 2-hop
    /// 10-neighbor sampling, compaction every 256 events.
    pub fn new(stream: EventStream) -> Self {
        StreamingConfig {
            stream,
            ingest_rate_eps: 2_000.0,
            compaction_threshold: 256,
            memory_rule: MemoryRule::TgnGru,
            memory_dim: 32,
            n_neighbors: 10,
            hops: 2,
            frozen: false,
        }
    }

    /// Checks the ingest rate before it reaches the panicking
    /// generators (frozen runs never generate arrivals, so any rate is
    /// acceptable there).
    ///
    /// # Errors
    ///
    /// Returns the typed [`RateError`] for a zero, negative, non-finite
    /// or degenerately small `ingest_rate_eps`.
    pub fn validate(&self) -> Result<(), RateError> {
        if self.frozen {
            return Ok(());
        }
        validate_rate("ingest rate", self.ingest_rate_eps)
    }
}

/// Assigns a strictly increasing virtual arrival instant to each of `n`
/// ingest events: exponential inter-arrival gaps at `rate_eps` expected
/// events per simulated second, inverse-transform sampled from a seeded
/// RNG and rounded to integer (≥ 1) nanoseconds.
///
/// The RNG stream is decorrelated from the request-arrival stream of
/// [`crate::workload::generate`] by a distinct seed mix, so ingest and
/// query processes are independent Poisson processes.
///
/// # Panics
///
/// Panics when `rate_eps` fails [`crate::workload::validate_rate`];
/// call [`StreamingConfig::validate`] first to get the typed
/// [`crate::workload::RateError`] instead.
pub fn generate_ingest(seed: u64, n: usize, rate_eps: f64) -> Vec<DurationNs> {
    if let Err(e) = validate_rate("ingest rate", rate_eps) {
        panic!("{e}");
    }
    let mut rng = TensorRng::seed(seed.wrapping_mul(0x94d0_49bb_1331_11eb) ^ 0x1963);
    let mut t_ns = 0u64;
    (0..n)
        .map(|_| {
            let u = rng.unit_f64();
            let gap_s = -(1.0 - u).ln() / rate_eps;
            #[expect(clippy::cast_possible_truncation, reason = "gaps are ≪ u64::MAX ns")]
            #[allow(clippy::cast_sign_loss)] // gap_s ≥ 0 by construction
            let gap_ns = ((gap_s * 1e9).round() as u64).max(1);
            t_ns += gap_ns;
            DurationNs::from_nanos(t_ns)
        })
        .collect()
}

/// Live state threaded through the serving event loop.
///
/// Owns the delta-log store, the serving-path node memory, and the
/// ingest executor whose Host lane both ingestion and query sampling
/// are priced on.
#[derive(Debug)]
pub struct StreamingState {
    store: StreamingAdjacency,
    memory: IngestMemory,
    ingest: Executor,
    sampler: NeighborSampler,
    events: Vec<TemporalEvent>,
    /// Virtual arrival instant per event (empty in frozen mode).
    arrivals: Vec<DurationNs>,
    /// Instant each ingested event's append work completed (monotone).
    visible_at: Vec<DurationNs>,
    next: usize,
    n_neighbors: usize,
    hops: usize,
    frozen: bool,
}

impl StreamingState {
    /// Builds the streaming state for one run. In frozen mode the whole
    /// stream is ingested (and node memory advanced) offline at t = 0.
    ///
    /// # Panics
    ///
    /// Panics when the stream is malformed (unsorted, out-of-bounds
    /// nodes) or the compaction threshold is zero.
    pub fn new(scfg: &StreamingConfig, cfg: &ServeConfig) -> Self {
        let events: Vec<TemporalEvent> = scfg.stream.events().to_vec();
        let n_nodes = scfg.stream.n_nodes();
        let mut ingest = Executor::new(cfg.spec.clone(), ExecMode::CpuOnly);
        if cfg.trace {
            ingest.enable_tracing();
        }
        let mut memory = IngestMemory::new(scfg.memory_rule, n_nodes, scfg.memory_dim, cfg.seed);
        let (store, arrivals, visible_at, next) = if scfg.frozen {
            // Offline build: the store and memory reflect the full
            // stream before the clock starts; nothing arrives live.
            let store = StreamingAdjacency::from_stream(&scfg.stream, scfg.compaction_threshold);
            for (i, ev) in events.iter().enumerate() {
                memory.apply(ev);
                ingest.trace_graph_append(STORE_ID, i, ev.time.to_bits(), DurationNs::ZERO);
            }
            let visible = vec![DurationNs::ZERO; events.len()];
            (store, Vec::new(), visible, events.len())
        } else {
            let store = StreamingAdjacency::new(n_nodes, scfg.compaction_threshold);
            let arrivals = generate_ingest(cfg.seed, events.len(), scfg.ingest_rate_eps);
            (store, arrivals, Vec::new(), 0)
        };
        StreamingState {
            store,
            memory,
            ingest,
            sampler: NeighborSampler::new(SampleStrategy::MostRecent, cfg.seed),
            events,
            arrivals,
            visible_at,
            next,
            n_neighbors: scfg.n_neighbors,
            hops: scfg.hops,
            frozen: scfg.frozen,
        }
    }

    /// Ingest arrival instants, in event order (empty in frozen mode).
    pub(crate) fn ingest_arrivals(&self) -> &[DurationNs] {
        &self.arrivals
    }

    /// Ingests event `i` arriving at `now`: prices the append, the node
    /// memory update and any triggered compaction as Host-lane work on
    /// the shared ingest clock; the event becomes visible to samplers
    /// when that work completes.
    pub(crate) fn ingest(&mut self, i: usize, now: DurationNs) {
        assert_eq!(i, self.next, "ingest events must arrive in order");
        let ev = self.events[i];
        self.ingest.advance_to(now);
        let receipt = self
            .store
            .append(ev)
            .expect("stream events were validated at construction");
        let mem_cost = self.memory.apply(&ev);
        self.ingest.scope("ingest", |ex| {
            ex.host(HostWork {
                label: "graph_append",
                ops: receipt.cost.ops + mem_cost.ops,
                seq_bytes: receipt.cost.seq_bytes + mem_cost.seq_bytes,
                irregular_bytes: receipt.cost.irregular_bytes + mem_cost.irregular_bytes,
                parallelism: 1,
            });
            if let Some(c) = receipt.compaction {
                ex.host(HostWork {
                    label: "graph_compact",
                    ops: c.ops,
                    seq_bytes: c.seq_bytes,
                    irregular_bytes: c.irregular_bytes,
                    parallelism: 1,
                });
            }
        });
        let visible = self.ingest.now();
        self.ingest
            .trace_graph_append(STORE_ID, i, ev.time.to_bits(), visible);
        self.visible_at.push(visible);
        self.next = i + 1;
    }

    /// Samples for one dispatched batch at `now`. Returns the host-side
    /// sampling latency (added to the batch's service span) and the
    /// per-member staleness, in `members` order.
    ///
    /// The snapshot exposes exactly the events whose append work
    /// completed by the read's start — the visibility watermark RULE7
    /// certifies — and each member's root node is a deterministic
    /// function of its request id.
    pub(crate) fn sample_batch(
        &mut self,
        now: DurationNs,
        members: &[usize],
        requests: &[Request],
    ) -> (DurationNs, Vec<DurationNs>) {
        self.ingest.advance_to(now);
        let start = self.ingest.now();
        let visible = self.visible_at.partition_point(|&v| v <= start);
        self.ingest.trace_graph_sample(STORE_ID, visible, start);
        let view = self.store.view_prefix(visible);
        let n_nodes = self.store.n_nodes();
        let fanout = vec![self.n_neighbors; self.hops];
        let mut cost = SampleCost::default();
        // An empty store (a query dispatched before the first ingest, or
        // a degenerate zero-node stream) has nothing to sample: the
        // request is served over the empty snapshot at zero sampling
        // cost instead of dividing by zero below.
        if n_nodes > 0 {
            for &id in members {
                let root = (id.wrapping_mul(0x9e37) ^ 0x79b9) % n_nodes;
                let (_layers, c) =
                    self.sampler
                        .sample_khop(&view, &[(root, f64::INFINITY)], &fanout);
                cost.add(c);
            }
        }
        self.ingest.scope("stream_sample", |ex| {
            ex.host(HostWork {
                label: "stream_sample",
                ops: cost.ops,
                seq_bytes: 0,
                irregular_bytes: cost.irregular_bytes,
                parallelism: members.len() as u64,
            });
        });
        let extra = self.ingest.now() - start;

        // Staleness: virtual time between the last ingest event the
        // sampled snapshot exposed and the request's arrival — how old
        // the freshest served data was from the requester's viewpoint.
        // Zero when the watermark had already passed the arrival (data
        // at least as fresh as the request), and zero by definition in
        // frozen mode, where nothing arrives during serving.
        let watermark = visible
            .checked_sub(1)
            .and_then(|last| self.arrivals.get(last))
            .copied()
            .unwrap_or(DurationNs::ZERO);
        let staleness = members
            .iter()
            .map(|&id| {
                if self.frozen {
                    DurationNs::ZERO
                } else {
                    requests[id].arrival.saturating_sub(watermark)
                }
            })
            .collect();
        (extra, staleness)
    }

    /// Events ingested so far.
    pub fn ingested(&self) -> usize {
        self.next
    }

    /// Compactions the store ran.
    pub fn compactions(&self) -> usize {
        self.store.compactions()
    }

    /// Order-sensitive checksum of the serving-path node memory.
    pub fn memory_checksum(&self) -> u64 {
        self.memory.checksum()
    }

    /// Consumes the state, returning the ingest session executor for
    /// post-hoc auditing (RULE7 runs over its provenance trace).
    pub fn into_session(self) -> Executor {
        self.ingest
    }
}

/// Everything a streaming serving run produced.
#[derive(Debug)]
pub struct StreamingOutcome {
    /// The serving outcome: report (with staleness), raw records, and
    /// per-replica sessions.
    pub serve: ServeOutcome,
    /// The shared ingest/sampling session, for RULE7 audits.
    pub ingest_session: Executor,
    /// Events ingested over the run.
    pub ingested: usize,
    /// Compactions the delta log triggered.
    pub compactions: usize,
    /// Checksum of the final node-memory state (determinism witness).
    pub memory_checksum: u64,
}

/// Runs the serving simulation with live graph ingestion racing the
/// query stream (or against a frozen pre-built graph when
/// [`StreamingConfig::frozen`] is set).
///
/// # Panics
///
/// Panics on an invalid configuration, exactly as [`crate::serve`].
pub fn serve_streaming(
    cfg: &ServeConfig,
    scfg: &StreamingConfig,
    zoo: &[ServedModel],
) -> StreamingOutcome {
    let mut state = StreamingState::new(scfg, cfg);
    let serve = serve_with_streaming(cfg, zoo, Some(&mut state));
    StreamingOutcome {
        serve,
        ingested: state.ingested(),
        compactions: state.compactions(),
        memory_checksum: state.memory_checksum(),
        ingest_session: state.into_session(),
    }
}

/// Mean staleness in milliseconds over served requests — convenience
/// for benchmark tables.
pub fn mean_staleness_ms(requests: &[ServedRequest]) -> f64 {
    if requests.is_empty() {
        return 0.0;
    }
    let sum: f64 = requests
        .iter()
        .map(|r| r.staleness.as_secs_f64() * 1e3)
        .sum();
    sum / requests.len() as f64
}
