//! Streaming serving properties: determinism, staleness semantics,
//! ingest/sampling contention, and RULE7-clean provenance.

use dgnn_datasets::{wikipedia, Scale};
use dgnn_device::{DurationNs, ExecMode, PlatformSpec};
use dgnn_graph::EventStream;
use dgnn_models::{InferenceConfig, MemoryRule, ReplicaHandle, Tgn, TgnConfig};
use dgnn_serve::{
    generate_ingest, serve_streaming, ServeConfig, ServedModel, StreamingConfig, StreamingOutcome,
};

fn tgn_entry(weight: f64) -> ServedModel {
    let data = wikipedia(Scale::Tiny, 11);
    ServedModel {
        handle: ReplicaHandle::new("tgn", move || {
            Box::new(Tgn::new(data.clone(), TgnConfig::default(), 11))
        }),
        cfg: InferenceConfig::default()
            .with_batch_size(32)
            .with_neighbors(5)
            .with_max_units(1),
        weight,
    }
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        seed: 7,
        n_requests: 16,
        // Slow enough that arrivals outlast pool provisioning (~6.5 s
        // virtual): later queries dispatch near their arrival and
        // genuinely race the ingest stream.
        arrival_rate_rps: 1.2,
        batch_window: DurationNs::from_millis(2),
        max_batch: 4,
        pool_size: 2,
        queue_bound: 256,
        mode: ExecMode::Gpu,
        trace: false,
        spec: PlatformSpec::default(),
    }
}

fn stream_cfg(frozen: bool) -> StreamingConfig {
    let data = wikipedia(Scale::Tiny, 11);
    let mut scfg = StreamingConfig::new(data.stream);
    // Sparse ingest (~50 ms between events): the visibility watermark
    // lags behind arrivals, so staleness is observable.
    scfg.ingest_rate_eps = 20.0;
    scfg.compaction_threshold = 64;
    scfg.memory_rule = MemoryRule::TgnGru;
    scfg.frozen = frozen;
    scfg
}

fn run(frozen: bool, trace: bool) -> StreamingOutcome {
    let mut cfg = base_cfg();
    cfg.trace = trace;
    serve_streaming(&cfg, &stream_cfg(frozen), &[tgn_entry(1.0)])
}

#[test]
fn streaming_replay_is_bit_deterministic() {
    let a = run(false, false);
    let b = run(false, false);
    assert_eq!(a.serve.requests, b.serve.requests);
    assert_eq!(a.serve.report.makespan, b.serve.report.makespan);
    assert_eq!(a.memory_checksum, b.memory_checksum);
    assert_eq!(a.ingested, b.ingested);
    assert_eq!(a.compactions, b.compactions);
}

#[test]
fn live_ingestion_runs_and_compacts() {
    let out = run(false, false);
    assert!(out.ingested > 0, "ingest events must be processed");
    assert!(
        out.compactions > 0,
        "threshold 64 over the tiny stream must trigger compaction"
    );
    assert!(out.serve.report.served > 0);
}

#[test]
fn frozen_baseline_has_zero_staleness_and_live_does_not() {
    let frozen = run(true, false);
    assert!(
        frozen
            .serve
            .requests
            .iter()
            .all(|r| r.staleness == DurationNs::ZERO),
        "a pre-built graph misses nothing"
    );
    assert_eq!(frozen.ingested, stream_cfg(true).stream.len());

    let live = run(false, false);
    assert!(
        live.serve
            .requests
            .iter()
            .any(|r| r.staleness > DurationNs::ZERO),
        "queries racing a slow ingest stream must observe staleness"
    );
    assert!(live.serve.report.staleness.p99 > DurationNs::ZERO);
}

#[test]
fn streaming_sessions_audit_clean_including_rule7() {
    for frozen in [false, true] {
        let out = run(frozen, true);
        let report = dgnn_analysis::audit(&out.ingest_session);
        assert!(report.is_clean(), "frozen={frozen}: {report}");
        assert_eq!(report.stats.graph_appends, out.ingested);
        assert!(
            report.stats.graph_samples > 0,
            "every dispatched batch logs a sample"
        );
        for s in &out.serve.sessions {
            let r = dgnn_analysis::audit(s);
            assert!(r.is_clean(), "replica session: {r}");
        }
    }
}

#[test]
fn ingest_arrivals_are_strictly_increasing_and_deterministic() {
    let a = generate_ingest(3, 500, 10_000.0);
    let b = generate_ingest(3, 500, 10_000.0);
    assert_eq!(a, b);
    assert!(a.windows(2).all(|w| w[0] < w[1]));
    let c = generate_ingest(4, 500, 10_000.0);
    assert_ne!(a, c);
}

#[test]
fn zero_node_stream_serves_without_panicking() {
    // Regression: a query dispatched against an empty store used to hit
    // `% n_nodes` with n_nodes == 0 in the sampling walk and panic.
    // An empty stream has nothing to sample, so queries must simply pay
    // zero sampling cost and serve normally.
    let empty = EventStream::new(0, Vec::new()).expect("empty stream is valid");
    let mut scfg = StreamingConfig::new(empty);
    scfg.ingest_rate_eps = 20.0;
    let mut cfg = base_cfg();
    cfg.n_requests = 6;
    let out = serve_streaming(&cfg, &scfg, &[tgn_entry(1.0)]);
    assert_eq!(out.ingested, 0, "no events, nothing ingested");
    assert_eq!(out.serve.report.served, 6, "every request still served");
    // With nothing ever ingested the visibility watermark stays at t=0,
    // so each request's measured staleness is simply its age.
    assert!(out.serve.requests.iter().all(|r| r.staleness == r.arrival));
}

#[test]
fn streaming_config_validates_its_ingest_rate() {
    let mk = |rate: f64, frozen: bool| {
        let mut scfg = stream_cfg(frozen);
        scfg.ingest_rate_eps = rate;
        scfg
    };
    assert!(mk(20.0, false).validate().is_ok());
    let err = mk(0.0, false).validate().unwrap_err();
    assert_eq!(err.reason, "not positive");
    assert!(err.to_string().contains("ingest rate"));
    assert!(mk(f64::NAN, false).validate().is_err());
    // Frozen runs never generate arrivals: any rate is acceptable.
    assert!(mk(0.0, true).validate().is_ok());
}

#[test]
fn staleness_is_reported_alongside_latency() {
    let out = run(false, false);
    let text = out.serve.report.render("streaming");
    assert!(text.contains("staleness"), "{text}");
    assert!(out.serve.report.staleness.p99 >= out.serve.report.staleness.p50);
}
