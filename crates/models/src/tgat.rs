//! TGAT — Temporal Graph Attention Network (Xu et al., ICLR'20).
//!
//! Continuous-time model. Per mini-batch of interaction events it:
//! 1. samples a two-hop temporal neighborhood per event **on the CPU**
//!    (bisection + index sorting — the paper's dominant cost, 83–94% of
//!    inference time),
//! 2. ships the gathered node/edge features and time deltas to the GPU
//!    (quadratic in the neighbor count `k`, hence the paper's "data
//!    movement increases rapidly past k≈100"),
//! 3. runs Bochner time encoding and two attention layers,
//! 4. copies the updated target embeddings back.
//!
//! All kernels and transfers go through the [`Dispatcher`]: the batch
//! payload is staged as a host-resident [`DeviceTensor`] whose logical
//! bytes equal the full gathered feature block, so the H2D copy falls
//! out of the first device-side use rather than a hand-inserted
//! `transfer()` call.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{
    DeviceTensor, Dispatcher, ExecMode, Executor, HostWork, StreamId, TensorClass, TransferDir,
};
use dgnn_graph::{NeighborSampler, SampleStrategy, TemporalAdjacency};
use dgnn_nn::{BochnerTimeEncoder, Linear, Module, MultiHeadAttention};
use dgnn_tensor::{Tensor, TensorRng};

use crate::common::{
    lane_handoff, on_lane, representative, shard_barrier, shard_owners, DgnnModel, DoubleBuffer,
    InferenceConfig, RunSummary,
};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework-level operations per sampling call: the reference
/// implementation performs temporal neighbor lookup in an interpreted
/// per-node loop (Python `bisect` + list indexing), costing several
/// microseconds per call rather than nanoseconds. Priced against
/// `CpuSpec::host_ops_per_sec` (1600 ops ≈ 8 µs per call).
const SAMPLING_CALL_OPS: u64 = 1_600;

/// TGAT hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgatConfig {
    /// Model dimension.
    pub dim: usize,
    /// Time-encoding dimension.
    pub time_dim: usize,
    /// Attention layers (hops).
    pub n_layers: usize,
    /// Attention heads.
    pub heads: usize,
}

impl Default for TgatConfig {
    fn default() -> Self {
        // The reference runs Wikipedia with 172-dimensional features.
        TgatConfig {
            dim: 172,
            time_dim: 172,
            n_layers: 2,
            heads: 2,
        }
    }
}

/// The TGAT model bound to a dataset.
#[derive(Debug)]
pub struct Tgat {
    data: TemporalDataset,
    adj: TemporalAdjacency,
    cfg: TgatConfig,
    feat_proj: Linear,
    time_enc: BochnerTimeEncoder,
    attn: Vec<MultiHeadAttention>,
    merge: Vec<Linear>,
    predictor: Linear,
}

impl Tgat {
    /// Builds TGAT over an interaction dataset.
    pub fn new(data: TemporalDataset, cfg: TgatConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let adj = TemporalAdjacency::from_stream(&data.stream);
        let d = cfg.dim;
        let feat_proj = Linear::new(data.node_dim(), d, &mut rng);
        let time_enc = BochnerTimeEncoder::new(cfg.time_dim, &mut rng);
        let attn = (0..cfg.n_layers)
            .map(|_| MultiHeadAttention::new(d, cfg.heads, &mut rng))
            .collect();
        let merge = (0..cfg.n_layers)
            .map(|_| Linear::new(d + cfg.time_dim, d, &mut rng))
            .collect();
        let predictor = Linear::new(2 * d, 1, &mut rng);
        Tgat {
            data,
            adj,
            cfg,
            feat_proj,
            time_enc,
            attn,
            merge,
            predictor,
        }
    }

    /// Rows of gathered features per event for neighbor count `k`
    /// (target + first hop + second hop).
    fn rows_per_event(&self, k: usize) -> usize {
        match self.cfg.n_layers {
            0 | 1 => 1 + k,
            _ => 1 + k + k * k,
        }
    }

    /// Edge-feature rows shipped to the GPU per event: one per sampled
    /// interaction (`k` first-hop + `k²` second-hop). Node embeddings are
    /// a learned table resident in GPU memory and are *not* re-shipped —
    /// only edge features and time deltas cross PCIe each batch.
    fn edge_rows_per_event(&self, k: usize) -> usize {
        match self.cfg.n_layers {
            0 | 1 => k,
            _ => k + k * k,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        let mut m: Vec<&dyn Module> = vec![&self.feat_proj, &self.time_enc, &self.predictor];
        for a in &self.attn {
            m.push(a);
        }
        for l in &self.merge {
            m.push(l);
        }
        m
    }

    /// Sharded multi-GPU driver: events belong to the shard owning their
    /// source node (contiguous ranges); each shard samples and runs
    /// attention for its slice on its own device. Gathered neighbor
    /// feature rows the shard owns ship over its PCIe link; rows owned
    /// by other shards arrive as peer transfers from their device.
    fn infer_sharded(
        &mut self,
        ex: &mut Executor,
        cfg: &InferenceConfig,
        shards: usize,
    ) -> Result<RunSummary> {
        let k = cfg.n_neighbors.max(1);
        let n_layers = self.cfg.n_layers;
        let sampler = NeighborSampler::new(SampleStrategy::Uniform, cfg.seed);
        let row_bytes = ((self.data.edge_dim() + 2) * 4) as u64;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let n_nodes = self.data.stream.n_nodes();
        let owners = shard_owners(&dgnn_graph::contiguous_ranges(n_nodes, shards), n_nodes);

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let cached = cfg.feature_cache.is_some();
        cfg.apply_device_options(ex);

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced());
            dx.fork_streams_multi(shards);
            for batch in &batches {
                let mut slices: Vec<Vec<&dgnn_graph::TemporalEvent>> = vec![Vec::new(); shards];
                for e in batch {
                    slices[owners[e.src]].push(e);
                }
                for (s, slice) in slices.iter().enumerate() {
                    let shard: Result<()> = dx.on_device(s, |dx| {
                        let bsz = slice.len();
                        if bsz == 0 {
                            return Ok(());
                        }
                        let rep = representative(bsz);
                        let rows = bsz * self.rows_per_event(k);
                        let edge_rows = (bsz * self.edge_rows_per_event(k)) as u64;

                        // 1. Two-hop temporal sampling over the shard's
                        // roots, on this device's host lane.
                        let rep_layers = dx.on_stream(StreamId::Host, |dx| {
                            dx.scope("sampling", |dx| {
                                let roots: Vec<(usize, f64)> =
                                    slice.iter().take(rep).map(|e| (e.src, e.time)).collect();
                                let ks = vec![k; n_layers.max(1)];
                                let (layers, cost) =
                                    sampler.sample_khop_batch(&self.adj, &roots, &ks);
                                let scale = (bsz as u64).div_ceil(rep as u64);
                                let calls = (bsz * (1 + k)) as u64;
                                let sorted = (bsz * (1 + k)) as u64;
                                let sort_ops = sorted * (64 - sorted.max(2).leading_zeros() as u64);
                                let parallelism =
                                    if cfg.parallel_sampling { bsz as u64 } else { 1 };
                                dx.host(HostWork {
                                    label: "temporal_sampling",
                                    ops: cost.ops * scale + calls * SAMPLING_CALL_OPS + sort_ops,
                                    seq_bytes: 0,
                                    irregular_bytes: cost.irregular_bytes * scale,
                                    parallelism,
                                });
                                layers
                            })
                        });
                        lane_handoff(dx, true, StreamId::Host, StreamId::Copy);

                        // Split the gathered rows by owner: locally-owned
                        // rows cross this device's PCIe link, remote rows
                        // are peer traffic from their owner (counted on
                        // the representative sample, scaled to the
                        // shard's logical gather volume).
                        let mut nbr_counts = vec![0u64; shards];
                        let mut rep_total = 0u64;
                        for l in &rep_layers {
                            for nb in l {
                                nbr_counts[owners[nb.node]] += 1;
                                rep_total += 1;
                            }
                        }
                        let scaled_rows = |o: usize| {
                            match (nbr_counts[o] * edge_rows).checked_div(rep_total) {
                                Some(rows) => rows,
                                // No representative neighbors at all:
                                // charge the full gather locally.
                                None if o == s => edge_rows,
                                None => 0,
                            }
                        };

                        // 2. H2D of local rows + peer fetch of remote rows.
                        dx.on_stream(StreamId::Copy, |dx| {
                            dx.scope("memcpy_h2d", |dx| {
                                if cached {
                                    let local_keys: Vec<u64> = rep_layers
                                        .iter()
                                        .flat_map(|l| l.iter())
                                        .filter(|nb| owners[nb.node] == s)
                                        .map(|nb| nb.node as u64)
                                        .collect();
                                    if !local_keys.is_empty() {
                                        let nscale =
                                            scaled_rows(s) as f64 / local_keys.len() as f64;
                                        dx.fetch_rows(
                                            TensorClass::NodeFeature,
                                            &local_keys,
                                            row_bytes,
                                            nscale,
                                        );
                                    } else {
                                        dx.transfer(TransferDir::H2D, scaled_rows(s) * row_bytes);
                                    }
                                } else {
                                    dx.transfer(TransferDir::H2D, scaled_rows(s) * row_bytes);
                                }
                                for o in 0..shards {
                                    if o != s && scaled_rows(o) > 0 {
                                        dx.peer_transfer(o, scaled_rows(o) * row_bytes);
                                    }
                                }
                                dx.flush_transfers();
                            })
                        });
                        lane_handoff(dx, true, StreamId::Copy, StreamId::Compute);
                        lane_handoff(dx, true, StreamId::Host, StreamId::Compute);

                        // Representative functional inputs, as in the
                        // single-device driver.
                        let rep_src: Vec<usize> = slice.iter().take(rep).map(|e| e.src).collect();
                        let src_feats = self.data.node_features.gather_rows(&rep_src)?;
                        let neigh: Vec<&dgnn_graph::sampler::SampledNeighbor> = rep_layers
                            .get(1)
                            .map(|l| l.iter().take(k).collect())
                            .unwrap_or_default();
                        let (neigh_feats, deltas) = if neigh.is_empty() {
                            (Tensor::zeros(&[1, self.data.node_dim()]), vec![0.0f32])
                        } else {
                            let ids: Vec<usize> = neigh.iter().map(|s| s.node).collect();
                            #[expect(clippy::cast_possible_truncation, reason = "f32 timestamps")]
                            let times: Vec<f32> = neigh.iter().map(|s| s.time as f32).collect();
                            (self.data.node_features.gather_rows(&ids)?, times)
                        };
                        let kn = neigh_feats.dims()[0];

                        // 3. Time encoding + attention + prediction on the
                        // shard's compute lane.
                        let rep_time = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("time_encoding", |dx| {
                                let n_phys = deltas.len();
                                let t = Tensor::from_vec(deltas.clone(), &[n_phys])?;
                                let t = dx.adopt(t, rows as f64 / n_phys as f64);
                                self.time_enc.forward(dx, &t)
                            })
                        })?;
                        let out = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("attention", |dx| -> Result<DeviceTensor> {
                                let src = dx.adopt(src_feats.clone(), bsz as f64 / rep as f64);
                                let q0 = self.feat_proj.forward(dx, &src)?;
                                let nbr =
                                    dx.adopt(neigh_feats.clone(), (bsz * k) as f64 / kn as f64);
                                let nf = self.feat_proj.forward(dx, &nbr)?;
                                let nt = if nf.data().dims()[0] == rep_time.data().dims()[0] {
                                    let merged = nf.data().concat_cols(rep_time.data())?;
                                    let merged = dx.adopt(merged, nf.scale());
                                    self.merge[0].forward(dx, &merged)?
                                } else {
                                    nf
                                };
                                let mut hid = q0;
                                for layer in 0..n_layers {
                                    let targets = if layer + 1 == n_layers { bsz } else { bsz * k };
                                    let q_rows = hid.data().dims()[0];
                                    let q = dx
                                        .adopt(hid.data().clone(), targets as f64 / q_rows as f64);
                                    let kv_rows = nt.data().dims()[0];
                                    let kv = dx.adopt(
                                        nt.data().clone(),
                                        (targets * k) as f64 / kv_rows as f64,
                                    );
                                    hid = self.attn[layer].forward(dx, &q, &kv, &kv)?;
                                }
                                Ok(hid)
                            })
                        })?;
                        let result = dx.on_stream(StreamId::Compute, |dx| {
                            dx.scope("prediction", |dx| -> Result<DeviceTensor> {
                                let out_rows = out.data().dims()[0];
                                let pair = dx.adopt(
                                    out.data().concat_cols(out.data())?,
                                    bsz as f64 / out_rows as f64,
                                );
                                let score = self.predictor.forward(dx, &pair)?;
                                checksum += score.data().sum();
                                Ok(dx.adopt(out.data().clone(), bsz as f64 / out_rows as f64))
                            })
                        })?;

                        // 4. Target embeddings back over this shard's link.
                        lane_handoff(dx, true, StreamId::Compute, StreamId::Copy);
                        dx.on_stream(StreamId::Copy, |dx| {
                            dx.scope("memcpy_d2h", |dx| {
                                dx.download(&result);
                                dx.flush_transfers();
                            })
                        });
                        Ok(())
                    });
                    shard?;
                }
                shard_barrier(&mut dx, shards);
                iterations += 1;
            }
            dx.join_streams();
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

impl DgnnModel for Tgat {
    fn name(&self) -> &'static str {
        "tgat"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "tgat")
            .expect("tgat registered")
    }

    fn param_bytes(&self) -> u64 {
        // Learned node embeddings live on the GPU alongside the weights.
        self.modules().iter().map(|m| m.param_bytes()).sum::<u64>()
            + self.data.node_features.byte_len()
    }

    fn param_tensors(&self) -> u64 {
        self.modules()
            .iter()
            .map(|m| m.param_tensor_count())
            .sum::<u64>()
            + 1
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        let rows = cfg.batch_size * self.rows_per_event(cfg.n_neighbors);
        (rows * (self.cfg.dim + self.cfg.time_dim) * 4) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let shards = cfg.effective_shards(ex);
        if shards > 1 {
            return self.infer_sharded(ex, cfg, shards);
        }
        let k = cfg.n_neighbors.max(1);
        let d = self.cfg.dim;
        let n_layers = self.cfg.n_layers;
        let sampler = NeighborSampler::new(SampleStrategy::Uniform, cfg.seed);
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let gpu = ex.mode() == ExecMode::Gpu;
        let overlap = cfg.pipeline_overlap && gpu;
        let granular = cfg.granular_transfers() && gpu;
        let cached = cfg.feature_cache.is_some() && gpu;
        cfg.apply_device_options(ex);

        let time = ex.scope("inference", |ex| -> Result<()> {
            let mut dx = Dispatcher::with_coalescing(ex, cfg.coalesced() && gpu);
            if overlap {
                dx.fork_streams();
            }
            let mut staging = DoubleBuffer::new();
            for (i, batch) in batches.iter().enumerate() {
                let bsz = batch.len();
                let rep = representative(bsz);
                let rows = bsz * self.rows_per_event(k);
                let edge_rows = bsz * self.edge_rows_per_event(k);

                // 1. Temporal neighborhood sampling on the CPU, fanned
                // out over the batch's roots (the parallel CSR engine);
                // serial and parallel runs are byte-identical, only the
                // *charged* critical path differs. In pipelined mode it
                // runs on the host lane, overlapping the previous batch's
                // kernels, but may not reuse a staging buffer before the
                // copy engine has drained it (depth-2 double buffering).
                staging.acquire(&mut dx, overlap, i, StreamId::Host);
                let rep_layers = on_lane(&mut dx, overlap, StreamId::Host, |dx| {
                    dx.scope("sampling", |dx| {
                        let roots: Vec<(usize, f64)> =
                            batch.iter().take(rep).map(|e| (e.src, e.time)).collect();
                        let ks = vec![k; n_layers.max(1)];
                        let (layers, cost) = sampler.sample_khop_batch(&self.adj, &roots, &ks);
                        let scale = (bsz as u64).div_ceil(rep as u64);
                        let calls = (bsz * (1 + k)) as u64;
                        // The reference also sorts the sampled node indices
                        // per batch so the feature gather walks forward.
                        let sorted = (bsz * (1 + k)) as u64;
                        let sort_ops = sorted * (64 - sorted.max(2).leading_zeros() as u64);
                        let parallelism = if cfg.parallel_sampling { bsz as u64 } else { 1 };
                        dx.host(HostWork {
                            label: "temporal_sampling",
                            ops: cost.ops * scale + calls * SAMPLING_CALL_OPS + sort_ops,
                            seq_bytes: 0,
                            irregular_bytes: cost.irregular_bytes * scale,
                            parallelism,
                        });
                        layers
                    })
                });
                lane_handoff(&mut dx, overlap, StreamId::Host, StreamId::Copy);

                // 2. The gathered edge features + time deltas cross PCIe
                // once per batch. Staged granularity prices one aggregate
                // payload whose logical bytes are the full `edge_rows`
                // feature block; granular modes price its constituent
                // tensors (edge features, time deltas, neighbor indices)
                // individually, summing to exactly the same bytes.
                on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                    dx.scope("memcpy_h2d", |dx| {
                        if cached {
                            // Cache-routed fetch: one row per sampled
                            // neighbor (features + delta + index), keyed by
                            // node id. Hot nodes of the power-law graph stay
                            // device-resident; only cold rows are priced, as
                            // one merged H2D copy. The sampled ids are the
                            // representative subset, so each key's row
                            // carries the logical batch scale.
                            let mut keys: Vec<u64> = rep_layers
                                .iter()
                                .flat_map(|l| l.iter().map(|s| s.node as u64))
                                .collect();
                            if keys.is_empty() {
                                keys = batch.iter().take(rep).map(|e| e.src as u64).collect();
                            }
                            let row_bytes = ((self.data.edge_dim() + 2) * 4) as u64;
                            let scale = edge_rows as f64 / keys.len() as f64;
                            dx.fetch_rows(TensorClass::NodeFeature, &keys, row_bytes, scale);
                            dx.flush_transfers();
                        } else if granular {
                            let feat_bytes = (edge_rows * self.data.edge_dim() * 4) as u64;
                            let delta_bytes = (edge_rows * 4) as u64;
                            let index_bytes = (edge_rows * 4) as u64;
                            for bytes in [feat_bytes, delta_bytes, index_bytes] {
                                dx.transfer(TransferDir::H2D, bytes);
                            }
                            dx.flush_transfers();
                        } else {
                            let payload = DeviceTensor::host_scaled(
                                Tensor::zeros(&[1, self.data.edge_dim() + 2]),
                                edge_rows as f64,
                            );
                            dx.ensure_resident(&payload);
                        }
                    })
                });
                staging.uploaded(&mut dx, overlap);
                lane_handoff(&mut dx, overlap, StreamId::Copy, StreamId::Compute);

                // Representative functional inputs: the first `rep`
                // targets and one event's worth of sampled neighbors.
                let rep_src: Vec<usize> = batch.iter().take(rep).map(|e| e.src).collect();
                let src_feats = self.data.node_features.gather_rows(&rep_src)?;
                let neigh: Vec<&dgnn_graph::sampler::SampledNeighbor> = rep_layers
                    .get(1)
                    .map(|l| l.iter().take(k).collect())
                    .unwrap_or_default();
                let (neigh_feats, deltas) = if neigh.is_empty() {
                    (Tensor::zeros(&[1, self.data.node_dim()]), vec![0.0f32])
                } else {
                    let ids: Vec<usize> = neigh.iter().map(|s| s.node).collect();
                    #[expect(clippy::cast_possible_truncation, reason = "f32 timestamps suffice")]
                    let times: Vec<f32> = neigh.iter().map(|s| s.time as f32).collect();
                    (self.data.node_features.gather_rows(&ids)?, times)
                };
                let kn = neigh_feats.dims()[0];

                // 3. Time encoding, priced for all gathered rows.
                let rep_time = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("time_encoding", |dx| {
                        let n_phys = deltas.len();
                        let t = Tensor::from_vec(deltas.clone(), &[n_phys])?;
                        // The deltas arrived inside the staged payload, so
                        // they are already device-resident.
                        let t = dx.adopt(t, rows as f64 / n_phys as f64);
                        self.time_enc.forward(dx, &t)
                    })
                })?;

                // 4. Attention layers. The queries are `rep` physical
                // target rows standing in for the layer's logical target
                // count; the keys/values are ONE event's `kn` neighbor
                // rows standing in for `targets × k` logical rows — both
                // quadratic attention dims (`k`, `d`) stay physical, so
                // scaled pricing equals full-batch pricing.
                let out = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("attention", |dx| -> Result<DeviceTensor> {
                        let src = dx.adopt(src_feats.clone(), bsz as f64 / rep as f64);
                        let q0 = self.feat_proj.forward(dx, &src)?;
                        let nbr = dx.adopt(neigh_feats.clone(), (bsz * k) as f64 / kn as f64);
                        let nf = self.feat_proj.forward(dx, &nbr)?;
                        let nt = if nf.data().dims()[0] == rep_time.data().dims()[0] {
                            let merged = nf.data().concat_cols(rep_time.data())?;
                            let merged = dx.adopt(merged, nf.scale());
                            self.merge[0].forward(dx, &merged)?
                        } else {
                            nf
                        };
                        let mut h = q0;
                        for layer in 0..n_layers {
                            let targets = if layer + 1 == n_layers { bsz } else { bsz * k };
                            let q_rows = h.data().dims()[0];
                            let q = dx.adopt(h.data().clone(), targets as f64 / q_rows as f64);
                            let kv_rows = nt.data().dims()[0];
                            let kv =
                                dx.adopt(nt.data().clone(), (targets * k) as f64 / kv_rows as f64);
                            h = self.attn[layer].forward(dx, &q, &kv, &kv)?;
                        }
                        Ok(h)
                    })
                })?;

                // 5. Prediction head + copy-back of the target embeddings.
                let result = on_lane(&mut dx, overlap, StreamId::Compute, |dx| {
                    dx.scope("prediction", |dx| -> Result<DeviceTensor> {
                        let out_rows = out.data().dims()[0];
                        let pair = dx.adopt(
                            out.data().concat_cols(out.data())?,
                            bsz as f64 / out_rows as f64,
                        );
                        let score = self.predictor.forward(dx, &pair)?;
                        checksum += score.data().sum();
                        Ok(dx.adopt(out.data().clone(), bsz as f64 / out_rows as f64))
                    })
                })?;
                debug_assert_eq!(result.data().dims()[1], d);
                lane_handoff(&mut dx, overlap, StreamId::Compute, StreamId::Copy);
                on_lane(&mut dx, overlap, StreamId::Copy, |dx| {
                    dx.scope("memcpy_d2h", |dx| {
                        dx.download(&result);
                        // No-op unless coalescing staged this batch's
                        // crossings; then it prices the merged copy here.
                        dx.flush_transfers();
                    })
                });
                iterations += 1;
            }
            if overlap {
                dx.join_streams();
            }
            Ok(())
        });
        time?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{wikipedia, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> Tgat {
        Tgat::new(wikipedia(Scale::Tiny, 1), TgatConfig::default(), 7)
    }

    fn small_cfg() -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(50)
            .with_max_units(3)
    }

    #[test]
    fn runs_on_gpu_and_produces_profile() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let summary = model.run(&mut ex, &small_cfg()).unwrap();
        assert_eq!(summary.iterations, 3);
        assert!(summary.checksum.is_finite());
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.breakdown.share_of("sampling") > 0.0);
        assert!(p.pcie_bytes > 0);
    }

    #[test]
    fn sampling_dominates_gpu_inference() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        model
            .run(&mut ex, &small_cfg().with_batch_size(200))
            .unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.breakdown.share_of("sampling") > 0.5,
            "sampling share {:.2} should dominate",
            p.breakdown.share_of("sampling")
        );
    }

    #[test]
    fn gpu_utilization_is_low_single_digit() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        model.run(&mut ex, &small_cfg()).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.utilization.average < 0.15,
            "util {}",
            p.utilization.average
        );
    }

    #[test]
    fn cpu_mode_runs_without_transfers() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let summary = model.run(&mut ex, &small_cfg()).unwrap();
        assert!(summary.inference_time.as_nanos() > 0);
        let p = InferenceProfile::capture(&ex, "inference");
        assert_eq!(p.pcie_bytes, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut model = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = model.run(&mut ex, &small_cfg()).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_neighbors_means_more_transfer_bytes() {
        let bytes_for = |k: usize| {
            let mut model = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            model.run(&mut ex, &small_cfg().with_neighbors(k)).unwrap();
            ex.timeline().transfer_bytes(None)
        };
        let b20 = bytes_for(20);
        let b100 = bytes_for(100);
        assert!(b100 > 10 * b20, "k=100 ({b100}) should dwarf k=20 ({b20})");
    }

    #[test]
    fn param_accounting_is_positive() {
        let model = build();
        assert!(model.param_bytes() > 10_000);
        assert!(model.param_tensors() > 10);
        assert!(model.activation_bytes(&small_cfg()) > 0);
    }

    #[test]
    fn info_matches_registry() {
        let model = build();
        let info = model.info();
        assert_eq!(info.name, "tgat");
        assert!(info.evolving.edge_features);
    }

    #[test]
    fn sharded_sampling_splits_across_devices_and_wins() {
        let run = |shards: usize| {
            let mut model = build();
            let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(4), ExecMode::Gpu);
            let s = model
                .run(
                    &mut ex,
                    &small_cfg().with_batch_size(200).with_shards(shards),
                )
                .unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(4), run(4), "sharded replay is bit-stable");
        let (_, single) = run(1);
        let (_, sharded) = run(4);
        assert!(
            sharded < single,
            "sharding the sampling-bound model must win: {sharded:?} vs {single:?}"
        );
    }

    #[test]
    fn sharded_remote_neighbor_rows_are_peer_priced() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::multi_gpu_nvlink(2), ExecMode::Gpu);
        model
            .run(&mut ex, &small_cfg().with_batch_size(100).with_shards(2))
            .unwrap();
        let peer: u64 = ex
            .timeline()
            .events()
            .iter()
            .filter(|e| e.category == dgnn_device::EventCategory::PeerTransfer)
            .map(|e| e.bytes)
            .sum();
        assert!(
            peer > 0,
            "remote neighbor feature rows must cross the interconnect"
        );
    }
}
