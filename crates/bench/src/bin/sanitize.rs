//! `sanitize` — run the timeline sanitizer over the model zoo.
//!
//! Replays every model (or `--model NAME`) with provenance tracing on
//! and audits the recorded schedule against the eight hazard rules.
//! Exits non-zero if any hazard is found, so CI can gate on it.
//!
//! ```text
//! cargo run --release -p dgnn-bench --bin sanitize -- --scale tiny
//! cargo run --release -p dgnn-bench --bin sanitize -- --model tgn --mode overlap
//! ```
//!
//! Modes: `serial`, `overlap`, `overlap-coalesced`, or `all` (default).

use dgnn_bench::{
    build_model, default_config, flag_value, measure_sanitized, parse_opts, MODEL_NAMES,
};
use dgnn_device::ExecMode;
use dgnn_models::{InferenceConfig, TransferGranularity};

fn mode_config(base: InferenceConfig, mode: &str) -> InferenceConfig {
    match mode {
        "serial" => base,
        "overlap" => base.with_pipeline_overlap(true),
        "overlap-coalesced" => base
            .with_pipeline_overlap(true)
            .with_transfer_granularity(TransferGranularity::Coalesced),
        other => panic!("unknown --mode `{other}` (serial|overlap|overlap-coalesced|all)"),
    }
}

fn main() {
    let opts = parse_opts();
    let only_model = flag_value(&opts.rest, "--model");
    let mode_sel = flag_value(&opts.rest, "--mode").unwrap_or("all");
    let modes: Vec<&str> = match mode_sel {
        "all" => vec!["serial", "overlap", "overlap-coalesced"],
        m => vec![m],
    };

    let mut total_hazards = 0usize;
    let mut runs = 0usize;
    println!(
        "timeline sanitizer — scale {:?}, seed {}",
        opts.scale, opts.seed
    );
    println!();
    for &name in MODEL_NAMES {
        if let Some(want) = only_model {
            if name != want {
                continue;
            }
        }
        for &mode in &modes {
            let cfg = mode_config(default_config(name), mode);
            let mut model = build_model(name, opts.scale, opts.seed);
            let (report, run) = measure_sanitized(model.as_mut(), ExecMode::Gpu, &cfg);
            runs += 1;
            total_hazards += report.hazards.len();
            let verdict = if report.is_clean() {
                "clean"
            } else {
                "HAZARDS"
            };
            println!(
                "{name:>14} {mode:<18} {verdict:<8} {:>7} trace records, {:>6} events, {} fork(s), {} B H2D",
                report.stats.trace_records,
                report.stats.timeline_events,
                report.stats.forks,
                report.stats.priced_bytes[0],
            );
            if !report.is_clean() {
                print!("{report}");
            }
            drop(run);
        }
    }
    println!();
    if total_hazards > 0 {
        println!("FAIL: {total_hazards} hazard(s) across {runs} run(s)");
        std::process::exit(1);
    }
    println!("OK: 0 hazards across {runs} run(s)");
}
