//! Multi-head scaled-dot-product attention (TGAT, ASTGNN, LDG).

use dgnn_device::{DeviceTensor, Dispatcher};
use dgnn_tensor::{Initializer, OpDescriptor, Tensor, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

/// Multi-head attention with fused head projections.
///
/// `attend(q: [m, d], k: [n, d], v: [n, d]) → [m, d]` where `d` is the
/// model dimension, split evenly over `heads`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHeadAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    heads: usize,
}

impl MultiHeadAttention {
    /// Creates the attention block.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, rng: &mut TensorRng) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must divide evenly into heads"
        );
        let mk = |name: &str, rng: &mut TensorRng| {
            Param::new(name, rng.init(&[dim, dim], Initializer::XavierUniform))
        };
        MultiHeadAttention {
            wq: mk("wq", rng),
            wk: mk("wk", rng),
            wv: mk("wv", rng),
            wo: mk("wo", rng),
            dim,
            heads,
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Attention forward pass.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `q`/`k`/`v` widths differ from `dim` or
    /// `k`/`v` row counts differ.
    pub fn forward(
        &self,
        dx: &mut Dispatcher,
        q: &DeviceTensor,
        k: &DeviceTensor,
        v: &DeviceTensor,
    ) -> Result<DeviceTensor> {
        let m = q.data().dims()[0];
        let n = k.data().dims()[0];
        let d = self.dim;
        let dh = d / self.heads;

        // Projections: one GEMM for queries, one fused GEMM for keys and
        // values together (they share the `[n, d]` input).
        let qp = dx.matmul_nt("attn_q_proj", q, &self.wq.value)?;
        dx.ensure_resident(k);
        dx.ensure_resident(v);
        let (kp, vp) = dx.fused(
            OpDescriptor::gemm("attn_kv_proj", n, d, 2 * d),
            k.scale(),
            || {
                let kp = k.data().matmul(&self.wk.value.transpose()?)?;
                let vp = v.data().matmul(&self.wv.value.transpose()?)?;
                Ok((kp, vp))
            },
        )?;

        // Per-head scores, softmax, weighted sum: computed in one pass
        // below, charged as the three batched kernels a fused attention
        // implementation would launch.
        dx.charge(
            OpDescriptor::batched_gemm("attn_scores", self.heads, m, dh, n),
            q.scale(),
        );
        dx.charge(
            OpDescriptor::reduce("attn_softmax", self.heads * m, n),
            q.scale(),
        );
        dx.charge(
            OpDescriptor::batched_gemm("attn_context", self.heads, m, n, dh),
            q.scale(),
        );

        let scale = 1.0 / (dh as f32).sqrt();
        let mut context = Tensor::zeros(&[m, d]);
        for h in 0..self.heads {
            let slice_cols = |t: &Tensor, rows: usize| -> Result<Tensor> {
                let mut data = Vec::with_capacity(rows * dh);
                for r in 0..rows {
                    let off = r * d + h * dh;
                    data.extend_from_slice(&t.as_slice()[off..off + dh]);
                }
                Tensor::from_vec(data, &[rows, dh])
            };
            let qh = slice_cols(qp.data(), m)?;
            let kh = slice_cols(&kp, n)?;
            let vh = slice_cols(&vp, n)?;
            let scores = qh.matmul(&kh.transpose()?)?.scale(scale);
            let weights = scores.softmax_rows()?;
            let ctx = weights.matmul(&vh)?;
            // Write the head's slice back.
            for r in 0..m {
                for c in 0..dh {
                    context.set(&[r, h * dh + c], ctx.at(&[r, c])?)?;
                }
            }
        }

        // Output projection.
        let context = dx.adopt(context, q.scale());
        dx.matmul_nt("attn_out_proj", &context, &self.wo.value)
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.wq, &self.wk, &self.wv, &self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, PlatformSpec};

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    fn dt(t: Tensor) -> DeviceTensor {
        DeviceTensor::host(t)
    }

    #[test]
    fn output_shape_matches_queries() {
        let mut rng = TensorRng::seed(1);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let q = dt(TensorRng::seed(2).init(&[3, 8], Initializer::Normal(1.0)));
        let kv = dt(TensorRng::seed(3).init(&[5, 8], Initializer::Normal(1.0)));
        let out = attn.forward(&mut dx, &q, &kv, &kv).unwrap();
        assert_eq!(out.data().dims(), &[3, 8]);
        assert!(out.data().all_finite());
    }

    #[test]
    fn attention_over_identical_keys_is_mean_like() {
        // With identical keys, softmax weights are uniform, so the output
        // is the projected mean of values — identical across queries.
        let mut rng = TensorRng::seed(4);
        let attn = MultiHeadAttention::new(4, 1, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let q = dt(TensorRng::seed(5).init(&[2, 4], Initializer::Normal(1.0)));
        let k = dt(Tensor::ones(&[6, 4]));
        let v = dt(TensorRng::seed(6).init(&[6, 4], Initializer::Normal(1.0)));
        let out = attn.forward(&mut dx, &q, &k, &v).unwrap();
        let row0 = out.data().row(0).unwrap();
        let row1 = out.data().row(1).unwrap();
        row0.assert_close(&row1, 1e-5);
    }

    #[test]
    #[should_panic(expected = "heads")]
    fn dim_must_divide_heads() {
        let mut rng = TensorRng::seed(7);
        let _ = MultiHeadAttention::new(10, 3, &mut rng);
    }

    #[test]
    fn four_parameter_matrices() {
        let mut rng = TensorRng::seed(8);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        assert_eq!(attn.param_tensor_count(), 4);
        assert_eq!(attn.param_bytes(), 4 * 8 * 8 * 4);
    }

    #[test]
    fn launches_projection_score_and_context_kernels() {
        let mut rng = TensorRng::seed(9);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let q = dt(Tensor::zeros(&[2, 8]));
        let kv = dt(Tensor::zeros(&[3, 8]));
        attn.forward(&mut dx, &q, &kv, &kv).unwrap();
        assert!(dx.executor().timeline().len() >= 6);
    }

    #[test]
    fn mismatched_dims_error() {
        let mut rng = TensorRng::seed(10);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let mut ex = ex();
        let mut dx = Dispatcher::new(&mut ex);
        let q = dt(Tensor::zeros(&[2, 6]));
        let kv = dt(Tensor::zeros(&[3, 8]));
        assert!(attn.forward(&mut dx, &q, &kv, &kv).is_err());
    }
}
