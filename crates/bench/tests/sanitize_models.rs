//! Timeline-sanitizer integration sweep: every model in the zoo must
//! produce a hazard-free schedule in serial mode, under pipeline
//! overlap, and under pipeline overlap with coalesced transfers.
//!
//! Serial schedules are totally ordered so a hazard there means the
//! dispatcher itself is broken; the overlap modes are the interesting
//! ones — they exercise the fork/join machinery, cross-lane event
//! handoffs and (for coalesced) the staged-byte flush discipline of
//! every driver.

use dgnn_bench::{build_model, default_config, measure_sanitized, MODEL_NAMES};
use dgnn_datasets::Scale;
use dgnn_device::ExecMode;
use dgnn_models::{InferenceConfig, TransferGranularity};

const SEED: u64 = 7;

fn shrink(cfg: InferenceConfig) -> InferenceConfig {
    // Tiny datasets + few units keep the sweep fast while still running
    // multiple batches through every lane.
    cfg.with_max_units(2)
}

fn assert_clean(name: &str, mode_desc: &str, cfg: &InferenceConfig) {
    let mut model = build_model(name, Scale::Tiny, SEED);
    let (report, _run) = measure_sanitized(model.as_mut(), ExecMode::Gpu, cfg);
    assert!(
        report.is_clean(),
        "{name} ({mode_desc}) produced hazards:\n{report}"
    );
    assert!(
        report.stats.trace_records > 0,
        "{name} ({mode_desc}) recorded no trace — tracing hook broken"
    );
}

#[test]
fn all_models_are_hazard_free_in_serial_mode() {
    for &name in MODEL_NAMES {
        let cfg = shrink(default_config(name));
        assert_clean(name, "serial", &cfg);
    }
}

#[test]
fn all_models_are_hazard_free_under_pipeline_overlap() {
    for &name in MODEL_NAMES {
        let cfg = shrink(default_config(name)).with_pipeline_overlap(true);
        assert_clean(name, "pipeline_overlap", &cfg);
    }
}

#[test]
fn all_models_are_hazard_free_under_overlap_with_coalescing() {
    for &name in MODEL_NAMES {
        let cfg = shrink(default_config(name))
            .with_pipeline_overlap(true)
            .with_transfer_granularity(TransferGranularity::Coalesced);
        assert_clean(name, "pipeline_overlap+coalesced", &cfg);
    }
}

#[test]
fn cpu_runs_trace_cleanly_too() {
    // CPU-only execution records accesses but no crossings; the
    // sanitizer must not confuse host tensors with device residents.
    for &name in MODEL_NAMES {
        let cfg = shrink(default_config(name));
        let mut model = build_model(name, Scale::Tiny, SEED);
        let (report, _run) = measure_sanitized(model.as_mut(), ExecMode::CpuOnly, &cfg);
        assert!(report.is_clean(), "{name} (cpu): \n{report}");
        assert_eq!(
            report.stats.priced_bytes,
            [0, 0],
            "{name} (cpu) priced PCIe bytes without a GPU"
        );
    }
}
