//! Matrix multiplication kernels (the GEMM family).

use crate::cost::OpDescriptor;
use crate::{Result, Tensor, TensorError};

/// Descriptor of [`Tensor::matmul`] on `[m, k] × [k, n]`.
pub fn matmul_desc(m: usize, k: usize, n: usize) -> OpDescriptor {
    OpDescriptor::gemm("matmul", m, k, n)
}

/// Descriptor of [`Tensor::matvec`] on `[m, k] × [k]`.
pub fn matvec_desc(m: usize, k: usize) -> OpDescriptor {
    OpDescriptor::gemm("matvec", m, k, 1)
}

/// Descriptor of [`Tensor::bmm`] on `[b, m, k] × [b, k, n]`.
pub fn bmm_desc(b: usize, m: usize, k: usize, n: usize) -> OpDescriptor {
    OpDescriptor::batched_gemm("bmm", b, m, k, n)
}

/// Descriptor of [`Tensor::outer`] on `[m] × [n]`.
pub fn outer_desc(m: usize, n: usize) -> OpDescriptor {
    OpDescriptor::gemm("outer", m, 1, n)
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// ```
    /// use dgnn_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), dgnn_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// let c = a.matmul(&b)?;
    /// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::ShapeMismatch`] unless the inner dimensions agree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: rhs.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![0.0f32; m * n];
        // ikj loop order keeps the innermost access contiguous on both
        // `b` and `out`.
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `[m, k] × [k] → [m]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors analogous to [`Tensor::matmul`].
    pub fn matvec(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 2,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "matvec",
                expected: 1,
                actual: rhs.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if rhs.dims()[0] != k {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let x = rhs.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(av, xv)| av * xv).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Batched matrix product of two rank-3 tensors:
    /// `[b, m, k] × [b, k, n] → [b, m, n]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when ranks are not 3, batch dimensions differ,
    /// or inner dimensions disagree.
    pub fn bmm(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "bmm",
                expected: 3,
                actual: self.rank(),
            });
        }
        if rhs.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "bmm",
                expected: 3,
                actual: rhs.rank(),
            });
        }
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (rhs.dims()[0], rhs.dims()[1], rhs.dims()[2]);
        if b != b2 || k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "bmm",
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; b * m * n];
        let a = self.as_slice();
        let bb = rhs.as_slice();
        for batch in 0..b {
            let aoff = batch * m * k;
            let boff = batch * k * n;
            let ooff = batch * m * n;
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[aoff + i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out[ooff + i * n + j] += aik * bb[boff + kk * n + j];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Outer product of two rank-1 tensors: `[m] × [n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 1.
    pub fn outer(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 1 || rhs.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "outer",
                expected: 1,
                actual: self.rank().max(rhs.rank()),
            });
        }
        let (m, n) = (self.len(), rhs.len());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = self.as_slice()[i] * rhs.as_slice()[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let id = Tensor::eye(3);
        a.matmul(&id).unwrap().assert_close(&a, 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 1.0, 2.0, 1.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[3.0, 1.0, 4.0, 1.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_vec(vec![1.0, -1.0, 2.0], &[3]).unwrap();
        let y = a.matvec(&x).unwrap();
        let via_mm = a.matmul(&x.reshape(&[3, 1]).unwrap()).unwrap();
        assert_eq!(y.as_slice(), via_mm.as_slice());
    }

    #[test]
    fn bmm_batches_independently() {
        let a = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 2, 2]).unwrap();
        let id =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0], &[2, 2, 2]).unwrap();
        a.bmm(&id).unwrap().assert_close(&a, 1e-6);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let u = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = u.outer(&v).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.at(&[1, 2]).unwrap(), 10.0);
    }
}
