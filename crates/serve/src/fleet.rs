//! Fleet-scale serving: N warm pools behind a router, with a
//! warm-up-priced autoscaler.
//!
//! The single-pool loop ([`crate::serve`]) amortizes the paper's §4.4
//! warm-up inside one box. This module scales the same discrete-event
//! discipline to a fleet:
//!
//! ```text
//! workload ──▶ router ──▶ pool 0 ─▶ replica sessions
//!   (shaped)    (policy)  pool 1 ─▶ replica sessions
//!                  ▲      pool …
//!                  │        ▲
//!              autoscaler ──┘ (spawn = provisioning warm-up,
//!                              drain = replica-seconds stop accruing)
//! ```
//!
//! * Every arrival is placed by the [`Router`] using only queue depths
//!   and model residency ([`PoolLoad`]); backpressure sheds at the
//!   *destination* pool's queue bound.
//! * The [`Autoscaler`] reads fleet-wide queue depth at each arrival —
//!   the deterministic latency signal, by Little's law — and can spawn
//!   a pool (whose replicas pay the full context + model-init
//!   provisioning warm-up before their first service, so scale-out is
//!   priced exactly like the paper's cold process start) or drain one
//!   (it finishes its queue, then stops accruing replica-seconds).
//! * Event ordering keeps the single-pool total order — `(time,
//!   priority, seq)` in one `BTreeMap`, `ReplicaFree < Arrival <
//!   BatchClose` at equal instants — so a fleet run replays bit for bit
//!   from its seed.

use std::collections::{BTreeMap, VecDeque};

use dgnn_device::{DurationNs, ExecMode, Executor, PlatformSpec};
use dgnn_graph::WindowBatcher;
use dgnn_profile::ServicePhases;

use crate::autoscaler::{Autoscaler, AutoscalerConfig, ScaleEvent, ScaleKind};
use crate::pool::WarmPool;
use crate::report::{FleetReport, ServedBatch, ServedRequest};
use crate::router::{PoolLoad, Router, RouterPolicy};
use crate::workload::{generate_shaped, RateError, Request, WorkloadShape};
use crate::{ServedModel, UNBOUNDED};

/// Full configuration of one fleet serving run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Seed for arrivals, mix assignment and router probes.
    pub seed: u64,
    /// Number of requests to generate.
    pub n_requests: usize,
    /// Long-run average arrivals per simulated second.
    pub arrival_rate_rps: f64,
    /// Traffic shape layered on the base Poisson process.
    pub shape: WorkloadShape,
    /// Placement policy.
    pub policy: RouterPolicy,
    /// Micro-batch window (per pool, per model).
    pub batch_window: DurationNs,
    /// Maximum requests per batch (capacity close).
    pub max_batch: usize,
    /// Pools provisioned before the first arrival.
    pub initial_pools: usize,
    /// Warm replica slots per pool.
    pub replicas_per_pool: usize,
    /// Admitted-but-unstarted requests a single pool holds before
    /// arrivals routed to it are shed ([`UNBOUNDED`] disables shedding).
    pub queue_bound: usize,
    /// End-to-end latency target a served request must meet to count
    /// as SLO-attained; shed requests always count as misses.
    pub slo: DurationNs,
    /// Autoscaler thresholds; `None` freezes the fleet at
    /// `initial_pools` (the static baseline).
    pub autoscaler: Option<AutoscalerConfig>,
    /// Execution mode for every replica session.
    pub mode: ExecMode,
    /// Record timelines + provenance traces for sanitizer audits.
    pub trace: bool,
    /// Simulated platform replicas run on.
    pub spec: PlatformSpec,
}

impl Default for FleetConfig {
    /// A small, always-valid smoke configuration: two static pools
    /// under join-shortest-queue.
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            n_requests: 64,
            arrival_rate_rps: 100.0,
            shape: WorkloadShape::Poisson,
            policy: RouterPolicy::JoinShortestQueue,
            batch_window: DurationNs::from_millis(5),
            max_batch: 4,
            initial_pools: 2,
            replicas_per_pool: 2,
            queue_bound: UNBOUNDED,
            slo: DurationNs::from_millis(250),
            autoscaler: None,
            mode: ExecMode::Gpu,
            trace: false,
            spec: PlatformSpec::default(),
        }
    }
}

impl FleetConfig {
    /// Validates the arrival rate and the shape parameters (see
    /// [`WorkloadShape::validate`]).
    ///
    /// # Errors
    ///
    /// Returns a [`RateError`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), RateError> {
        self.shape.validate(self.arrival_rate_rps)
    }
}

/// One dispatched batch, tagged with the pool that served it.
#[derive(Debug, Clone)]
pub struct FleetBatch {
    /// Fleet-wide id of the pool that served the batch.
    pub pool: usize,
    /// The underlying batch record.
    pub batch: ServedBatch,
}

/// Everything a fleet run produced: the report plus raw records, the
/// scale-decision audit trail, and every replica session for post-hoc
/// sanitizer audits.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Aggregated statistics.
    pub report: FleetReport,
    /// Per-request records of served requests, in arrival order.
    pub requests: Vec<ServedRequest>,
    /// Requests rejected by backpressure, in arrival order.
    pub shed: Vec<Request>,
    /// Per-batch service records, in dispatch order.
    pub batches: Vec<FleetBatch>,
    /// Scale decisions, in virtual-time order.
    pub scale_events: Vec<ScaleEvent>,
    /// Every replica session, pools in spawn order, slots in slot
    /// order within a pool.
    pub sessions: Vec<Executor>,
}

/// Event kinds, in tie-break priority order (the single-pool
/// discipline, extended with a pool coordinate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A replica finished its service (or its provisioning).
    ReplicaFree { pool: usize, slot: usize },
    /// A request arrives at the router.
    Arrival(usize),
    /// A batch window expires for one pool's model queue.
    BatchClose {
        pool: usize,
        model: usize,
        token: u64,
    },
}

impl Ev {
    fn priority(&self) -> u8 {
        match self {
            Ev::ReplicaFree { .. } => 0,
            Ev::Arrival(_) => 1,
            Ev::BatchClose { .. } => 3,
        }
    }
}

/// A closed batch waiting for a replica, within one pool.
#[derive(Debug)]
struct PendingBatch {
    model: usize,
    members: Vec<usize>,
    ready: DurationNs,
}

/// One pool plus its admission state and lifetime accounting.
struct PoolState {
    id: usize,
    pool: WarmPool,
    queues: Vec<VecDeque<usize>>,
    open_token: Vec<Option<u64>>,
    ready: VecDeque<PendingBatch>,
    /// Admitted but not yet dispatched (model queues + ready members).
    queued: usize,
    /// Replicas currently busy (provisioning or serving).
    busy: usize,
    spawned_at: DurationNs,
    retired_at: Option<DurationNs>,
    draining: bool,
}

impl PoolState {
    fn routable(&self) -> bool {
        !self.draining && self.retired_at.is_none()
    }

    fn holds(&self, model: usize) -> bool {
        (0..self.pool.len()).any(|i| self.pool.replica(i).resident() == Some(model))
    }

    /// A draining pool retires the instant it runs dry; from then on
    /// it accrues no replica-seconds.
    fn maybe_retire(&mut self, now: DurationNs) {
        if self.draining && self.retired_at.is_none() && self.queued == 0 && self.busy == 0 {
            debug_assert!(self.ready.is_empty());
            self.retired_at = Some(now);
        }
    }
}

/// Runs the fleet simulation to completion.
///
/// # Panics
///
/// Panics on an invalid configuration (empty mix, zero pools or
/// replicas, a rate or shape [`FleetConfig::validate`] rejects) or when
/// a model service fails.
///
/// ```
/// use dgnn_datasets::{wikipedia, Scale};
/// use dgnn_models::{InferenceConfig, Jodie, JodieConfig, ReplicaHandle};
/// use dgnn_serve::{serve_fleet, FleetConfig, ServedModel};
///
/// let data = wikipedia(Scale::Tiny, 11);
/// let zoo = vec![ServedModel {
///     handle: ReplicaHandle::new("jodie", move || {
///         Box::new(Jodie::new(data.clone(), JodieConfig::default(), 11))
///     }),
///     cfg: InferenceConfig::default().with_max_units(1),
///     weight: 1.0,
/// }];
/// let cfg = FleetConfig { n_requests: 6, initial_pools: 2, replicas_per_pool: 1, ..FleetConfig::default() };
/// let outcome = serve_fleet(&cfg, &zoo);
/// assert_eq!(outcome.report.served, 6);
/// assert!(outcome.report.replica_seconds > 0.0);
/// ```
pub fn serve_fleet(cfg: &FleetConfig, zoo: &[ServedModel]) -> FleetOutcome {
    assert!(!zoo.is_empty(), "model mix must not be empty");
    assert!(cfg.initial_pools >= 1, "fleet needs at least one pool");
    assert!(
        cfg.replicas_per_pool >= 1,
        "pools need at least one replica"
    );
    let weights: Vec<f64> = zoo.iter().map(|m| m.weight).collect();
    let requests = generate_shaped(
        cfg.seed,
        cfg.n_requests,
        cfg.arrival_rate_rps,
        &weights,
        &cfg.shape,
    );
    let batcher = WindowBatcher::new(cfg.batch_window.as_nanos(), cfg.max_batch);
    let mut router = Router::new(cfg.policy, cfg.seed);
    let mut autoscaler = cfg.autoscaler.map(Autoscaler::new);

    let mut events: BTreeMap<(u64, u8, u64), Ev> = BTreeMap::new();
    let mut seq = 0u64;
    let push = |events: &mut BTreeMap<(u64, u8, u64), Ev>, seq: &mut u64, t: DurationNs, ev: Ev| {
        *seq += 1;
        events.insert((t.as_nanos(), ev.priority(), *seq), ev);
    };

    let mut pools: Vec<PoolState> = Vec::new();
    let spawn = |pools: &mut Vec<PoolState>,
                 events: &mut BTreeMap<(u64, u8, u64), Ev>,
                 seq: &mut u64,
                 at: DurationNs| {
        let id = pools.len();
        let mut pool = WarmPool::new(cfg.replicas_per_pool, cfg.spec.clone(), cfg.mode, cfg.trace);
        // Scale-out pricing: each replica pays context + model init
        // before its first service, exactly like the t = 0 pools.
        for (slot, done) in pool.provision(zoo).into_iter().enumerate() {
            push(events, seq, at + done, Ev::ReplicaFree { pool: id, slot });
        }
        pools.push(PoolState {
            id,
            pool,
            queues: vec![VecDeque::new(); zoo.len()],
            open_token: vec![None; zoo.len()],
            ready: VecDeque::new(),
            queued: 0,
            busy: cfg.replicas_per_pool,
            spawned_at: at,
            retired_at: None,
            draining: false,
        });
    };
    for _ in 0..cfg.initial_pools {
        spawn(&mut pools, &mut events, &mut seq, DurationNs::ZERO);
    }
    for r in &requests {
        push(&mut events, &mut seq, r.arrival, Ev::Arrival(r.id));
    }

    let mut served: Vec<ServedRequest> = Vec::new();
    let mut shed: Vec<Request> = Vec::new();
    let mut batches: Vec<FleetBatch> = Vec::new();
    let mut dispatch_seq = 0u64;
    let mut peak_pools = cfg.initial_pools;
    let mut makespan = DurationNs::ZERO;

    while let Some((&key, &ev)) = events.iter().next() {
        events.remove(&key);
        let now = DurationNs::from_nanos(key.0);
        match ev {
            Ev::Arrival(id) => {
                let req = requests[id];
                // The autoscaler reads the fleet before placement, so a
                // spawned pool is routable for this very arrival.
                if let Some(scaler) = autoscaler.as_mut() {
                    let queued_total: usize = pools
                        .iter()
                        .filter(|p| p.routable())
                        .map(|p| p.queued)
                        .sum();
                    let active = pools.iter().filter(|p| p.routable()).count();
                    match scaler.decide(now, queued_total, active) {
                        Some(ScaleKind::Out) => {
                            spawn(&mut pools, &mut events, &mut seq, now);
                            peak_pools = peak_pools.max(active + 1);
                        }
                        Some(ScaleKind::In) => {
                            // Drain the least-loaded routable pool,
                            // newest on ties.
                            if let Some(pid) = pools
                                .iter()
                                .filter(|p| p.routable())
                                .min_by_key(|p| (p.queued, std::cmp::Reverse(p.id)))
                                .map(|p| p.id)
                            {
                                pools[pid].draining = true;
                                pools[pid].maybe_retire(now);
                            }
                        }
                        None => {}
                    }
                }

                let loads: Vec<PoolLoad> = pools
                    .iter()
                    .filter(|p| p.routable())
                    .map(|p| PoolLoad {
                        pool: p.id,
                        queued: p.queued,
                        resident: p.holds(req.model),
                    })
                    .collect();
                let dest = router.place(&loads);
                let p = &mut pools[dest];
                if p.queued >= cfg.queue_bound {
                    shed.push(req);
                    continue;
                }
                p.queued += 1;
                p.queues[req.model].push_back(id);
                if batcher.is_full(p.queues[req.model].len()) {
                    p.open_token[req.model] = None;
                    close_batch(p, req.model, now, &batcher);
                    try_dispatch(
                        now,
                        zoo,
                        &mut pools[dest],
                        &requests,
                        &mut served,
                        &mut batches,
                        &mut dispatch_seq,
                        &mut events,
                        &mut seq,
                    );
                } else if p.queues[req.model].len() == 1 {
                    seq += 1;
                    let token = seq;
                    p.open_token[req.model] = Some(token);
                    let deadline = DurationNs::from_nanos(batcher.deadline(now.as_nanos()));
                    let ev = Ev::BatchClose {
                        pool: dest,
                        model: req.model,
                        token,
                    };
                    events.insert((deadline.as_nanos(), ev.priority(), token), ev);
                }
            }
            Ev::BatchClose { pool, model, token } => {
                if pools[pool].open_token[model] != Some(token) {
                    continue; // stale: already closed by capacity
                }
                pools[pool].open_token[model] = None;
                close_batch(&mut pools[pool], model, now, &batcher);
                try_dispatch(
                    now,
                    zoo,
                    &mut pools[pool],
                    &requests,
                    &mut served,
                    &mut batches,
                    &mut dispatch_seq,
                    &mut events,
                    &mut seq,
                );
            }
            Ev::ReplicaFree { pool, slot } => {
                // Every service or provisioning completion passes
                // through here, so the last one is the makespan (a
                // stale window token can outlive it and must not
                // stretch the clock).
                makespan = makespan.max(now);
                pools[pool].pool.mark_free(slot);
                pools[pool].busy -= 1;
                try_dispatch(
                    now,
                    zoo,
                    &mut pools[pool],
                    &requests,
                    &mut served,
                    &mut batches,
                    &mut dispatch_seq,
                    &mut events,
                    &mut seq,
                );
                pools[pool].maybe_retire(now);
            }
        }
    }

    assert!(
        pools.iter().all(|p| p.queued == 0
            && p.ready.is_empty()
            && p.queues.iter().all(VecDeque::is_empty)),
        "fleet loop terminated with work still queued"
    );

    served.sort_by_key(|r| r.id);
    let mut provision = ServicePhases::default();
    let mut cold_services = 0usize;
    for p in &pools {
        provision.accumulate(&p.pool.provision_phases());
        cold_services += p.pool.cold_starts();
    }
    let pool_spans: Vec<(DurationNs, Option<DurationNs>)> =
        pools.iter().map(|p| (p.spawned_at, p.retired_at)).collect();
    let final_pools = pools.iter().filter(|p| p.routable()).count();
    let scale_events: Vec<ScaleEvent> = autoscaler
        .as_ref()
        .map(|s| s.events().to_vec())
        .unwrap_or_default();

    let report = FleetReport::build(
        cfg,
        &requests,
        &served,
        &shed,
        &batches,
        &scale_events,
        &provision,
        cold_services,
        &pool_spans,
        peak_pools,
        final_pools,
        makespan,
    );
    FleetOutcome {
        report,
        requests: served,
        shed,
        batches,
        scale_events,
        sessions: pools
            .into_iter()
            .flat_map(|p| p.pool.into_sessions())
            .collect(),
    }
}

/// Drains up to one batch from a pool's model queue into its ready
/// FIFO.
fn close_batch(p: &mut PoolState, model: usize, now: DurationNs, batcher: &WindowBatcher) {
    let q = &mut p.queues[model];
    debug_assert!(!q.is_empty(), "closing an empty batch");
    let take = q.len().min(batcher.max_batch);
    let members: Vec<usize> = q.drain(..take).collect();
    p.ready.push_back(PendingBatch {
        model,
        members,
        ready: now,
    });
}

/// Starts ready batches on the pool's free replicas (FIFO with
/// affinity skip — the single-pool dispatch rule, scoped to one pool).
#[allow(clippy::too_many_arguments)] // event-loop state is deliberately flat
fn try_dispatch(
    now: DurationNs,
    zoo: &[ServedModel],
    p: &mut PoolState,
    requests: &[Request],
    served: &mut Vec<ServedRequest>,
    batches: &mut Vec<FleetBatch>,
    dispatch_seq: &mut u64,
    events: &mut BTreeMap<(u64, u8, u64), Ev>,
    seq: &mut u64,
) {
    while let Some((pos, slot)) = p
        .ready
        .iter()
        .enumerate()
        .find_map(|(i, b)| p.pool.pick(b.model).map(|(slot, _cold)| (i, slot)))
    {
        let batch = p.ready.remove(pos).expect("index from enumerate");
        *dispatch_seq += 1;
        let record = p
            .pool
            .service(slot, batch.model, zoo, batch.members.len(), *dispatch_seq);
        let completed = now + record.duration;
        p.queued -= batch.members.len();
        p.busy += 1;

        let batch_id = batches.len();
        for &id in &batch.members {
            served.push(ServedRequest {
                id,
                model: batch.model,
                arrival: requests[id].arrival,
                batch: batch_id,
                assembled: batch.ready,
                started: now,
                completed,
                cold: record.cold,
                staleness: DurationNs::ZERO,
            });
        }
        batches.push(FleetBatch {
            pool: p.id,
            batch: ServedBatch {
                model: batch.model,
                requests: batch.members,
                ready: batch.ready,
                started: now,
                completed,
                cold: record.cold,
                replica: record.replica,
                phases: record.phases,
                summary: record.summary,
            },
        });
        let ev = Ev::ReplicaFree { pool: p.id, slot };
        *seq += 1;
        events.insert((completed.as_nanos(), ev.priority(), *seq), ev);
    }
}
