//! Determinism contract of the parallel CSR sampling engine: for the
//! same seed, serial `sample_khop` and parallel `sample_khop_batch`
//! (any thread count) must produce identical samples and identical
//! accumulated `SampleCost`, across both strategies, on heavy-tailed
//! (power-law) interaction streams like the paper's datasets.

use dgnn_suite::datasets::PowerLawSampler;
use dgnn_suite::graph::sampler::SampleCost;
use dgnn_suite::graph::{EventStream, NeighborSampler, SampleStrategy, TemporalAdjacency};
use dgnn_suite::tensor::TensorRng;

/// Synthetic stream whose destination popularity is Zipf-distributed, so
/// adjacency rows span isolated nodes to heavy hubs.
fn power_law_stream(n_nodes: usize, n_events: usize, alpha: f64, seed: u64) -> EventStream {
    let mut rng = TensorRng::seed(seed);
    let zipf = PowerLawSampler::new(n_nodes, alpha);
    let mut t = 0.0f64;
    let events = (0..n_events)
        .map(|i| {
            t += rng.unit_f64();
            let src = rng.index(n_nodes);
            let mut dst = zipf.sample(&mut rng);
            if dst == src {
                dst = (dst + 1) % n_nodes;
            }
            dgnn_suite::graph::TemporalEvent {
                src,
                dst,
                time: t,
                feature_idx: i,
            }
        })
        .collect();
    EventStream::new(n_nodes, events).expect("generated stream is valid")
}

fn late_roots(stream: &EventStream, n: usize) -> Vec<(usize, f64)> {
    stream
        .events()
        .iter()
        .rev()
        .take(n)
        .map(|e| (e.src, e.time))
        .collect()
}

#[test]
fn parallel_khop_is_byte_identical_to_serial_on_power_law_streams() {
    for (alpha, seed) in [(0.8, 0xa1), (1.3, 0xa2), (1.8, 0xa3)] {
        let stream = power_law_stream(500, 6_000, alpha, seed);
        let adj = TemporalAdjacency::from_stream(&stream);
        let roots = late_roots(&stream, 200);
        let ks = [8, 4];
        for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
            let sampler = NeighborSampler::new(strategy, seed ^ 0x5eed);
            let (serial_layers, serial_cost) = sampler.sample_khop(&adj, &roots, &ks);
            assert_eq!(serial_layers.len(), ks.len() + 1);
            assert!(serial_cost.ops > 0);
            for threads in [1, 2, 5, 16] {
                let (layers, cost) = sampler.sample_khop_batch_threads(&adj, &roots, &ks, threads);
                assert_eq!(
                    layers, serial_layers,
                    "samples diverge (alpha {alpha}, {strategy:?}, threads {threads})"
                );
                assert_eq!(
                    cost, serial_cost,
                    "cost diverges (alpha {alpha}, {strategy:?}, threads {threads})"
                );
            }
            // Default-thread-count entry point agrees too.
            let (layers, cost) = sampler.sample_khop_batch(&adj, &roots, &ks);
            assert_eq!(layers, serial_layers);
            assert_eq!(cost, serial_cost);
        }
    }
}

#[test]
fn parallel_single_hop_matches_serial_loop() {
    let stream = power_law_stream(300, 3_000, 1.2, 0xb7);
    let adj = TemporalAdjacency::from_stream(&stream);
    let roots = late_roots(&stream, 150);
    for strategy in [SampleStrategy::MostRecent, SampleStrategy::Uniform] {
        let sampler = NeighborSampler::new(strategy, 17);
        let mut serial = Vec::new();
        let mut serial_cost = SampleCost::default();
        for &(node, t) in &roots {
            let (picked, c) = sampler.sample(&adj, node, t, 10);
            serial.push(picked);
            serial_cost.add(c);
        }
        for threads in [1, 4, 12] {
            let (batch, cost) = sampler.sample_batch_threads(&adj, &roots, 10, threads);
            assert_eq!(batch, serial, "{strategy:?} threads {threads}");
            assert_eq!(cost, serial_cost, "{strategy:?} threads {threads}");
        }
    }
}

#[test]
fn khop_roots_carry_no_feature_rows_and_hops_always_do() {
    let stream = power_law_stream(200, 2_000, 1.1, 0xc3);
    let adj = TemporalAdjacency::from_stream(&stream);
    let roots = late_roots(&stream, 64);
    let sampler = NeighborSampler::new(SampleStrategy::Uniform, 3);
    let (layers, _) = sampler.sample_khop_batch(&adj, &roots, &[6, 3]);
    assert!(layers[0].iter().all(|n| n.feature_idx.is_none()));
    for layer in &layers[1..] {
        assert!(layer.iter().all(|n| n.feature_idx.is_some()));
    }
    // Every sampled feature row must be a valid edge-feature index.
    let n_events = stream.len();
    for layer in &layers[1..] {
        assert!(layer
            .iter()
            .all(|n| n.feature_idx.expect("hop layer") < n_events));
    }
}

#[test]
fn most_recent_batch_windows_are_descending_in_time() {
    let stream = power_law_stream(200, 2_500, 1.4, 0xd9);
    let adj = TemporalAdjacency::from_stream(&stream);
    let roots = late_roots(&stream, 120);
    let sampler = NeighborSampler::new(SampleStrategy::MostRecent, 23);
    let (samples, _) = sampler.sample_batch(&adj, &roots, 12);
    assert_eq!(samples.len(), roots.len());
    let mut non_trivial = 0;
    for window in &samples {
        assert!(window.windows(2).all(|w| w[0].time >= w[1].time));
        if window.len() > 1 {
            non_trivial += 1;
        }
    }
    assert!(non_trivial > 10, "sweep should exercise real windows");
}
