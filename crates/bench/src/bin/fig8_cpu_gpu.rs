//! Regenerates Figure 8: inference time on CPU vs GPU and the GPU
//! speedup, swept over batch size for each model.
//!
//! Expected shapes (from the paper): TGAT's total time stays flat in
//! batch size (sampling-bound); DyRep and LDG never benefit from the
//! GPU; the snapshot models see modest or negative speedups.
//!
//! Usage: `fig8_cpu_gpu [--scale ...] [--model <name>]`

use dgnn_bench::{build_model, flag_value, measure, parse_opts};
use dgnn_device::ExecMode;
use dgnn_models::InferenceConfig;
use dgnn_profile::TextTable;

fn sweep(name: &str) -> (Vec<usize>, usize, usize) {
    // (batch sizes, neighbors, max_units)
    match name {
        "tgat" => (vec![200, 1_000, 2_000, 4_000], 20, 2),
        "tgn" => (vec![1_024, 4_096, 16_384], 10, 2),
        "jodie" => (vec![64, 128, 512], 20, 2),
        "dyrep" | "ldg_mlp" | "ldg_bilinear" => (vec![32, 64, 128, 256], 20, 1),
        "moldgnn" => (vec![32, 128, 512, 2_048], 20, 1),
        "astgnn" => (vec![4, 8, 16], 20, 2),
        // EvolveGCN: batch size is the snapshot count processed.
        _ => (vec![4, 8, 16], 20, 0),
    }
}

fn main() {
    let opts = parse_opts();
    let only = flag_value(&opts.rest, "--model");
    let models: Vec<&str> = match only {
        Some(m) => vec![m],
        None => dgnn_bench::MODEL_NAMES.to_vec(),
    };

    for name in models {
        let (batches, k, units) = sweep(name);
        let mut t = TextTable::new(
            &format!("Fig 8 — {name}: CPU vs GPU inference time"),
            &["batch size", "cpu (ms)", "gpu (ms)", "gpu speedup"],
        );
        for bs in batches {
            let cfg = if units == 0 {
                InferenceConfig::default().with_max_units(bs)
            } else {
                InferenceConfig::default()
                    .with_batch_size(bs)
                    .with_neighbors(k)
                    .with_max_units(units)
            };
            let time = |mode| {
                let mut m = build_model(name, opts.scale, opts.seed);
                measure(m.as_mut(), mode, &cfg).profile.inference_time
            };
            let cpu = time(ExecMode::CpuOnly);
            let gpu = time(ExecMode::Gpu);
            t.row(&[
                bs.to_string(),
                format!("{:.2}", cpu.as_millis_f64()),
                format!("{:.2}", gpu.as_millis_f64()),
                format!(
                    "{:.2}x",
                    cpu.as_nanos() as f64 / gpu.as_nanos().max(1) as f64
                ),
            ]);
        }
        print!("{}", t.render());
    }
}
