//! DyRep (Trivedi et al., ICLR'19) — temporal point process over
//! dynamic graphs.
//!
//! Events are processed **one at a time**: computing the conditional
//! intensity at time `t` requires the node embeddings as of the previous
//! event, so updating embeddings and evaluating intensities strictly
//! alternate (Fig 4a). On the GPU this produces thousands of tiny,
//! serialized kernels; inference on the GPU never beats the CPU at any
//! batch size (Fig 8) and utilization stays under 2%.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{DeviceTensor, Dispatcher, Executor, HostWork};
use dgnn_nn::{EmbeddingTable, Linear, Module, RnnCell};
use dgnn_tensor::{Tensor, TensorRng};

use crate::common::{DgnnModel, InferenceConfig, RunSummary};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per event in the reference implementation's Python
/// event loop (embedding gathering, neighborhood bookkeeping, intensity
/// bookkeeping) — DyRep processes events at roughly millisecond cost.
const EVENT_LOOP_OPS: u64 = 400_000;

/// DyRep hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DyRepConfig {
    /// Node-embedding dimension.
    pub dim: usize,
}

impl Default for DyRepConfig {
    fn default() -> Self {
        DyRepConfig { dim: 32 }
    }
}

/// The DyRep model bound to a dataset.
#[derive(Debug)]
pub struct DyRep {
    data: TemporalDataset,
    cfg: DyRepConfig,
    embeddings: EmbeddingTable,
    update_rnn: RnnCell,
    intensity: Linear,
    attention_w: Linear,
}

impl DyRep {
    /// Builds DyRep over an event dataset.
    pub fn new(data: TemporalDataset, cfg: DyRepConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let d = cfg.dim;
        // RNN input: local propagation + self propagation + exogenous drive.
        DyRep {
            embeddings: EmbeddingTable::new(data.stream.n_nodes(), d, &mut rng),
            update_rnn: RnnCell::new(3 * d, d, &mut rng),
            intensity: Linear::new(2 * d, 1, &mut rng),
            attention_w: Linear::new(2 * d, 1, &mut rng),
            data,
            cfg,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![
            &self.embeddings,
            &self.update_rnn,
            &self.intensity,
            &self.attention_w,
        ]
    }
}

impl DgnnModel for DyRep {
    fn name(&self) -> &'static str {
        "dyrep"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "dyrep")
            .expect("dyrep registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        (cfg.batch_size * self.cfg.dim * 4 * 4) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let d = self.cfg.dim;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::new(ex);
            for batch in &batches {
                // Batch features to device once per batch.
                let payload = DeviceTensor::host_scaled(
                    Tensor::zeros(&[1, self.data.edge_dim() + 4]),
                    batch.len() as f64,
                );
                dx.scope("memcpy_h2d", |dx| dx.ensure_resident(&payload));

                // Serial per-event processing — the temporal dependency.
                // Every event runs through the dispatcher: the tiny GEMMs
                // it prices ARE the tiny GEMMs it computes.
                for e in batch.iter() {
                    dx.scope("event_loop", |dx| {
                        dx.host(HostWork {
                            label: "event_bookkeeping",
                            ops: EVENT_LOOP_OPS,
                            seq_bytes: 512,
                            irregular_bytes: (4 * d * 4) as u64,
                            parallelism: 1,
                        });
                    });
                    dx.scope("embedding_update", |dx| -> Result<()> {
                        let pair = [e.src, e.dst];
                        let emb = self.embeddings.lookup(dx, &pair)?;
                        let x = dx.adopt(
                            emb.data()
                                .concat_cols(emb.data())?
                                .concat_cols(emb.data())?,
                            1.0,
                        );
                        let new = self.update_rnn.forward(dx, &x, &emb)?;
                        self.embeddings.update(dx, &pair, &new)?;
                        // Conditional intensity (bilinear + softplus).
                        let both = dx.adopt(new.data().reshape(&[1, 2 * d])?, 1.0);
                        let raw = self.intensity.forward(dx, &both)?;
                        let lambda = dx.activation("softplus", &raw, Tensor::softplus);
                        checksum += lambda.data().sum();
                        // Temporal attention weight refresh.
                        self.attention_w.forward(dx, &both)?;
                        Ok(())
                    })?;
                }

                let readback = dx.adopt(Tensor::zeros(&[1, d]), batch.len() as f64);
                dx.scope("memcpy_d2h", |dx| dx.download(&readback));
                iterations += 1;
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{social_evolution, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> DyRep {
        DyRep::new(social_evolution(Scale::Tiny, 1), DyRepConfig::default(), 7)
    }

    fn cfg(bs: usize) -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(bs)
            .with_max_units(2)
    }

    #[test]
    fn runs_and_produces_finite_intensities() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let s = m.run(&mut ex, &cfg(64)).unwrap();
        assert_eq!(s.iterations, 2);
        assert!(s.checksum.is_finite());
        assert!(s.checksum > 0.0, "softplus intensities are positive");
    }

    #[test]
    fn gpu_utilization_below_two_percent() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(64)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.utilization.busy_fraction < 0.05,
            "DyRep util {}",
            p.utilization.busy_fraction
        );
    }

    #[test]
    fn gpu_never_beats_cpu() {
        for bs in [32usize, 128] {
            let time = |mode| {
                let mut m = build();
                let mut ex = Executor::new(PlatformSpec::default(), mode);
                m.run(&mut ex, &cfg(bs)).unwrap().inference_time
            };
            let cpu = time(ExecMode::CpuOnly);
            let gpu = time(ExecMode::Gpu);
            assert!(gpu >= cpu, "bs={bs}: gpu {gpu} should not beat cpu {cpu}");
        }
    }

    #[test]
    fn embeddings_update_serially() {
        let mut m = build();
        let before = m.embeddings.table().clone();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(32)).unwrap();
        assert_ne!(&before, m.embeddings.table());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(32)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }
}
