//! Model taxonomy metadata — the paper's Table 1.

use std::fmt;

/// Discrete-time vs continuous-time DGNN (the paper's DTDG/CTDG split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Processes snapshot sequences.
    Discrete,
    /// Processes event streams.
    Continuous,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelKind::Discrete => "discrete",
            ModelKind::Continuous => "continuous",
        })
    }
}

/// Which parts of the model/graph evolve with time (Table 1 columns 3–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvolvingParts {
    /// Node features evolve.
    pub node_features: bool,
    /// Edge features evolve.
    pub edge_features: bool,
    /// Graph topology evolves.
    pub topology: bool,
    /// Model weights evolve.
    pub weights: bool,
}

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Model name.
    pub name: &'static str,
    /// DTDG or CTDG.
    pub kind: ModelKind,
    /// Evolving components.
    pub evolving: EvolvingParts,
    /// Time encoding method (Table 1 column 7).
    pub time_encoding: &'static str,
    /// Example tasks (Table 1 column 8).
    pub tasks: &'static str,
}

/// All eight rows of Table 1, in the paper's order.
pub fn all_model_infos() -> Vec<ModelInfo> {
    vec![
        ModelInfo {
            name: "jodie",
            kind: ModelKind::Continuous,
            evolving: EvolvingParts {
                node_features: true,
                topology: true,
                ..Default::default()
            },
            time_encoding: "RNN",
            tasks: "future interaction prediction, state change prediction",
        },
        ModelInfo {
            name: "tgn",
            kind: ModelKind::Continuous,
            evolving: EvolvingParts {
                node_features: true,
                topology: true,
                ..Default::default()
            },
            time_encoding: "time embedding",
            tasks: "future edge prediction",
        },
        ModelInfo {
            name: "evolvegcn",
            kind: ModelKind::Discrete,
            evolving: EvolvingParts {
                node_features: true,
                topology: true,
                weights: true,
                ..Default::default()
            },
            time_encoding: "RNN",
            tasks: "link prediction, node classification, edge classification",
        },
        ModelInfo {
            name: "tgat",
            kind: ModelKind::Continuous,
            evolving: EvolvingParts {
                node_features: true,
                edge_features: true,
                topology: true,
                weights: false,
            },
            time_encoding: "time embedding",
            tasks: "link prediction, link classification",
        },
        ModelInfo {
            name: "astgnn",
            kind: ModelKind::Discrete,
            evolving: EvolvingParts {
                node_features: true,
                topology: true,
                ..Default::default()
            },
            time_encoding: "self-attention",
            tasks: "traffic flow prediction",
        },
        ModelInfo {
            name: "dyrep",
            kind: ModelKind::Continuous,
            evolving: EvolvingParts {
                node_features: true,
                edge_features: true,
                topology: true,
                weights: false,
            },
            time_encoding: "RNN",
            tasks: "dynamic link prediction, time prediction",
        },
        ModelInfo {
            name: "ldg",
            kind: ModelKind::Continuous,
            evolving: EvolvingParts {
                node_features: true,
                edge_features: true,
                topology: true,
                weights: true,
            },
            time_encoding: "RNN + self-attention",
            tasks: "dynamic link prediction",
        },
        ModelInfo {
            name: "moldgnn",
            kind: ModelKind::Discrete,
            evolving: EvolvingParts {
                edge_features: true,
                topology: true,
                weights: true,
                ..Default::default()
            },
            time_encoding: "RNN",
            tasks: "adjacency matrix prediction",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_rows() {
        let infos = all_model_infos();
        assert_eq!(infos.len(), 8);
        let names: Vec<&str> = infos.iter().map(|i| i.name).collect();
        for expect in [
            "jodie",
            "tgn",
            "evolvegcn",
            "tgat",
            "astgnn",
            "dyrep",
            "ldg",
            "moldgnn",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn discrete_continuous_split_matches_paper() {
        let infos = all_model_infos();
        let discrete: Vec<&str> = infos
            .iter()
            .filter(|i| i.kind == ModelKind::Discrete)
            .map(|i| i.name)
            .collect();
        assert_eq!(discrete, vec!["evolvegcn", "astgnn", "moldgnn"]);
    }

    #[test]
    fn all_models_have_evolving_topology() {
        for info in all_model_infos() {
            assert!(
                info.evolving.topology,
                "{} should evolve topology",
                info.name
            );
        }
    }

    #[test]
    fn weight_evolving_models() {
        let infos = all_model_infos();
        let weights: Vec<&str> = infos
            .iter()
            .filter(|i| i.evolving.weights)
            .map(|i| i.name)
            .collect();
        assert_eq!(weights, vec!["evolvegcn", "ldg", "moldgnn"]);
    }

    #[test]
    fn kind_displays_lowercase() {
        assert_eq!(ModelKind::Discrete.to_string(), "discrete");
        assert_eq!(ModelKind::Continuous.to_string(), "continuous");
    }
}
