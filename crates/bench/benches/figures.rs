//! Benchmarks that regenerate a miniature of every paper artifact
//! (each Figure/Table) per iteration, measuring how fast the
//! *reproduction harness* produces them. The full-size artifacts are
//! produced by the `src/bin` binaries; these keep `cargo bench`
//! exercising the complete experiment code path.

use std::hint::black_box;

use dgnn_bench::harness::bench;
use dgnn_bench::{build_model, measure};
use dgnn_datasets::Scale;
use dgnn_device::{DurationNs, ExecMode};
use dgnn_models::InferenceConfig;
use dgnn_profile::UtilizationReport;

const SCALE: Scale = Scale::Tiny;
const SEED: u64 = 1;
const SAMPLES: usize = 10;

fn fig6_point() {
    bench("fig6_tgat_util_mem_point", SAMPLES, || {
        let mut m = build_model("tgat", SCALE, SEED);
        let cfg = InferenceConfig::default()
            .with_batch_size(100)
            .with_neighbors(20)
            .with_max_units(1);
        let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
        black_box((
            r.profile.utilization.busy_fraction,
            r.profile.gpu_peak_bytes,
        ))
    });
}

fn fig7_breakdown() {
    bench("fig7_tgn_breakdown", SAMPLES, || {
        let mut m = build_model("tgn", SCALE, SEED);
        let cfg = InferenceConfig::default()
            .with_batch_size(256)
            .with_neighbors(10)
            .with_max_units(1);
        let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
        black_box(r.profile.breakdown.entries().len())
    });
}

fn fig8_pair() {
    bench("fig8_moldgnn_cpu_vs_gpu", SAMPLES, || {
        let cfg = InferenceConfig::default()
            .with_batch_size(64)
            .with_max_units(1);
        let mut m = build_model("moldgnn", SCALE, SEED);
        let cpu = measure(m.as_mut(), ExecMode::CpuOnly, &cfg)
            .profile
            .inference_time;
        let mut m = build_model("moldgnn", SCALE, SEED);
        let gpu = measure(m.as_mut(), ExecMode::Gpu, &cfg)
            .profile
            .inference_time;
        black_box((cpu, gpu))
    });
}

fn fig9_series() {
    bench("fig9_astgnn_util_series", SAMPLES, || {
        let mut m = build_model("astgnn", SCALE, SEED);
        let cfg = InferenceConfig::default()
            .with_batch_size(4)
            .with_max_units(2);
        let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
        let series = UtilizationReport::series(
            r.executor.timeline(),
            DurationNs::ZERO,
            r.executor.now(),
            DurationNs::from_millis(100),
        );
        black_box(series.len())
    });
}

fn table2_row() {
    bench("table2_tgn_warmup_row", SAMPLES, || {
        let mut m = build_model("tgn", SCALE, SEED);
        let cfg = InferenceConfig::default()
            .with_batch_size(512)
            .with_neighbors(10)
            .with_max_units(2);
        let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
        black_box(r.profile.warmup.batch_warmup_share())
    });
}

fn fig10_ablation() {
    bench("fig10_pipelined_evolvegcn", SAMPLES, || {
        let mut m = dgnn_models::EvolveGcn::new(
            dgnn_datasets::bitcoin_alpha(SCALE, SEED),
            dgnn_models::EvolveGcnConfig::default(),
            SEED,
        );
        let cfg = InferenceConfig::default().with_max_units(6);
        let r = dgnn_models::optim::pipelined_evolvegcn(&mut m, &cfg).unwrap();
        black_box(r.speedup())
    });
}

fn main() {
    fig6_point();
    fig7_breakdown();
    fig8_pair();
    fig9_series();
    table2_row();
    fig10_ablation();
}
