//! Aggregated serving statistics: the serving analogue of the paper's
//! Table 2, extended with tail latency.
//!
//! The profiled frameworks report a single end-to-end inference time;
//! a serving layer must decompose each request's latency into the
//! stations it waited at:
//!
//! ```text
//! latency = assembly (arrival → batch close)
//!         + queue wait (batch close → service start)
//!         + service (warm-up + sampling + compute + transfer)
//! ```
//!
//! and report *order statistics* over requests, because the §4.4
//! warm-up cost shows up as cold-start spikes at the tail, not in the
//! mean.

use dgnn_device::{CacheStats, ClassCacheStats, DurationNs, TensorClass};
use dgnn_models::RunSummary;
use dgnn_profile::{LatencyStats, ServicePhases, TextTable};

use crate::autoscaler::{ScaleEvent, ScaleKind};
use crate::fleet::{FleetBatch, FleetConfig};
use crate::router::RouterPolicy;
use crate::workload::Request;
use crate::{ServeConfig, UNBOUNDED};

/// Renders the shed side of a "requests:" line so a zero is never
/// ambiguous: with shedding disabled there is no count to report, and
/// with a bound the bound is named even when nothing was shed.
fn shed_summary(shed: usize, queue_bound: usize) -> String {
    if queue_bound == UNBOUNDED {
        "shedding disabled".to_string()
    } else {
        format!("{shed} shed (bound {queue_bound})")
    }
}

/// Per-request serving record.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedRequest {
    /// Request id (arrival order).
    pub id: usize,
    /// Mix index of the requested model.
    pub model: usize,
    /// Arrival time.
    pub arrival: DurationNs,
    /// Index of the batch (in dispatch order) that carried the request.
    pub batch: usize,
    /// When the batch closed (window expiry or capacity).
    pub assembled: DurationNs,
    /// When the batch started on a replica.
    pub started: DurationNs,
    /// When the service completed.
    pub completed: DurationNs,
    /// Whether the service paid a cold-start model swap.
    pub cold: bool,
    /// Freshness lag of the data the request was served with: virtual
    /// time between the last ingest event visible to the sampled graph
    /// snapshot and this request's arrival. Zero when the visibility
    /// watermark had already passed the arrival instant — and always
    /// zero for non-streaming runs and the frozen-graph baseline.
    pub staleness: DurationNs,
}

impl ServedRequest {
    /// End-to-end latency: arrival → completion.
    pub fn latency(&self) -> DurationNs {
        self.completed - self.arrival
    }

    /// Batch-assembly wait: arrival → batch close.
    pub fn assembly_wait(&self) -> DurationNs {
        self.assembled - self.arrival
    }

    /// Queue wait: batch close → service start.
    pub fn queue_wait(&self) -> DurationNs {
        self.started - self.assembled
    }

    /// Service time: start → completion.
    pub fn service_time(&self) -> DurationNs {
        self.completed - self.started
    }
}

/// Per-batch serving record.
#[derive(Debug, Clone)]
pub struct ServedBatch {
    /// Mix index of the batch's model.
    pub model: usize,
    /// Member request ids, in arrival order.
    pub requests: Vec<usize>,
    /// When the batch closed.
    pub ready: DurationNs,
    /// When it started on a replica.
    pub started: DurationNs,
    /// When it completed.
    pub completed: DurationNs,
    /// Whether the service paid a cold-start model swap.
    pub cold: bool,
    /// Replica slot that served it.
    pub replica: usize,
    /// Busy-time phase decomposition of the service span.
    pub phases: ServicePhases,
    /// The model-reported inference summary.
    pub summary: RunSummary,
}

/// Aggregated statistics over one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests generated (offered load).
    pub offered: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests rejected by backpressure.
    pub shed: usize,
    /// The queue bound shedding was enforced at ([`UNBOUNDED`] when
    /// shedding was disabled — then `shed` is structurally zero, which
    /// [`ServeReport::render`] distinguishes from a bounded run that
    /// happened to shed nothing).
    pub queue_bound: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Services that paid a model swap (cold starts, post-provisioning).
    pub cold_services: usize,
    /// Services that hit a resident model (warm).
    pub warm_services: usize,
    /// Replica pool size.
    pub pool_size: usize,
    /// Warm-up paid once at provisioning time, across slots.
    pub provision: ServicePhases,
    /// Busy-time phases summed over all services.
    pub service_phases: ServicePhases,
    /// End-to-end latency statistics (served requests).
    pub latency: LatencyStats,
    /// Batch-assembly wait statistics.
    pub assembly: LatencyStats,
    /// Queue-wait statistics.
    pub queue_wait: LatencyStats,
    /// Service-time statistics.
    pub service: LatencyStats,
    /// Staleness statistics (see [`ServedRequest::staleness`]); all
    /// zeros outside streaming runs.
    pub staleness: LatencyStats,
    /// Device feature-cache counters summed over every replica session.
    /// Replica caches survive between services, so hits here include
    /// cross-request reuse on warm slots; all zeros when the served
    /// configs never set [`dgnn_models::InferenceConfig::feature_cache`].
    pub cache: CacheStats,
    /// The same counters split by [`TensorClass`] (indexed by
    /// [`TensorClass::index`]) — shows whether hits come from static
    /// node/edge features or recurrent memory rows.
    pub cache_by_class: ClassCacheStats,
    /// Last completion time (provisioning included).
    pub makespan: DurationNs,
    /// Served requests per simulated second of makespan.
    pub throughput_rps: f64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
}

impl ServeReport {
    /// Builds the report from the raw serving records.
    #[allow(clippy::too_many_arguments)] // one arg per raw record stream
    pub fn build(
        cfg: &ServeConfig,
        offered: &[Request],
        served: &[ServedRequest],
        shed: &[Request],
        batches: &[ServedBatch],
        provision: &ServicePhases,
        cold_services: usize,
        cache: CacheStats,
        cache_by_class: ClassCacheStats,
    ) -> Self {
        let latencies: Vec<DurationNs> = served.iter().map(ServedRequest::latency).collect();
        let assembly: Vec<DurationNs> = served.iter().map(ServedRequest::assembly_wait).collect();
        let queueing: Vec<DurationNs> = served.iter().map(ServedRequest::queue_wait).collect();
        let service: Vec<DurationNs> = served.iter().map(ServedRequest::service_time).collect();
        let staleness: Vec<DurationNs> = served.iter().map(|r| r.staleness).collect();

        let mut service_phases = ServicePhases::default();
        for b in batches {
            service_phases.accumulate(&b.phases);
        }

        let makespan = batches
            .iter()
            .map(|b| b.completed)
            .max()
            .unwrap_or(DurationNs::ZERO);
        let throughput_rps = if makespan.as_nanos() == 0 {
            0.0
        } else {
            served.len() as f64 / makespan.as_secs_f64()
        };
        let mean_batch_size = if batches.is_empty() {
            0.0
        } else {
            served.len() as f64 / batches.len() as f64
        };

        ServeReport {
            offered: offered.len(),
            served: served.len(),
            shed: shed.len(),
            queue_bound: cfg.queue_bound,
            batches: batches.len(),
            cold_services,
            warm_services: batches.len() - cold_services,
            pool_size: cfg.pool_size,
            provision: *provision,
            service_phases,
            latency: LatencyStats::from_durations(&latencies),
            assembly: LatencyStats::from_durations(&assembly),
            queue_wait: LatencyStats::from_durations(&queueing),
            service: LatencyStats::from_durations(&service),
            staleness: LatencyStats::from_durations(&staleness),
            cache,
            cache_by_class,
            makespan,
            throughput_rps,
            mean_batch_size,
        }
    }

    /// Warm-up share of all busy time, provisioning included — the
    /// amortized counterpart of the paper's Table 2 ratio.
    pub fn warmup_share(&self) -> f64 {
        let warm = self.provision.warmup + self.service_phases.warmup;
        let total = self.provision.total() + self.service_phases.total();
        if total.as_nanos() == 0 {
            return 0.0;
        }
        warm.as_nanos() as f64 / total.as_nanos() as f64
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self, title: &str) -> String {
        let ms = |d: DurationNs| format!("{:.3}", d.as_secs_f64() * 1e3);
        let mut t = TextTable::new(
            title,
            &["metric", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)"],
        );
        for (name, s) in [
            ("latency", &self.latency),
            ("assembly", &self.assembly),
            ("queue wait", &self.queue_wait),
            ("service", &self.service),
            ("staleness", &self.staleness),
        ] {
            t.row(&[
                name.to_string(),
                ms(s.p50),
                ms(s.p95),
                ms(s.p99),
                ms(s.mean),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "requests: {} offered, {} served, {} | batches: {} (mean size {:.2}) | \
             services: {} cold / {} warm | pool: {} | warm-up share: {:.1}% | \
             throughput: {:.1} rps | makespan: {:.1} ms\n",
            self.offered,
            self.served,
            shed_summary(self.shed, self.queue_bound),
            self.batches,
            self.mean_batch_size,
            self.cold_services,
            self.warm_services,
            self.pool_size,
            self.warmup_share() * 100.0,
            self.throughput_rps,
            self.makespan.as_secs_f64() * 1e3,
        ));
        if self.cache.lookups() > 0 {
            out.push_str(&format!(
                "feature cache: {} hit / {} miss ({:.1}% hit rate), {} B served on-device, \
                 {} eviction(s)\n",
                self.cache.hits,
                self.cache.misses,
                self.cache.hit_rate() * 100.0,
                self.cache.hit_bytes,
                self.cache.evictions,
            ));
            for class in TensorClass::ALL {
                let s = &self.cache_by_class[class.index()];
                if s.lookups() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:>12}: {} hit / {} miss ({:.1}% hit rate)\n",
                    class.name(),
                    s.hits,
                    s.misses,
                    s.hit_rate() * 100.0,
                ));
            }
        }
        out
    }
}

/// Aggregated statistics over one fleet serving run — the policy-level
/// metrics (SLO attainment, shed rate, replica-seconds, scale events)
/// on top of the per-request decomposition [`ServeReport`] introduced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Placement policy the run used.
    pub policy: RouterPolicy,
    /// Workload-shape label ([`crate::WorkloadShape::label`]).
    pub shape: &'static str,
    /// Requests generated (offered load).
    pub offered: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests rejected by backpressure.
    pub shed: usize,
    /// Per-pool queue bound shedding was enforced at ([`UNBOUNDED`]
    /// when shedding was disabled).
    pub queue_bound: usize,
    /// Batches dispatched, fleet-wide.
    pub batches: usize,
    /// Services that paid a model swap (cold starts, post-provisioning).
    pub cold_services: usize,
    /// Services that hit a resident model (warm).
    pub warm_services: usize,
    /// Pools ever spawned (initial + scale-outs).
    pub pools_spawned: usize,
    /// Most pools routable at once.
    pub peak_pools: usize,
    /// Pools still routable when the run ended.
    pub final_pools: usize,
    /// Warm replica slots per pool.
    pub replicas_per_pool: usize,
    /// Scale-out decisions taken.
    pub scale_outs: usize,
    /// Scale-in decisions taken.
    pub scale_ins: usize,
    /// Replica-seconds accrued: each pool contributes
    /// `replicas_per_pool × (retirement − spawn)`, with never-retired
    /// pools billed to the makespan. The capacity cost the autoscaler
    /// trades against SLO attainment.
    pub replica_seconds: f64,
    /// The end-to-end latency target.
    pub slo: DurationNs,
    /// Served requests whose latency met the target.
    pub slo_attained: usize,
    /// Warm-up paid at provisioning time, across all pools and slots
    /// (initial pools *and* autoscaler spawns — the scale-out price).
    pub provision: ServicePhases,
    /// Busy-time phases summed over all services.
    pub service_phases: ServicePhases,
    /// End-to-end latency statistics (served requests).
    pub latency: LatencyStats,
    /// Batch-assembly wait statistics.
    pub assembly: LatencyStats,
    /// Queue-wait statistics.
    pub queue_wait: LatencyStats,
    /// Service-time statistics.
    pub service: LatencyStats,
    /// Last service or provisioning completion.
    pub makespan: DurationNs,
    /// Served requests per simulated second of makespan.
    pub throughput_rps: f64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
}

impl FleetReport {
    /// Builds the report from the raw fleet records. `pool_spans`
    /// holds each pool's `(spawned_at, retired_at)` lifetime.
    #[allow(clippy::too_many_arguments)] // one arg per raw record stream
    pub fn build(
        cfg: &FleetConfig,
        offered: &[Request],
        served: &[ServedRequest],
        shed: &[Request],
        batches: &[FleetBatch],
        scale_events: &[ScaleEvent],
        provision: &ServicePhases,
        cold_services: usize,
        pool_spans: &[(DurationNs, Option<DurationNs>)],
        peak_pools: usize,
        final_pools: usize,
        makespan: DurationNs,
    ) -> Self {
        let latencies: Vec<DurationNs> = served.iter().map(ServedRequest::latency).collect();
        let assembly: Vec<DurationNs> = served.iter().map(ServedRequest::assembly_wait).collect();
        let queueing: Vec<DurationNs> = served.iter().map(ServedRequest::queue_wait).collect();
        let service: Vec<DurationNs> = served.iter().map(ServedRequest::service_time).collect();

        let mut service_phases = ServicePhases::default();
        for b in batches {
            service_phases.accumulate(&b.batch.phases);
        }
        let replica_seconds: f64 = pool_spans
            .iter()
            .map(|&(spawned, retired)| {
                (retired.unwrap_or(makespan).saturating_sub(spawned)).as_secs_f64()
                    * cfg.replicas_per_pool as f64
            })
            .sum();
        let slo_attained = served.iter().filter(|r| r.latency() <= cfg.slo).count();
        let throughput_rps = if makespan.as_nanos() == 0 {
            0.0
        } else {
            served.len() as f64 / makespan.as_secs_f64()
        };
        let mean_batch_size = if batches.is_empty() {
            0.0
        } else {
            served.len() as f64 / batches.len() as f64
        };

        FleetReport {
            policy: cfg.policy,
            shape: cfg.shape.label(),
            offered: offered.len(),
            served: served.len(),
            shed: shed.len(),
            queue_bound: cfg.queue_bound,
            batches: batches.len(),
            cold_services,
            warm_services: batches.len() - cold_services,
            pools_spawned: pool_spans.len(),
            peak_pools,
            final_pools,
            replicas_per_pool: cfg.replicas_per_pool,
            scale_outs: scale_events
                .iter()
                .filter(|e| e.kind == ScaleKind::Out)
                .count(),
            scale_ins: scale_events
                .iter()
                .filter(|e| e.kind == ScaleKind::In)
                .count(),
            replica_seconds,
            slo: cfg.slo,
            slo_attained,
            provision: *provision,
            service_phases,
            latency: LatencyStats::from_durations(&latencies),
            assembly: LatencyStats::from_durations(&assembly),
            queue_wait: LatencyStats::from_durations(&queueing),
            service: LatencyStats::from_durations(&service),
            makespan,
            throughput_rps,
            mean_batch_size,
        }
    }

    /// SLO attainment over *offered* load: attained ÷ offered, so a
    /// fleet cannot buy attainment by shedding — every shed request is
    /// a miss.
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.slo_attained as f64 / self.offered as f64
    }

    /// Shed requests over offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Warm-up share of all busy time, provisioning (including
    /// autoscaler spawns) included.
    pub fn warmup_share(&self) -> f64 {
        let warm = self.provision.warmup + self.service_phases.warmup;
        let total = self.provision.total() + self.service_phases.total();
        if total.as_nanos() == 0 {
            return 0.0;
        }
        warm.as_nanos() as f64 / total.as_nanos() as f64
    }

    /// Renders the report as an aligned text table plus fleet lines.
    pub fn render(&self, title: &str) -> String {
        let ms = |d: DurationNs| format!("{:.3}", d.as_secs_f64() * 1e3);
        let mut t = TextTable::new(
            title,
            &["metric", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)"],
        );
        for (name, s) in [
            ("latency", &self.latency),
            ("assembly", &self.assembly),
            ("queue wait", &self.queue_wait),
            ("service", &self.service),
        ] {
            t.row(&[
                name.to_string(),
                ms(s.p50),
                ms(s.p95),
                ms(s.p99),
                ms(s.mean),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "policy: {} | shape: {} | requests: {} offered, {} served, {} | \
             batches: {} (mean size {:.2}) | services: {} cold / {} warm\n",
            self.policy.label(),
            self.shape,
            self.offered,
            self.served,
            shed_summary(self.shed, self.queue_bound),
            self.batches,
            self.mean_batch_size,
            self.cold_services,
            self.warm_services,
        ));
        out.push_str(&format!(
            "fleet: {} spawned, peak {}, final {} × {} replicas | scale: {} out / {} in | \
             replica-seconds: {:.2} | SLO {:.0} ms: {:.1}% attained | warm-up share: {:.1}% | \
             throughput: {:.1} rps | makespan: {:.1} ms\n",
            self.pools_spawned,
            self.peak_pools,
            self.final_pools,
            self.replicas_per_pool,
            self.scale_outs,
            self.scale_ins,
            self.replica_seconds,
            self.slo.as_secs_f64() * 1e3,
            self.slo_attainment() * 100.0,
            self.warmup_share() * 100.0,
            self.throughput_rps,
            self.makespan.as_secs_f64() * 1e3,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shed clause never reads "0 shed" for a run that *couldn't*
    /// shed: disabled shedding and an unhit bound render differently.
    #[test]
    fn shed_summary_disambiguates_disabled_from_zero() {
        assert_eq!(shed_summary(0, UNBOUNDED), "shedding disabled");
        assert_eq!(shed_summary(0, 64), "0 shed (bound 64)");
        assert_eq!(shed_summary(12, 64), "12 shed (bound 64)");
    }

    fn report(shed: usize, queue_bound: usize) -> ServeReport {
        let cfg = ServeConfig {
            queue_bound,
            ..ServeConfig::default()
        };
        ServeReport::build(
            &cfg,
            &[],
            &[],
            &vec![
                Request {
                    id: 0,
                    model: 0,
                    arrival: DurationNs::from_nanos(1),
                };
                shed
            ],
            &[],
            &ServicePhases::default(),
            0,
            CacheStats::default(),
            ClassCacheStats::default(),
        )
    }

    #[test]
    fn render_pins_the_requests_line_format() {
        let bounded = report(2, 64).render("t");
        assert!(
            bounded.contains("requests: 0 offered, 0 served, 2 shed (bound 64) |"),
            "unexpected requests line in:\n{bounded}"
        );
        let unbounded = report(0, UNBOUNDED).render("t");
        assert!(
            unbounded.contains("requests: 0 offered, 0 served, shedding disabled |"),
            "unexpected requests line in:\n{unbounded}"
        );
        assert!(
            !unbounded.contains("0 shed"),
            "disabled shedding must not print a shed count:\n{unbounded}"
        );
    }
}
