//! Linear layers and MLPs.

use dgnn_device::{DeviceTensor, Dispatcher};
use dgnn_tensor::{Initializer, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

/// A dense affine layer `y = x Wᵀ + b` with weight `[out, in]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        Linear {
            weight: Param::new(
                "weight",
                rng.init(&[out_dim, in_dim], Initializer::XavierUniform),
            ),
            bias: Param::new("bias", rng.init(&[out_dim], Initializer::Zeros)),
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass over a batch `x: [m, in] → [m, out]`: one GEMM plus
    /// one bias kernel, dispatched (and priced) from the actual shapes.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` is not `[m, in]`.
    pub fn forward(&self, dx: &mut Dispatcher, x: &DeviceTensor) -> Result<DeviceTensor> {
        let y = dx.matmul_nt("linear_gemm", x, &self.weight.value)?;
        dx.add_bias("linear_bias", &y, &self.bias.value)
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
}

/// A multi-layer perceptron with ReLU between layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP through the given layer widths
    /// (`dims = [in, h1, ..., out]`).
    ///
    /// # Panics
    ///
    /// Panics when fewer than two widths are given.
    pub fn new(dims: &[usize], rng: &mut TensorRng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass `[m, in] → [m, out]` with ReLU after every layer but
    /// the last.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the underlying layers.
    pub fn forward(&self, dx: &mut Dispatcher, x: &DeviceTensor) -> Result<DeviceTensor> {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(dx, &h)?;
            if i + 1 < self.layers.len() {
                h = dx.relu("mlp_relu", &h);
            }
        }
        Ok(h)
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(Module::parameters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, PlatformSpec};
    use dgnn_tensor::Tensor;

    fn executor() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = TensorRng::seed(1);
        let l = Linear::new(4, 3, &mut rng);
        let mut ex = executor();
        let mut dx = Dispatcher::new(&mut ex);
        let y = l
            .forward(&mut dx, &DeviceTensor::host(Tensor::zeros(&[2, 4])))
            .unwrap();
        assert_eq!(y.data().dims(), &[2, 3]);
        // Zero input → bias only; bias initialized to zero.
        assert_eq!(y.data().sum(), 0.0);
        assert!(
            dx.executor().timeline().len() >= 2,
            "gemm + bias kernels launched"
        );
    }

    #[test]
    fn linear_rejects_wrong_width() {
        let mut rng = TensorRng::seed(2);
        let l = Linear::new(4, 3, &mut rng);
        let mut ex = executor();
        let mut dx = Dispatcher::new(&mut ex);
        assert!(l
            .forward(&mut dx, &DeviceTensor::host(Tensor::zeros(&[2, 5])))
            .is_err());
    }

    #[test]
    fn linear_matches_manual_matmul() {
        let mut rng = TensorRng::seed(3);
        let l = Linear::new(3, 2, &mut rng);
        let mut ex = executor();
        let mut dx = Dispatcher::new(&mut ex);
        let x = TensorRng::seed(9).init(&[4, 3], Initializer::Uniform(1.0));
        let y = l.forward(&mut dx, &DeviceTensor::host(x.clone())).unwrap();
        let w = &l.parameters()[0].value;
        let manual = x.matmul(&w.transpose().unwrap()).unwrap();
        y.data().assert_close(&manual, 1e-5);
    }

    #[test]
    fn mlp_depth_and_forward() {
        let mut rng = TensorRng::seed(4);
        let mlp = Mlp::new(&[8, 16, 4], &mut rng);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.param_tensor_count(), 4);
        let mut ex = executor();
        let mut dx = Dispatcher::new(&mut ex);
        let y = mlp
            .forward(&mut dx, &DeviceTensor::host(Tensor::ones(&[5, 8])))
            .unwrap();
        assert_eq!(y.data().dims(), &[5, 4]);
        assert!(y.data().all_finite());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_requires_two_widths() {
        let mut rng = TensorRng::seed(5);
        let _ = Mlp::new(&[8], &mut rng);
    }

    #[test]
    fn forward_advances_simulated_clock() {
        let mut rng = TensorRng::seed(6);
        let l = Linear::new(64, 64, &mut rng);
        let mut ex = executor();
        let mut dx = Dispatcher::new(&mut ex);
        let t0 = dx.now();
        l.forward(&mut dx, &DeviceTensor::host(Tensor::zeros(&[32, 64])))
            .unwrap();
        assert!(dx.now() > t0);
    }
}
