//! The hazard ruleset: a vector-clock replay of the provenance trace
//! plus structural checks on the recorded timeline.
//!
//! See `DESIGN.md` §3e for the rule catalogue. In short:
//!
//! * **RULE1 read-before-transfer** — every device-side read must be
//!   happens-before-ordered after the H2D upload (or `adopt`) that
//!   defines the buffer.
//! * **RULE2 use-after-release** — no device-side access after the
//!   buffer was downloaded or released without a re-upload.
//! * **RULE3 missing-wait** — conflicting cross-lane accesses require a
//!   `record_event`/`wait_event` chain; waits must name events the
//!   active fork recorded.
//! * **RULE4 clock-monotonicity** — per-lane clocks never rewind, lane
//!   events never overlap on one lane, joins cover every lane clock.
//! * **RULE5 byte-conservation** — coalesce-staged bytes are flushed
//!   exactly once, every crossing is priced, and every priced record
//!   matches its timeline event.
//! * **RULE6 busy-fraction** — a claimed GPU busy fraction must match
//!   the interval-union reference recomputed from the timeline.
//! * **RULE7 sample-after-append** (`DESIGN.md` §3g) — a streaming-graph
//!   sample must be happens-before-ordered after every append inside
//!   its visible prefix (append logged earlier in program order *and*
//!   its Host-lane work complete by the read's start), and the ingest
//!   watermark / visibility instants must be monotone across appends.
//! * **RULE8 peer-conservation** (`DESIGN.md` §3i) — every cross-device
//!   fetch intent is priced on exactly one interconnect edge, every
//!   priced peer record matches its timeline event (category, bytes,
//!   route, destination device), and no device "fetches" from itself.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use dgnn_device::{
    AccessKind, DurationNs, EventCategory, ExecTrace, Place, TensorId, Timeline, TraceRecord,
    TransferDir,
};

use crate::hb::{component, component_name, hb, HbEngine, Node};
use crate::report::{Hazard, HazardRule, SanitizeStats, SanitizerReport};

/// A busy-fraction claim to verify under RULE6 (e.g. what a profile
/// table is about to print).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusyClaim {
    /// Window start.
    pub win_start: DurationNs,
    /// Window end.
    pub win_end: DurationNs,
    /// Claimed kernel-resident fraction of the window.
    pub fraction: f64,
}

/// Sanitizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeOptions {
    /// Optional busy-fraction claim to verify (RULE6).
    pub busy_claim: Option<BusyClaim>,
    /// Absolute tolerance for RULE6 fraction comparison.
    pub epsilon: f64,
}

impl Default for SanitizeOptions {
    fn default() -> Self {
        SanitizeOptions {
            busy_claim: None,
            epsilon: 1e-9,
        }
    }
}

fn dir_index(dir: TransferDir) -> usize {
    match dir {
        TransferDir::H2D => 0,
        TransferDir::D2H => 1,
    }
}

fn dir_name(dir: TransferDir) -> &'static str {
    match dir {
        TransferDir::H2D => "H2D",
        TransferDir::D2H => "D2H",
    }
}

/// How a write-class record touches a buffer's device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteKind {
    /// H2D residence crossing.
    Upload,
    /// Defined directly on the device (`adopt`).
    Adopt,
    /// Device copy invalidated (`"download"` or `"release"`).
    Invalidate(&'static str),
}

impl WriteKind {
    fn label(self) -> &'static str {
        match self {
            WriteKind::Upload => "upload",
            WriteKind::Adopt => "adopt",
            WriteKind::Invalidate(how) => how,
        }
    }
}

/// One observed streaming-graph append (RULE7 replay state).
#[derive(Debug, Clone, Copy)]
struct AppendSeen {
    /// Running maximum of `visible_at` over the append prefix ending
    /// here — the instant by which the whole prefix is readable.
    visible_by: DurationNs,
    /// Trace record index of the append.
    record: usize,
}

/// Per-store replay state (RULE7).
#[derive(Debug, Default)]
struct StoreState {
    /// Appends in program order, indexed by global event index.
    appends: Vec<AppendSeen>,
    /// Watermark bits of the latest append (timestamps are monotone).
    last_time_bits: Option<u64>,
    /// Visibility instant of the latest append.
    last_visible_at: DurationNs,
}

/// Per-buffer replay state.
#[derive(Debug, Default)]
struct TensorState {
    /// Latest define (upload or adopt), live or superseded.
    define: Option<Node>,
    /// Whether the device copy is currently valid in program order.
    device_valid: bool,
    /// Latest invalidation while the copy is invalid.
    invalidated: Option<(Node, &'static str)>,
    /// Latest device read per component (for write/read race checks).
    last_read: HashMap<usize, Node>,
}

struct Sanitizer<'a> {
    timeline: &'a Timeline,
    engine: HbEngine,
    /// The hash containers below are point-lookup-only state keyed by
    /// replay ids (never iterated), so hasher order cannot reach hazard
    /// output; everything that *is* iterated for reports uses BTree
    /// containers.
    tensors: HashMap<TensorId, TensorState>,
    hazards: Vec<Hazard>,
    /// Dedup for tensor-attributed hazards: one report per (rule, buffer).
    reported: HashSet<(&'static str, TensorId)>,
    /// Byte ledgers per direction (`[H2D, D2H]`).
    staged: [u64; 2],
    flushed: [u64; 2],
    immediate: [u64; 2],
    priced: [u64; 2],
    over_flush_reported: [bool; 2],
    crossings: usize,
    forks: usize,
    /// Serial clock after the last join (RULE4 fork-origin check).
    last_serial_time: DurationNs,
    fork_origin: DurationNs,
    /// Last `record_event` timestamp per (device, lane) component within
    /// the active fork.
    last_record_at: HashMap<usize, DurationNs>,
    /// Device the executor currently targets (DeviceSwitch replay).
    current_device: usize,
    /// RULE8 crossing-intent bytes per (src, dst) device pair.
    peer_crossed: BTreeMap<(usize, usize), u64>,
    /// RULE8 priced bytes per (src, dst) device pair.
    peer_priced: BTreeMap<(usize, usize), u64>,
    peer_crossings: usize,
    peer_bytes: u64,
    /// Streaming-graph stores observed so far (RULE7).
    stores: HashMap<u64, StoreState>,
    /// Dedup for store-attributed hazards: one report per (store, kind).
    store_reported: HashSet<(u64, &'static str)>,
    graph_appends: usize,
    graph_samples: usize,
    cache_hit_rows: u64,
    cache_hit_bytes: u64,
}

impl<'a> Sanitizer<'a> {
    fn new(timeline: &'a Timeline) -> Self {
        Sanitizer {
            timeline,
            engine: HbEngine::new(),
            tensors: HashMap::new(),
            hazards: Vec::new(),
            reported: HashSet::new(),
            staged: [0; 2],
            flushed: [0; 2],
            immediate: [0; 2],
            priced: [0; 2],
            over_flush_reported: [false; 2],
            crossings: 0,
            forks: 0,
            last_serial_time: DurationNs::ZERO,
            fork_origin: DurationNs::ZERO,
            last_record_at: HashMap::new(),
            current_device: 0,
            peer_crossed: BTreeMap::new(),
            peer_priced: BTreeMap::new(),
            peer_crossings: 0,
            peer_bytes: 0,
            stores: HashMap::new(),
            store_reported: HashSet::new(),
            graph_appends: 0,
            graph_samples: 0,
            cache_hit_rows: 0,
            cache_hit_bytes: 0,
        }
    }

    /// RULE7 hazard with per-(store, kind) dedup — one report per
    /// failure kind per store, mirroring the tensor-attributed rules.
    fn store_hazard(
        &mut self,
        store: u64,
        kind: &'static str,
        message: String,
        lanes: Vec<&'static str>,
        records: Vec<usize>,
        events: Vec<usize>,
    ) {
        if !self.store_reported.insert((store, kind)) {
            return;
        }
        self.hazard(
            HazardRule::SampleAfterAppend,
            message,
            lanes,
            records,
            events,
            None,
        );
    }

    fn push(&mut self, hazard: Hazard) {
        if let Some(t) = hazard.tensor {
            if !self.reported.insert((hazard.rule.id(), t)) {
                return;
            }
        }
        self.hazards.push(hazard);
    }

    fn hazard(
        &mut self,
        rule: HazardRule,
        message: String,
        lanes: Vec<&'static str>,
        records: Vec<usize>,
        events: Vec<usize>,
        tensor: Option<TensorId>,
    ) {
        self.push(Hazard {
            rule,
            message,
            lanes,
            records,
            events,
            tensor,
            suggestion: rule.suggestion(),
        });
    }

    /// RULE1/RULE2: a device-side read (kernel argument or download).
    fn device_read(&mut self, tensor: TensorId, node: Node, place: Place, what: &str) {
        if place != Place::Gpu {
            // CPU-mode accesses touch host memory; no device hazards.
            return;
        }
        let state = self.tensors.entry(tensor).or_default();
        if !state.device_valid {
            if let Some((inv, how)) = state.invalidated.clone() {
                let lanes = vec![component_name(inv.comp), component_name(node.comp)];
                let recs = vec![inv.rec, node.rec];
                let evs = vec![inv.at_event, node.at_event];
                self.hazard(
                    HazardRule::UseAfterRelease,
                    format!("{what} of a buffer after its {how} invalidated the device copy"),
                    lanes,
                    recs,
                    evs,
                    Some(tensor),
                );
            } else {
                let lanes = vec![component_name(node.comp)];
                self.hazard(
                    HazardRule::ReadBeforeTransfer,
                    format!("{what} of a buffer that was never uploaded or adopted on the device"),
                    lanes,
                    vec![node.rec],
                    vec![node.at_event],
                    Some(tensor),
                );
            }
        } else if let Some(define) = state.define.clone() {
            if !hb(&define, &node) {
                let lanes = vec![component_name(define.comp), component_name(node.comp)];
                let recs = vec![define.rec, node.rec];
                let evs = vec![define.at_event, node.at_event];
                self.hazard(
                    HazardRule::ReadBeforeTransfer,
                    format!(
                        "{what} has no happens-before edge from the defining upload/adopt \
                         on another lane — the copy may not have landed"
                    ),
                    lanes,
                    recs,
                    evs,
                    Some(tensor),
                );
            }
        }
        if let Some(state) = self.tensors.get_mut(&tensor) {
            state.last_read.insert(node.comp, node);
        }
    }

    /// RULE2/RULE3 + state transition for a write-class record.
    fn device_write(&mut self, tensor: TensorId, node: Node, kind: WriteKind) {
        // Race checks against reads (and the live define) on other lanes.
        let mut races: Vec<(Node, &'static str)> = Vec::new();
        {
            let state = self.tensors.entry(tensor).or_default();
            for (&comp, read) in &state.last_read {
                if comp == node.comp {
                    continue;
                }
                if !hb(read, &node) {
                    races.push((read.clone(), "device read"));
                }
            }
            // Race reports in deterministic component order regardless of
            // map iteration order.
            races.sort_by_key(|(n, _)| (n.comp, n.rec));
            if let Some(define) = state.define.clone() {
                if define.comp != node.comp && !hb(&define, &node) {
                    races.push((define, "defining upload/adopt"));
                }
            }
        }
        for (prev, prev_what) in races {
            let lanes = vec![component_name(prev.comp), component_name(node.comp)];
            let recs = vec![prev.rec, node.rec];
            let evs = vec![prev.at_event, node.at_event];
            self.hazard(
                HazardRule::MissingWait,
                format!(
                    "{} races a {} on another lane with no event ordering them",
                    kind.label(),
                    prev_what
                ),
                lanes,
                recs,
                evs,
                Some(tensor),
            );
        }
        // Double invalidation (release of an already-invalid buffer).
        let prior_invalidation = {
            let state = self.tensors.entry(tensor).or_default();
            match kind {
                WriteKind::Invalidate(_) if !state.device_valid => state.invalidated.clone(),
                _ => None,
            }
        };
        if let (Some((prev, prev_how)), WriteKind::Invalidate(how)) = (prior_invalidation, kind) {
            let lanes = vec![component_name(prev.comp), component_name(node.comp)];
            self.hazard(
                HazardRule::UseAfterRelease,
                format!("{how} of a buffer already invalidated by a {prev_how}"),
                lanes,
                vec![prev.rec, node.rec],
                vec![prev.at_event, node.at_event],
                Some(tensor),
            );
        }
        let state = self.tensors.entry(tensor).or_default();
        match kind {
            WriteKind::Upload | WriteKind::Adopt => {
                state.define = Some(node);
                state.device_valid = true;
                state.invalidated = None;
            }
            WriteKind::Invalidate(how) => {
                state.device_valid = false;
                state.invalidated = Some((node, how));
            }
        }
    }

    fn replay(&mut self, trace: &ExecTrace) {
        for (i, rec) in trace.records().iter().enumerate() {
            match rec {
                TraceRecord::Access {
                    tensor,
                    kind,
                    lane,
                    place,
                    at_event,
                } => {
                    let node = self.engine.issue(self.current_device, *lane, i, *at_event);
                    match kind {
                        AccessKind::Arg => {
                            self.device_read(*tensor, node, *place, "kernel-argument read");
                        }
                        AccessKind::Download => {
                            // The read half; the paired D2H crossing
                            // performs the invalidation.
                            self.device_read(*tensor, node, *place, "download read");
                        }
                        AccessKind::Adopt => self.device_write(*tensor, node, WriteKind::Adopt),
                    }
                }
                TraceRecord::Crossing {
                    tensor,
                    dir,
                    bytes,
                    lane,
                    staged,
                    at_event,
                } => {
                    let node = self.engine.issue(self.current_device, *lane, i, *at_event);
                    self.crossings += 1;
                    let di = dir_index(*dir);
                    if *staged {
                        self.staged[di] += bytes;
                    } else {
                        self.immediate[di] += bytes;
                    }
                    if let Some(t) = tensor {
                        match dir {
                            TransferDir::H2D => self.device_write(*t, node, WriteKind::Upload),
                            TransferDir::D2H => {
                                self.device_write(*t, node, WriteKind::Invalidate("download"));
                            }
                        }
                    }
                }
                TraceRecord::Flush {
                    dir,
                    bytes,
                    lane,
                    at_event,
                } => {
                    let _node = self.engine.issue(self.current_device, *lane, i, *at_event);
                    let di = dir_index(*dir);
                    self.flushed[di] += bytes;
                    if self.flushed[di] > self.staged[di] && !self.over_flush_reported[di] {
                        self.over_flush_reported[di] = true;
                        let msg = format!(
                            "{} flush priced {} B but only {} B were ever staged",
                            dir_name(*dir),
                            self.flushed[di],
                            self.staged[di]
                        );
                        self.hazard(
                            HazardRule::ByteConservation,
                            msg,
                            vec![component_name(component(self.current_device, *lane))],
                            vec![i],
                            vec![*at_event],
                            None,
                        );
                    }
                }
                TraceRecord::Priced {
                    dir,
                    bytes,
                    lane,
                    event,
                } => {
                    let _node = self.engine.issue(self.current_device, *lane, i, *event);
                    self.priced[dir_index(*dir)] += bytes;
                    match self.timeline.events().get(*event) {
                        Some(e)
                            if e.category == EventCategory::Transfer(*dir)
                                && e.bytes == *bytes
                                && e.stream == *lane => {}
                        Some(e) => {
                            let msg = format!(
                                "priced {} B {} does not match timeline event {} \
                                 ({:?}, {} B, lane {:?})",
                                bytes,
                                dir_name(*dir),
                                event,
                                e.category,
                                e.bytes,
                                e.stream
                            );
                            self.hazard(
                                HazardRule::ByteConservation,
                                msg,
                                vec![component_name(component(self.current_device, *lane))],
                                vec![i],
                                vec![*event],
                                None,
                            );
                        }
                        None => {
                            let msg = format!(
                                "priced {} B {} points at timeline event {} past the \
                                 recorded timeline (len {})",
                                bytes,
                                dir_name(*dir),
                                event,
                                self.timeline.len()
                            );
                            self.hazard(
                                HazardRule::ByteConservation,
                                msg,
                                vec![component_name(component(self.current_device, *lane))],
                                vec![i],
                                vec![],
                                None,
                            );
                        }
                    }
                }
                TraceRecord::CacheHit {
                    rows,
                    bytes,
                    lane,
                    at_event,
                    ..
                } => {
                    // Cache-served rows are *legitimately unpriced*: the
                    // whole point of the device-resident feature cache is
                    // that these bytes never cross PCIe, so they enter no
                    // staged/immediate/priced ledger and RULE5 must stay
                    // silent about them. The record still participates in
                    // the happens-before graph (it is a device read on
                    // its issuing lane) and is tallied for reports.
                    let _node = self.engine.issue(self.current_device, *lane, i, *at_event);
                    self.cache_hit_rows += rows;
                    self.cache_hit_bytes += bytes;
                }
                TraceRecord::Release {
                    tensor,
                    lane,
                    at_event,
                } => {
                    let node = self.engine.issue(self.current_device, *lane, i, *at_event);
                    self.device_write(*tensor, node, WriteKind::Invalidate("release"));
                }
                TraceRecord::Fork { at } => {
                    self.forks += 1;
                    if self.engine.forked {
                        self.hazard(
                            HazardRule::ClockMonotonicity,
                            "fork_streams while a fork is already active".to_string(),
                            vec!["serial"],
                            vec![i],
                            vec![],
                            None,
                        );
                    }
                    if *at < self.last_serial_time {
                        let msg = format!(
                            "fork origin {} ns precedes the serial clock {} ns left by \
                             the previous join",
                            at.as_nanos(),
                            self.last_serial_time.as_nanos()
                        );
                        self.hazard(
                            HazardRule::ClockMonotonicity,
                            msg,
                            vec!["serial"],
                            vec![i],
                            vec![],
                            None,
                        );
                    }
                    self.engine.fork();
                    self.fork_origin = *at;
                    self.last_record_at.clear();
                }
                TraceRecord::Join { at, lane_clocks } => {
                    if !self.engine.forked {
                        self.hazard(
                            HazardRule::ClockMonotonicity,
                            "join_streams without an active fork".to_string(),
                            vec!["serial"],
                            vec![i],
                            vec![],
                            None,
                        );
                    } else {
                        let max_lane = lane_clocks.iter().copied().max().unwrap_or_default();
                        if *at < max_lane {
                            let msg = format!(
                                "joined serial clock {} ns precedes a lane clock {} ns — \
                                 the join must cover every lane",
                                at.as_nanos(),
                                max_lane.as_nanos()
                            );
                            self.hazard(
                                HazardRule::ClockMonotonicity,
                                msg,
                                vec!["serial"],
                                vec![i],
                                vec![],
                                None,
                            );
                        }
                    }
                    self.engine.join();
                    self.last_serial_time = self.last_serial_time.max(*at);
                }
                TraceRecord::EventRecord { event, lane, at } => {
                    if !self.engine.forked {
                        let msg = format!("record_event({event}) outside an active fork");
                        self.hazard(
                            HazardRule::ClockMonotonicity,
                            msg,
                            vec![lane.name()],
                            vec![i],
                            vec![],
                            None,
                        );
                    } else {
                        let li = component(self.current_device, Some(*lane));
                        if *at < self.fork_origin {
                            let msg = format!(
                                "event {} recorded at {} ns before the fork origin {} ns",
                                event,
                                at.as_nanos(),
                                self.fork_origin.as_nanos()
                            );
                            self.hazard(
                                HazardRule::ClockMonotonicity,
                                msg,
                                vec![lane.name()],
                                vec![i],
                                vec![],
                                None,
                            );
                        }
                        if let Some(&prev) = self.last_record_at.get(&li) {
                            if *at < prev {
                                let msg = format!(
                                    "lane clock rewound: event {} recorded at {} ns after \
                                     a record at {} ns on the same lane",
                                    event,
                                    at.as_nanos(),
                                    prev.as_nanos()
                                );
                                self.hazard(
                                    HazardRule::ClockMonotonicity,
                                    msg,
                                    vec![lane.name()],
                                    vec![i],
                                    vec![],
                                    None,
                                );
                            }
                        }
                        self.last_record_at.insert(li, *at);
                    }
                    self.engine.record(*event, self.current_device, *lane);
                }
                TraceRecord::EventWait { event, lane } => {
                    if !self.engine.wait(*event, self.current_device, *lane) {
                        let msg = format!(
                            "wait_event on index {event} which the active fork never \
                             recorded (stale or foreign handle)"
                        );
                        self.hazard(
                            HazardRule::MissingWait,
                            msg,
                            vec![lane.name()],
                            vec![i],
                            vec![],
                            None,
                        );
                    }
                }
                TraceRecord::GraphAppend {
                    store,
                    event,
                    time_bits,
                    visible_at,
                    lane,
                    at_event,
                } => {
                    let _node = self.engine.issue(self.current_device, *lane, i, *at_event);
                    self.graph_appends += 1;
                    let lane_name = component_name(component(self.current_device, *lane));
                    let st = self.stores.entry(*store).or_default();
                    let expected = st.appends.len();
                    let last_time_bits = st.last_time_bits;
                    let last_visible_at = st.last_visible_at;
                    if *event != expected {
                        let msg = format!(
                            "store {store} append logged event index {event} but \
                             {expected} event(s) were appended before it — appends \
                             must arrive dense and in ingest order"
                        );
                        self.store_hazard(
                            *store,
                            "append-order",
                            msg,
                            vec![lane_name],
                            vec![i],
                            vec![*at_event],
                        );
                    }
                    let time = f64::from_bits(*time_bits);
                    if let Some(prev_bits) = last_time_bits {
                        let prev = f64::from_bits(prev_bits);
                        // `partial_cmp` so a NaN watermark (incomparable)
                        // is also flagged as a regression.
                        let ok = matches!(
                            time.partial_cmp(&prev),
                            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                        );
                        if !ok {
                            let msg = format!(
                                "store {store} ingest watermark regressed: event {event} \
                                 carries timestamp {time} after an append at {prev}"
                            );
                            self.store_hazard(
                                *store,
                                "watermark",
                                msg,
                                vec![lane_name],
                                vec![i],
                                vec![*at_event],
                            );
                        }
                    }
                    if *visible_at < last_visible_at {
                        let msg = format!(
                            "store {store} visibility instant regressed: event {event} \
                             becomes visible at {} ns after an append visible at {} ns",
                            visible_at.as_nanos(),
                            last_visible_at.as_nanos()
                        );
                        self.store_hazard(
                            *store,
                            "visibility-monotone",
                            msg,
                            vec![lane_name],
                            vec![i],
                            vec![*at_event],
                        );
                    }
                    let st = self.stores.entry(*store).or_default();
                    let visible_by = st.last_visible_at.max(*visible_at);
                    st.appends.push(AppendSeen {
                        visible_by,
                        record: i,
                    });
                    st.last_time_bits = Some(*time_bits);
                    st.last_visible_at = visible_by;
                }
                TraceRecord::GraphSample {
                    store,
                    visible,
                    at,
                    lane,
                    at_event,
                } => {
                    let _node = self.engine.issue(self.current_device, *lane, i, *at_event);
                    self.graph_samples += 1;
                    let lane_name = component_name(component(self.current_device, *lane));
                    let st = self.stores.entry(*store).or_default();
                    let appended = st.appends.len();
                    let newest = visible
                        .checked_sub(1)
                        .and_then(|last| st.appends.get(last))
                        .copied();
                    if *visible > appended {
                        let msg = format!(
                            "store {store} sample exposes {visible} event(s) but only \
                             {appended} append(s) were ever logged — the snapshot reads \
                             a delta region no append wrote"
                        );
                        self.store_hazard(
                            *store,
                            "sample-beyond-append",
                            msg,
                            vec![lane_name],
                            vec![i],
                            vec![*at_event],
                        );
                    } else if let Some(a) = newest {
                        if a.visible_by > *at {
                            let msg = format!(
                                "store {store} sample at {} ns reads a {visible}-event \
                                 prefix whose newest append only completes at {} ns — \
                                 the read is not happens-before-ordered after the append",
                                at.as_nanos(),
                                a.visible_by.as_nanos()
                            );
                            self.store_hazard(
                                *store,
                                "sample-before-visible",
                                msg,
                                vec![lane_name],
                                vec![i, a.record],
                                vec![*at_event],
                            );
                        }
                    }
                }
                TraceRecord::DeviceSwitch { device } => {
                    self.current_device = *device;
                }
                TraceRecord::PeerCrossing {
                    src,
                    dst,
                    bytes,
                    lane,
                    at_event,
                } => {
                    let _node = self.engine.issue(*dst, *lane, i, *at_event);
                    self.peer_crossings += 1;
                    *self.peer_crossed.entry((*src, *dst)).or_default() += bytes;
                }
                TraceRecord::PeerPriced {
                    src,
                    dst,
                    bytes,
                    via_host,
                    lane,
                    event,
                } => {
                    let _node = self.engine.issue(*dst, *lane, i, *event);
                    *self.peer_priced.entry((*src, *dst)).or_default() += bytes;
                    self.peer_bytes += bytes;
                    let lane_name = component_name(component(*dst, *lane));
                    if src == dst {
                        let msg = format!(
                            "device {dst} priced a {bytes} B peer transfer from itself — \
                             shard-local reads must never touch the interconnect"
                        );
                        self.hazard(
                            HazardRule::PeerConservation,
                            msg,
                            vec![lane_name],
                            vec![i],
                            vec![*event],
                            None,
                        );
                    }
                    let expected_label = if *via_host {
                        "peer_copy_staged"
                    } else {
                        "peer_copy"
                    };
                    match self.timeline.events().get(*event) {
                        Some(e)
                            if e.category == EventCategory::PeerTransfer
                                && e.bytes == *bytes
                                && e.device == *dst
                                && e.stream == *lane
                                && e.label == expected_label => {}
                        Some(e) => {
                            let msg = format!(
                                "priced {} B peer transfer {}→{} does not match timeline \
                                 event {} ({:?} \"{}\", {} B, device {}, lane {:?})",
                                bytes,
                                src,
                                dst,
                                event,
                                e.category,
                                e.label,
                                e.bytes,
                                e.device,
                                e.stream
                            );
                            self.hazard(
                                HazardRule::PeerConservation,
                                msg,
                                vec![lane_name],
                                vec![i],
                                vec![*event],
                                None,
                            );
                        }
                        None => {
                            let msg = format!(
                                "priced {} B peer transfer {}→{} points at timeline event \
                                 {} past the recorded timeline (len {})",
                                bytes,
                                src,
                                dst,
                                event,
                                self.timeline.len()
                            );
                            self.hazard(
                                HazardRule::PeerConservation,
                                msg,
                                vec![lane_name],
                                vec![i],
                                vec![],
                                None,
                            );
                        }
                    }
                }
            }
        }
        if self.engine.forked {
            self.hazard(
                HazardRule::ClockMonotonicity,
                "trace ends inside an active fork (fork_streams never joined)".to_string(),
                vec!["serial"],
                vec![trace.len().saturating_sub(1)],
                vec![],
                None,
            );
        }
        // End-of-trace byte conservation.
        for dir in [TransferDir::H2D, TransferDir::D2H] {
            let di = dir_index(dir);
            if self.staged[di] > self.flushed[di] {
                let msg = format!(
                    "{} staged {} B but flushed only {} B — staged bytes escaped pricing",
                    dir_name(dir),
                    self.staged[di],
                    self.flushed[di]
                );
                self.hazard(
                    HazardRule::ByteConservation,
                    msg,
                    vec![],
                    vec![],
                    vec![],
                    None,
                );
            }
            let covered = self.immediate[di] + self.flushed[di];
            if self.priced[di] < covered {
                let msg = format!(
                    "{} priced {} B over PCIe but crossings account for {} B — \
                     some crossing was never priced",
                    dir_name(dir),
                    self.priced[di],
                    covered
                );
                self.hazard(
                    HazardRule::ByteConservation,
                    msg,
                    vec![],
                    vec![],
                    vec![],
                    None,
                );
            }
        }
        // End-of-trace RULE8 peer conservation: per (src, dst) device
        // pair, crossing intents and interconnect pricing must balance.
        let pairs: BTreeSet<(usize, usize)> = self
            .peer_crossed
            .keys()
            .chain(self.peer_priced.keys())
            .copied()
            .collect();
        for pair in pairs {
            let crossed = self.peer_crossed.get(&pair).copied().unwrap_or(0);
            let priced = self.peer_priced.get(&pair).copied().unwrap_or(0);
            if priced < crossed {
                let msg = format!(
                    "peer crossings {}→{} logged {} B but only {} B were priced on an \
                     interconnect edge — some cross-device fetch was never priced",
                    pair.0, pair.1, crossed, priced
                );
                self.hazard(
                    HazardRule::PeerConservation,
                    msg,
                    vec![],
                    vec![],
                    vec![],
                    None,
                );
            } else if priced > crossed {
                let msg = format!(
                    "peer pricing {}→{} covered {} B but only {} B of crossings were \
                     logged — phantom interconnect traffic with no fetch intent",
                    pair.0, pair.1, priced, crossed
                );
                self.hazard(
                    HazardRule::PeerConservation,
                    msg,
                    vec![],
                    vec![],
                    vec![],
                    None,
                );
            }
        }
    }

    /// RULE4 over the timeline: per execution lane (and the serial
    /// clock) of every device, events must be well-formed and
    /// non-overlapping in emission order.
    fn check_timeline(&mut self) {
        // Keyed get/insert per lane component, never iterated: hazard
        // order follows timeline emission order, not hasher state.
        let mut last_end: HashMap<usize, (usize, DurationNs)> = HashMap::new();
        for (idx, e) in self.timeline.events().iter().enumerate() {
            if e.end < e.start {
                let msg = format!(
                    "timeline event {} ({}) ends at {} ns before it starts at {} ns",
                    idx,
                    e.label,
                    e.end.as_nanos(),
                    e.start.as_nanos()
                );
                self.hazard(
                    HazardRule::ClockMonotonicity,
                    msg,
                    vec![component_name(component(e.device, e.stream))],
                    vec![],
                    vec![idx],
                    None,
                );
                continue;
            }
            let c = component(e.device, e.stream);
            if let Some(&(prev_idx, prev_end)) = last_end.get(&c) {
                if e.start < prev_end {
                    let msg = format!(
                        "events {} and {} overlap on the {} clock ({} starts at {} ns \
                         before {} ends at {} ns)",
                        prev_idx,
                        idx,
                        component_name(c),
                        e.label,
                        e.start.as_nanos(),
                        prev_idx,
                        prev_end.as_nanos()
                    );
                    self.hazard(
                        HazardRule::ClockMonotonicity,
                        msg,
                        vec![component_name(c)],
                        vec![],
                        vec![prev_idx, idx],
                        None,
                    );
                }
            }
            last_end.insert(c, (idx, e.end));
        }
    }

    /// RULE6: verify a claimed busy fraction against an independently
    /// computed interval union (boundary sweep, a different algorithm
    /// from [`Timeline::gpu_busy_fraction`]'s sorted-interval merge).
    fn check_busy_claim(&mut self, claim: &BusyClaim, epsilon: f64) {
        if !(0.0..=1.0).contains(&claim.fraction) {
            let msg = format!("claimed busy fraction {} is outside [0, 1]", claim.fraction);
            self.hazard(HazardRule::BusyFraction, msg, vec![], vec![], vec![], None);
        }
        let reference = reference_busy_fraction(self.timeline, claim.win_start, claim.win_end);
        if (claim.fraction - reference).abs() > epsilon {
            let msg = format!(
                "claimed busy fraction {:.9} disagrees with the interval-union \
                 reference {:.9} over [{}, {}) ns — per-event sums double-count \
                 overlapping kernels",
                claim.fraction,
                reference,
                claim.win_start.as_nanos(),
                claim.win_end.as_nanos()
            );
            self.hazard(HazardRule::BusyFraction, msg, vec![], vec![], vec![], None);
        }
    }
}

/// Boundary-sweep interval union of GPU kernel events clipped to the
/// window, as a fraction of the window.
fn reference_busy_fraction(timeline: &Timeline, win_start: DurationNs, win_end: DurationNs) -> f64 {
    let window = win_end.saturating_sub(win_start).as_nanos();
    if window == 0 {
        return 0.0;
    }
    let mut bounds: Vec<(u64, i64)> = Vec::new();
    for e in timeline.events() {
        // The claim under test is `gpu_busy_fraction`, which is device
        // 0's kernel residency; other devices' kernels are out of scope.
        if !e.category.is_gpu_compute() || e.device != 0 {
            continue;
        }
        let s = e.start.max(win_start).as_nanos();
        let t = e.end.min(win_end).as_nanos();
        if t > s {
            bounds.push((s, 1));
            bounds.push((t, -1));
        }
    }
    bounds.sort_unstable();
    let mut depth = 0i64;
    let mut prev = 0u64;
    let mut busy = 0u64;
    for (t, delta) in bounds {
        if depth > 0 {
            busy += t - prev;
        }
        prev = t;
        depth += delta;
    }
    busy as f64 / window as f64
}

/// Replays `trace` against `timeline` and returns every detected hazard.
///
/// A clean report means: every device read is ordered after its defining
/// transfer, no buffer is used after download/release, all conflicting
/// cross-lane accesses are event-ordered, clocks are monotone, staged
/// bytes are conserved, (when a claim is supplied) the busy fraction is
/// consistent with the timeline, every streaming-graph sample reads
/// only append prefixes whose ingest work completed before the read,
/// and every cross-device fetch is priced on exactly one interconnect
/// edge (RULE8).
pub fn sanitize(timeline: &Timeline, trace: &ExecTrace, opts: &SanitizeOptions) -> SanitizerReport {
    let mut s = Sanitizer::new(timeline);
    s.replay(trace);
    s.check_timeline();
    if let Some(claim) = &opts.busy_claim {
        let claim = *claim;
        s.check_busy_claim(&claim, opts.epsilon);
    }
    let stats = SanitizeStats {
        trace_records: trace.len(),
        timeline_events: timeline.len(),
        tensors: s.tensors.len(),
        forks: s.forks,
        crossings: s.crossings,
        priced_bytes: s.priced,
        graph_appends: s.graph_appends,
        graph_samples: s.graph_samples,
        cache_hit_rows: s.cache_hit_rows,
        cache_hit_bytes: s.cache_hit_bytes,
        peer_crossings: s.peer_crossings,
        peer_bytes: s.peer_bytes,
    };
    SanitizerReport {
        hazards: s.hazards,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::StreamId;

    #[test]
    fn empty_trace_and_timeline_are_clean() {
        let report = sanitize(
            &Timeline::new(),
            &ExecTrace::new(),
            &SanitizeOptions::default(),
        );
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.trace_records, 0);
    }

    #[test]
    fn serial_upload_then_read_is_clean() {
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::Crossing {
            tensor: Some(7),
            dir: TransferDir::H2D,
            bytes: 64,
            lane: None,
            staged: false,
            at_event: 0,
        });
        trace.push(TraceRecord::Access {
            tensor: 7,
            kind: AccessKind::Arg,
            lane: None,
            place: Place::Gpu,
            at_event: 1,
        });
        // The priced twin for the crossing.
        let mut tl = Timeline::new();
        tl.push(dgnn_device::TimelineEvent {
            label: "memcpy_h2d",
            scope: String::new(),
            category: EventCategory::Transfer(TransferDir::H2D),
            place: Place::Pcie,
            start: DurationNs::ZERO,
            end: DurationNs::from_nanos(10),
            occupancy: 1.0,
            flops: 0,
            bytes: 64,
            stream: None,
            device: 0,
        });
        trace.push(TraceRecord::Priced {
            dir: TransferDir::H2D,
            bytes: 64,
            lane: None,
            event: 0,
        });
        let report = sanitize(&tl, &trace, &SanitizeOptions::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.tensors, 1);
        assert_eq!(report.stats.priced_bytes, [64, 0]);
    }

    #[test]
    fn cache_hits_are_legitimately_unpriced() {
        use dgnn_device::TensorClass;
        // A fetch that half-hits: two rows served from the cache (no
        // crossing, no priced event) and one row priced over PCIe. RULE5
        // byte conservation must only account for the priced row.
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::CacheHit {
            class: TensorClass::NodeFeature,
            rows: 2,
            bytes: 256,
            lane: None,
            at_event: 0,
        });
        trace.push(TraceRecord::Crossing {
            tensor: None,
            dir: TransferDir::H2D,
            bytes: 128,
            lane: None,
            staged: false,
            at_event: 0,
        });
        let mut tl = Timeline::new();
        tl.push(dgnn_device::TimelineEvent {
            label: "memcpy_h2d",
            scope: String::new(),
            category: EventCategory::Transfer(TransferDir::H2D),
            place: Place::Pcie,
            start: DurationNs::ZERO,
            end: DurationNs::from_nanos(10),
            occupancy: 1.0,
            flops: 0,
            bytes: 128,
            stream: None,
            device: 0,
        });
        trace.push(TraceRecord::Priced {
            dir: TransferDir::H2D,
            bytes: 128,
            lane: None,
            event: 0,
        });
        let report = sanitize(&tl, &trace, &SanitizeOptions::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.cache_hit_rows, 2);
        assert_eq!(report.stats.cache_hit_bytes, 256);
        assert_eq!(report.stats.priced_bytes, [128, 0]);
    }

    #[test]
    fn cross_lane_read_without_wait_is_rule1() {
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::Fork {
            at: DurationNs::ZERO,
        });
        trace.push(TraceRecord::Crossing {
            tensor: Some(1),
            dir: TransferDir::H2D,
            bytes: 128,
            lane: Some(StreamId::Copy),
            staged: false,
            at_event: 0,
        });
        trace.push(TraceRecord::Access {
            tensor: 1,
            kind: AccessKind::Arg,
            lane: Some(StreamId::Compute),
            place: Place::Gpu,
            at_event: 1,
        });
        trace.push(TraceRecord::Join {
            at: DurationNs::from_nanos(10),
            lane_clocks: vec![DurationNs::ZERO; 3],
        });
        let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
        assert_eq!(report.count(HazardRule::ReadBeforeTransfer), 1, "{report}");
    }

    #[test]
    fn cross_lane_read_with_handoff_is_clean_of_rule1() {
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::Fork {
            at: DurationNs::ZERO,
        });
        trace.push(TraceRecord::Crossing {
            tensor: Some(1),
            dir: TransferDir::H2D,
            bytes: 128,
            lane: Some(StreamId::Copy),
            staged: false,
            at_event: 0,
        });
        trace.push(TraceRecord::EventRecord {
            event: 0,
            lane: StreamId::Copy,
            at: DurationNs::from_nanos(5),
        });
        trace.push(TraceRecord::EventWait {
            event: 0,
            lane: StreamId::Compute,
        });
        trace.push(TraceRecord::Access {
            tensor: 1,
            kind: AccessKind::Arg,
            lane: Some(StreamId::Compute),
            place: Place::Gpu,
            at_event: 1,
        });
        trace.push(TraceRecord::Join {
            at: DurationNs::from_nanos(10),
            lane_clocks: vec![DurationNs::ZERO; 3],
        });
        let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
        assert_eq!(report.count(HazardRule::ReadBeforeTransfer), 0, "{report}");
        assert_eq!(report.count(HazardRule::MissingWait), 0, "{report}");
    }

    fn peer_event(label: &'static str, device: usize, bytes: u64) -> dgnn_device::TimelineEvent {
        dgnn_device::TimelineEvent {
            label,
            scope: String::new(),
            category: EventCategory::PeerTransfer,
            place: Place::Pcie,
            start: DurationNs::ZERO,
            end: DurationNs::from_nanos(10),
            occupancy: 1.0,
            flops: 0,
            bytes,
            stream: None,
            device,
        }
    }

    #[test]
    fn balanced_peer_crossing_is_clean() {
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::DeviceSwitch { device: 1 });
        trace.push(TraceRecord::PeerCrossing {
            src: 0,
            dst: 1,
            bytes: 4096,
            lane: None,
            at_event: 0,
        });
        trace.push(TraceRecord::PeerPriced {
            src: 0,
            dst: 1,
            bytes: 4096,
            via_host: false,
            lane: None,
            event: 0,
        });
        let mut tl = Timeline::new();
        tl.push(peer_event("peer_copy", 1, 4096));
        let report = sanitize(&tl, &trace, &SanitizeOptions::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.peer_crossings, 1);
        assert_eq!(report.stats.peer_bytes, 4096);
    }

    #[test]
    fn unpriced_peer_crossing_is_rule8() {
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::DeviceSwitch { device: 1 });
        trace.push(TraceRecord::PeerCrossing {
            src: 0,
            dst: 1,
            bytes: 4096,
            lane: None,
            at_event: 0,
        });
        let report = sanitize(&Timeline::new(), &trace, &SanitizeOptions::default());
        assert_eq!(report.count(HazardRule::PeerConservation), 1, "{report}");
    }

    #[test]
    fn self_peer_pricing_is_rule8() {
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::PeerCrossing {
            src: 1,
            dst: 1,
            bytes: 64,
            lane: None,
            at_event: 0,
        });
        trace.push(TraceRecord::PeerPriced {
            src: 1,
            dst: 1,
            bytes: 64,
            via_host: false,
            lane: None,
            event: 0,
        });
        let mut tl = Timeline::new();
        tl.push(peer_event("peer_copy", 1, 64));
        let report = sanitize(&tl, &trace, &SanitizeOptions::default());
        assert_eq!(report.count(HazardRule::PeerConservation), 1, "{report}");
    }

    #[test]
    fn mislabeled_peer_route_is_rule8() {
        // Priced record says the payload bounced through the host, but
        // the timeline event is a direct peer copy.
        let mut trace = ExecTrace::new();
        trace.push(TraceRecord::DeviceSwitch { device: 2 });
        trace.push(TraceRecord::PeerCrossing {
            src: 0,
            dst: 2,
            bytes: 512,
            lane: None,
            at_event: 0,
        });
        trace.push(TraceRecord::PeerPriced {
            src: 0,
            dst: 2,
            bytes: 512,
            via_host: true,
            lane: None,
            event: 0,
        });
        let mut tl = Timeline::new();
        tl.push(peer_event("peer_copy", 2, 512));
        let report = sanitize(&tl, &trace, &SanitizeOptions::default());
        assert_eq!(report.count(HazardRule::PeerConservation), 1, "{report}");
    }
}
