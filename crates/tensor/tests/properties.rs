//! Property-style tests over the tensor algebra, driven by a seeded
//! in-repo generator instead of an external property-testing crate so
//! the suite builds offline. Each test sweeps a deterministic family of
//! shapes and seeds.

use dgnn_tensor::{Initializer, Tensor, TensorRng};

/// Deterministic sweep of (rows, cols, seed) triples up to `max_dim`.
fn matrix_cases(max_dim: usize, n_cases: usize) -> Vec<(usize, usize, u64)> {
    let mut rng = TensorRng::seed(0xa11ce);
    (0..n_cases)
        .map(|_| {
            (
                rng.index(max_dim) + 1,
                rng.index(max_dim) + 1,
                rng.next_u64(),
            )
        })
        .collect()
}

fn small_matrix(m: usize, n: usize, seed: u64) -> Tensor {
    TensorRng::seed(seed).init(&[m, n], Initializer::Uniform(2.0))
}

#[test]
fn transpose_is_involution() {
    for (m, n, seed) in matrix_cases(8, 32) {
        let t = small_matrix(m, n, seed);
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
    }
}

#[test]
fn matmul_identity_left_and_right() {
    for (m, n, seed) in matrix_cases(8, 32) {
        let t = small_matrix(m, n, seed);
        t.matmul(&Tensor::eye(n)).unwrap().assert_close(&t, 1e-4);
        Tensor::eye(m).matmul(&t).unwrap().assert_close(&t, 1e-4);
    }
}

#[test]
fn matmul_distributes_over_add() {
    let mut rng = TensorRng::seed(0xd157);
    for _ in 0..32 {
        let (m, k, n) = (rng.index(5) + 1, rng.index(5) + 1, rng.index(5) + 1);
        let a = TensorRng::seed(rng.next_u64()).init(&[m, k], Initializer::Uniform(1.0));
        let b = TensorRng::seed(rng.next_u64()).init(&[k, n], Initializer::Uniform(1.0));
        let c = TensorRng::seed(rng.next_u64()).init(&[k, n], Initializer::Uniform(1.0));
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        lhs.assert_close(&rhs, 1e-3);
    }
}

#[test]
fn transpose_reverses_matmul() {
    let mut rng = TensorRng::seed(0x7a5);
    for _ in 0..32 {
        let (m, k, n) = (rng.index(5) + 1, rng.index(5) + 1, rng.index(5) + 1);
        let a = TensorRng::seed(rng.next_u64()).init(&[m, k], Initializer::Uniform(1.0));
        let b = TensorRng::seed(rng.next_u64()).init(&[k, n], Initializer::Uniform(1.0));
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b
            .transpose()
            .unwrap()
            .matmul(&a.transpose().unwrap())
            .unwrap();
        lhs.assert_close(&rhs, 1e-4);
    }
}

#[test]
fn softmax_rows_are_distributions() {
    for (m, n, seed) in matrix_cases(8, 32) {
        let p = small_matrix(m, n, seed).softmax_rows().unwrap();
        for i in 0..m {
            let mut row_sum = 0.0f32;
            for j in 0..n {
                let v = p.at(&[i, j]).unwrap();
                assert!((0.0..=1.0 + 1e-6).contains(&v));
                row_sum += v;
            }
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }
}

#[test]
fn gather_then_scatter_round_trips() {
    for (m, n, seed) in matrix_cases(8, 32) {
        let t = small_matrix(m, n, seed);
        let mut rng = TensorRng::seed(seed ^ 0x5ca7);
        let k = rng.index(m) + 1;
        // Distinct indices so scatter exactly undoes gather.
        let mut idx: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            idx.swap(i, rng.index(i + 1));
        }
        idx.truncate(k);
        let g = t.gather_rows(&idx).unwrap();
        let back = t.scatter_rows(&idx, &g).unwrap();
        assert_eq!(t, back);
    }
}

#[test]
fn concat_cols_preserves_rows() {
    for (m, _, seed) in matrix_cases(6, 24) {
        let a = small_matrix(m, 4, seed);
        let b = TensorRng::seed(seed ^ 0xc01).init(&[m, 3], Initializer::Uniform(1.0));
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.dims()[0], m);
        assert_eq!(c.dims()[1], a.dims()[1] + 3);
        for i in 0..m {
            assert_eq!(c.at(&[i, 0]).unwrap(), a.at(&[i, 0]).unwrap());
            assert_eq!(c.at(&[i, a.dims()[1]]).unwrap(), b.at(&[i, 0]).unwrap());
        }
    }
}

#[test]
fn relu_is_idempotent_and_nonnegative() {
    for (m, n, seed) in matrix_cases(8, 32) {
        let r = small_matrix(m, n, seed).relu();
        assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        assert_eq!(r.relu(), r);
    }
}

#[test]
fn sigmoid_tanh_identity() {
    for (m, n, seed) in matrix_cases(6, 24) {
        // tanh(x) = 2·sigmoid(2x) − 1
        let t = small_matrix(m, n, seed);
        let lhs = t.tanh();
        let rhs = t.scale(2.0).sigmoid().scale(2.0).add_scalar(-1.0);
        lhs.assert_close(&rhs, 1e-5);
    }
}

#[test]
fn sum_rows_matches_total() {
    for (m, n, seed) in matrix_cases(8, 32) {
        let t = small_matrix(m, n, seed);
        let total: f32 = t.sum();
        let rowsum = t.sum_rows().unwrap().sum();
        assert!((total - rowsum).abs() < 1e-3 * (1.0 + total.abs()));
    }
}
