//! Cross-crate integration: every model runs end-to-end (dataset →
//! graph substrate → nn layers → simulated device → profile capture) on
//! both devices, deterministically.

use dgnn_suite::datasets::{
    bitcoin_alpha, github, iso17, pems, social_evolution, wikipedia, Scale,
};
use dgnn_suite::device::{DurationNs, ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{
    Astgnn, AstgnnConfig, DgnnModel, DyRep, DyRepConfig, EvolveGcn, EvolveGcnConfig,
    EvolveGcnVersion, InferenceConfig, Jodie, JodieConfig, Ldg, LdgConfig, LdgEncoder, MolDgnn,
    MolDgnnConfig, Tgat, TgatConfig, Tgn, TgnConfig,
};
use dgnn_suite::profile::InferenceProfile;

const SEED: u64 = 13;

fn zoo() -> Vec<(Box<dyn DgnnModel>, InferenceConfig)> {
    let s = Scale::Tiny;
    let base = InferenceConfig::default().with_max_units(2);
    vec![
        (
            Box::new(Jodie::new(wikipedia(s, SEED), JodieConfig::default(), SEED)) as _,
            base.clone().with_batch_size(64),
        ),
        (
            Box::new(Tgn::new(wikipedia(s, SEED), TgnConfig::default(), SEED)) as _,
            base.clone().with_batch_size(128).with_neighbors(10),
        ),
        (
            Box::new(EvolveGcn::new(
                bitcoin_alpha(s, SEED),
                EvolveGcnConfig {
                    hidden: 100,
                    version: EvolveGcnVersion::O,
                },
                SEED,
            )) as _,
            base.clone().with_max_units(4),
        ),
        (
            Box::new(EvolveGcn::new(
                bitcoin_alpha(s, SEED),
                EvolveGcnConfig {
                    hidden: 100,
                    version: EvolveGcnVersion::H,
                },
                SEED,
            )) as _,
            base.clone().with_max_units(4),
        ),
        (
            Box::new(Tgat::new(wikipedia(s, SEED), TgatConfig::default(), SEED)) as _,
            base.clone().with_batch_size(100).with_neighbors(10),
        ),
        (
            Box::new(Astgnn::new(pems(s, SEED), AstgnnConfig::default(), SEED)) as _,
            base.clone().with_batch_size(4),
        ),
        (
            Box::new(DyRep::new(
                social_evolution(s, SEED),
                DyRepConfig::default(),
                SEED,
            )) as _,
            base.clone().with_batch_size(48),
        ),
        (
            Box::new(Ldg::new(
                github(s, SEED),
                LdgConfig {
                    dim: 32,
                    encoder: LdgEncoder::Mlp,
                },
                SEED,
            )) as _,
            base.clone().with_batch_size(48),
        ),
        (
            Box::new(Ldg::new(
                github(s, SEED),
                LdgConfig {
                    dim: 32,
                    encoder: LdgEncoder::Bilinear,
                },
                SEED,
            )) as _,
            base.clone().with_batch_size(48),
        ),
        (
            Box::new(MolDgnn::new(iso17(s, SEED), MolDgnnConfig::default(), SEED)) as _,
            base.with_batch_size(32).with_max_units(1),
        ),
    ]
}

#[test]
fn every_model_runs_on_gpu_with_a_complete_profile() {
    for (mut model, cfg) in zoo() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let summary = model
            .run(&mut ex, &cfg)
            .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
        assert!(summary.iterations > 0, "{}", model.name());
        assert!(summary.checksum.is_finite(), "{}", model.name());
        assert!(
            summary.inference_time > DurationNs::ZERO,
            "{}",
            model.name()
        );

        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.end_to_end >= p.inference_time, "{}", model.name());
        assert!(
            (0.0..=1.0).contains(&p.utilization.busy_fraction),
            "{}",
            model.name()
        );
        assert!(!p.breakdown.entries().is_empty(), "{}", model.name());
        let share_sum: f64 = p.breakdown.entries().iter().map(|e| e.share).sum();
        assert!(
            (share_sum - 1.0).abs() < 0.02,
            "{} breakdown shares sum to {share_sum}",
            model.name()
        );
        // GPU runs always pay context init.
        assert!(p.warmup.context > DurationNs::ZERO, "{}", model.name());
    }
}

#[test]
fn every_model_runs_on_cpu_without_gpu_artifacts() {
    for (mut model, cfg) in zoo() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        model
            .run(&mut ex, &cfg)
            .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
        let p = InferenceProfile::capture(&ex, "inference");
        assert_eq!(p.pcie_bytes, 0, "{}", model.name());
        assert_eq!(p.gpu_peak_bytes, 0, "{}", model.name());
        assert_eq!(p.warmup.context, DurationNs::ZERO, "{}", model.name());
    }
}

#[test]
fn simulated_time_is_reproducible_end_to_end() {
    let run_all = || -> Vec<(String, u64, u32)> {
        zoo()
            .into_iter()
            .map(|(mut model, cfg)| {
                let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
                let s = model.run(&mut ex, &cfg).expect("inference");
                (
                    model.name().to_string(),
                    ex.now().as_nanos(),
                    s.checksum.to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(run_all(), run_all());
}

#[test]
fn model_info_names_are_consistent_with_registry() {
    for (model, _) in zoo() {
        let info = model.info();
        assert!(
            model.name().starts_with(info.name),
            "model `{}` vs registry `{}`",
            model.name(),
            info.name
        );
    }
}

#[test]
fn warmup_scales_with_model_size() {
    // TGAT (with its resident embedding table) has far more parameter
    // bytes than DyRep; its model init must cost more.
    let s = Scale::Tiny;
    let big = Tgat::new(wikipedia(s, SEED), TgatConfig::default(), SEED);
    let small = DyRep::new(social_evolution(s, SEED), DyRepConfig::default(), SEED);
    assert!(big.param_bytes() > 10 * small.param_bytes());

    let mut ex_big = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let d_big = ex_big.model_init(big.param_bytes(), big.param_tensors());
    let mut ex_small = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let d_small = ex_small.model_init(small.param_bytes(), small.param_tensors());
    assert!(d_big > d_small);
}
