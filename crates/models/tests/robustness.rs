//! Robustness and failure-injection tests: extreme or degenerate
//! configurations must produce clean results or clean errors, never
//! panics or non-finite numbers.

use dgnn_datasets::{iso17, pems, wikipedia, Scale};
use dgnn_device::{DurationNs, ExecMode, Executor, PlatformSpec};
use dgnn_models::{
    Astgnn, AstgnnConfig, DgnnModel, InferenceConfig, MolDgnn, MolDgnnConfig, Tgat, TgatConfig,
    Tgn, TgnConfig,
};

const SEED: u64 = 99;

#[test]
fn batch_size_larger_than_dataset_is_one_big_batch() {
    let data = wikipedia(Scale::Tiny, SEED);
    let n_events = data.stream.len();
    let mut m = Tgat::new(data, TgatConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(n_events * 100)
        .with_max_units(5);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let s = m.run(&mut ex, &cfg).expect("oversized batch runs");
    assert_eq!(s.iterations, 1, "whole stream fits one batch");
    assert!(s.checksum.is_finite());
}

#[test]
fn max_units_beyond_dataset_is_clamped() {
    let mut m = Tgn::new(wikipedia(Scale::Tiny, SEED), TgnConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(500)
        .with_max_units(10_000);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let s = m.run(&mut ex, &cfg).expect("runs");
    assert!(s.iterations <= 4, "tiny wikipedia has ~1.5k events");
}

#[test]
fn single_neighbor_and_batch_of_one() {
    let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(1)
        .with_neighbors(1)
        .with_max_units(3);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let s = m.run(&mut ex, &cfg).expect("minimal config runs");
    assert_eq!(s.iterations, 3);
    assert!(s.checksum.is_finite());
}

#[test]
fn zero_neighbors_is_clamped_not_fatal() {
    let mut m = Tgn::new(wikipedia(Scale::Tiny, SEED), TgnConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(50)
        .with_neighbors(0)
        .with_max_units(2);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    assert!(m.run(&mut ex, &cfg).is_ok());
}

#[test]
fn degenerate_platform_specs_still_work() {
    // A GPU with brutal launch overhead and a slow link: everything still
    // completes, just slower.
    let mut spec = PlatformSpec::default();
    spec.gpu.launch_overhead_ns = 1_000_000;
    spec.pcie.bandwidth = 1e8;
    let mut slow_ex = Executor::new(spec, ExecMode::Gpu);
    let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(50)
        .with_max_units(2);
    let slow = m.run(&mut slow_ex, &cfg).expect("slow platform runs");

    let mut fast_ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let mut m = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    let fast = m.run(&mut fast_ex, &cfg).expect("default platform runs");
    assert!(slow.inference_time > fast.inference_time);
}

#[test]
fn moldgnn_handles_more_frames_than_dataset() {
    let data = iso17(Scale::Tiny, SEED);
    let frames = data.frames_per_molecule();
    let mut m = MolDgnn::new(
        data,
        MolDgnnConfig {
            gcn_dim: 16,
            lstm_dim: 64,
            frames: frames * 50,
        },
        SEED,
    );
    let cfg = InferenceConfig::default()
        .with_batch_size(8)
        .with_max_units(1);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    assert!(m.run(&mut ex, &cfg).is_ok());
}

#[test]
fn astgnn_single_sensor_batch() {
    let mut m = Astgnn::new(pems(Scale::Tiny, SEED), AstgnnConfig::default(), SEED);
    let cfg = InferenceConfig::default()
        .with_batch_size(1)
        .with_max_units(1);
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let s = m.run(&mut ex, &cfg).expect("bs=1 runs");
    assert!(s.inference_time > DurationNs::ZERO);
}

#[test]
fn repeated_runs_on_one_executor_accumulate_monotonically() {
    // Running two models back-to-back on the same executor keeps the
    // clock monotone and pays context init only once.
    let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
    let cfg = InferenceConfig::default()
        .with_batch_size(50)
        .with_max_units(1);
    let mut a = Tgat::new(wikipedia(Scale::Tiny, SEED), TgatConfig::default(), SEED);
    a.run(&mut ex, &cfg).expect("first model");
    let t1 = ex.now();
    let mut b = Tgn::new(wikipedia(Scale::Tiny, SEED), TgnConfig::default(), SEED);
    b.run(&mut ex, &cfg).expect("second model");
    assert!(ex.now() > t1);
    let contexts = ex
        .timeline()
        .events()
        .iter()
        .filter(|e| e.label == "cuda_context_init")
        .count();
    assert_eq!(contexts, 1, "context init is one-time");
}

#[test]
fn checksum_depends_on_seed_but_timing_is_config_driven() {
    let time_and_sum = |seed: u64| {
        let mut m = Tgat::new(wikipedia(Scale::Tiny, 1), TgatConfig::default(), seed);
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let cfg = InferenceConfig::default()
            .with_batch_size(50)
            .with_max_units(2);
        let s = m.run(&mut ex, &cfg).expect("runs");
        (s.inference_time, s.checksum)
    };
    let (t1, c1) = time_and_sum(1);
    let (t2, c2) = time_and_sum(2);
    assert_ne!(c1, c2, "different weights, different outputs");
    // Cost is structural: same dataset and config, near-identical time.
    let ratio = t1.as_nanos() as f64 / t2.as_nanos() as f64;
    assert!((0.95..1.05).contains(&ratio), "timing ratio {ratio}");
}
