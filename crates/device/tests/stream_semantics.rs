//! Stream/event semantics of the async executor.
//!
//! The pipelined drivers in `dgnn-models` rely on four contracts pinned
//! here at the device level:
//!
//! 1. events issued on one lane never overlap and are monotone in time;
//! 2. `record_event`/`wait_event` orders work *across* lanes (and without
//!    the wait, lanes genuinely overlap — otherwise the pipeline would be
//!    a no-op);
//! 3. with no fork active the executor is the seed's serial engine:
//!    every event is untagged, globally non-overlapping, and the whole
//!    run is deterministic byte-for-byte;
//! 4. transfer coalescing merges priced transactions but conserves bytes.

use dgnn_device::{
    Dispatcher, EventCategory, ExecMode, Executor, HostWork, KernelDesc, KernelKind, PlatformSpec,
    StreamId, TimelineEvent, TransferDir,
};

fn gpu() -> Executor {
    Executor::new(PlatformSpec::default(), ExecMode::Gpu)
}

fn kernel(flops: u64) -> KernelDesc {
    KernelDesc {
        label: "k",
        kind: KernelKind::Gemm,
        flops,
        bytes: flops / 2,
        parallelism: 1024,
    }
}

/// Pays GPU context/first-touch warm-up before the test body so warm-up
/// events do not land inside a stream fork.
fn warmed() -> Executor {
    let mut ex = gpu();
    ex.launch(kernel(1_000));
    ex.transfer(TransferDir::H2D, 64);
    ex
}

fn lane_events(ex: &Executor, lane: StreamId) -> Vec<&TimelineEvent> {
    ex.timeline()
        .events()
        .iter()
        .filter(|e| e.stream == Some(lane))
        .collect()
}

#[test]
fn per_lane_events_are_monotone_and_non_overlapping() {
    let mut ex = warmed();
    ex.fork_streams();
    for round in 0..4u64 {
        ex.on_stream(StreamId::Host, |ex| {
            ex.host(HostWork::sequential("prep", 10_000 + round, 4_096));
        });
        ex.on_stream(StreamId::Copy, |ex| {
            ex.transfer(TransferDir::H2D, 1 << 20);
        });
        ex.on_stream(StreamId::Compute, |ex| {
            ex.launch(kernel(1 << 24));
        });
    }
    ex.join_streams();

    for lane in [StreamId::Host, StreamId::Copy, StreamId::Compute] {
        let events = lane_events(&ex, lane);
        assert_eq!(events.len(), 4, "4 rounds of work on {lane:?}");
        for pair in events.windows(2) {
            assert!(
                pair[0].end <= pair[1].start,
                "{lane:?} events overlap: {:?}..{:?} then {:?}..{:?}",
                pair[0].start,
                pair[0].end,
                pair[1].start,
                pair[1].end
            );
        }
    }
}

#[test]
fn wait_event_orders_work_across_lanes() {
    let mut ex = warmed();
    ex.fork_streams();
    // Delay the Copy lane, then make Compute wait on its completion.
    let done = ex.on_stream(StreamId::Copy, |ex| {
        ex.transfer(TransferDir::H2D, 64 << 20);
        ex.record_event(StreamId::Copy)
    });
    ex.wait_event(StreamId::Compute, done);
    ex.on_stream(StreamId::Compute, |ex| {
        ex.launch(kernel(1 << 20));
    });
    ex.join_streams();

    let upload = lane_events(&ex, StreamId::Copy)[0];
    let compute = lane_events(&ex, StreamId::Compute)[0];
    assert!(
        compute.start >= upload.end,
        "waiting kernel started at {:?} before upload ended at {:?}",
        compute.start,
        upload.end
    );
}

#[test]
fn without_wait_lanes_genuinely_overlap() {
    let mut ex = warmed();
    ex.fork_streams();
    ex.on_stream(StreamId::Copy, |ex| {
        ex.transfer(TransferDir::H2D, 64 << 20);
    });
    ex.on_stream(StreamId::Compute, |ex| {
        ex.launch(kernel(1 << 26));
    });
    ex.join_streams();

    let upload = lane_events(&ex, StreamId::Copy)[0];
    let compute = lane_events(&ex, StreamId::Compute)[0];
    assert!(
        compute.start < upload.end,
        "independent lanes should overlap: kernel {:?}.. vs upload ..{:?}",
        compute.start,
        upload.end
    );
}

#[test]
fn join_advances_serial_clock_to_slowest_lane() {
    let mut ex = warmed();
    ex.fork_streams();
    ex.on_stream(StreamId::Copy, |ex| {
        ex.transfer(TransferDir::H2D, 256 << 20);
    });
    ex.on_stream(StreamId::Host, |ex| {
        ex.host(HostWork::sequential("tiny", 10, 64));
    });
    let copy_end = ex.stream_now(StreamId::Copy);
    let host_end = ex.stream_now(StreamId::Host);
    let joined = ex.join_streams();
    assert!(copy_end > host_end, "copy lane should be the slow one");
    assert_eq!(joined, copy_end, "join = makespan of the forked region");
    assert_eq!(ex.now(), joined);
}

#[test]
fn no_fork_is_the_serial_engine_and_deterministic() {
    let run = || {
        let mut ex = gpu();
        ex.launch(kernel(1 << 22));
        ex.transfer(TransferDir::H2D, 1 << 20);
        ex.host(HostWork::sequential("prep", 50_000, 8_192));
        ex.launch(kernel(1 << 21));
        ex.transfer(TransferDir::D2H, 1 << 18);
        ex
    };
    let a = run();
    let b = run();

    assert!(!a.streams_active());
    let events = a.timeline().events();
    for e in events {
        assert_eq!(
            e.stream, None,
            "serial event `{}` carries a lane tag",
            e.label
        );
    }
    // Serial events tile the clock: globally monotone, non-overlapping.
    for pair in events.windows(2) {
        assert!(pair[0].end <= pair[1].start, "serial events overlap");
    }
    // Bit-identical replay: same labels, same nanosecond endpoints,
    // same priced work.
    assert_eq!(events.len(), b.timeline().events().len());
    for (x, y) in events.iter().zip(b.timeline().events()) {
        assert_eq!((x.label, x.start, x.end), (y.label, y.start, y.end));
        assert_eq!((x.flops, x.bytes), (y.flops, y.bytes));
    }
    assert_eq!(a.now(), b.now());
}

#[test]
fn coalescing_conserves_bytes_and_merges_transactions() {
    let pieces: [u64; 5] = [4 << 10, 32 << 10, 1 << 20, 96, 7];
    let total: u64 = pieces.iter().sum();

    let run = |coalesce: bool| {
        let mut ex = warmed();
        let mut dx = Dispatcher::with_coalescing(&mut ex, coalesce);
        for &b in &pieces {
            dx.transfer(TransferDir::H2D, b);
        }
        dx.transfer(TransferDir::D2H, 128);
        dx.flush_transfers();
        let h2d = ex.timeline().transfer_bytes(Some(TransferDir::H2D));
        let count = ex
            .timeline()
            .events()
            .iter()
            .filter(|e| matches!(e.category, EventCategory::Transfer(_)))
            .count();
        (h2d, count, ex.now())
    };

    let (granular_bytes, granular_count, granular_time) = run(false);
    let (coalesced_bytes, coalesced_count, coalesced_time) = run(true);

    assert_eq!(
        granular_bytes, coalesced_bytes,
        "coalescing must conserve bytes"
    );
    // Warm-up adds a fixed number of transfer events to both runs; the
    // five H2D pieces merge into one transaction, the D2H stays one.
    assert_eq!(granular_count - coalesced_count, pieces.len() - 1);
    assert!(
        coalesced_time < granular_time,
        "merging transactions must save per-transfer latency"
    );
    // The merged payload really is the sum of the pieces.
    let mut ex = warmed();
    let before = ex.timeline().transfer_bytes(Some(TransferDir::H2D));
    let mut dx = Dispatcher::with_coalescing(&mut ex, true);
    for &b in &pieces {
        dx.transfer(TransferDir::H2D, b);
    }
    assert_eq!(dx.pending_transfer_bytes(TransferDir::H2D), total);
    dx.flush_transfers();
    assert_eq!(dx.pending_transfer_bytes(TransferDir::H2D), 0);
    assert_eq!(
        ex.timeline().transfer_bytes(Some(TransferDir::H2D)) - before,
        total
    );
}
