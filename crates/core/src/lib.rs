//! # dgnn-profile
//!
//! The paper's primary contribution, as a reusable toolkit: profiling and
//! bottleneck analysis of dynamic graph neural network inference.
//!
//! Where the authors combined PyTorch Profiler (module-level breakdowns,
//! memory) and NVIDIA Nsight Systems (kernel/transfer timeline, GPU
//! utilization), this crate consumes the equivalent records produced by
//! `dgnn-device` — profiler scopes and the kernel timeline — and derives:
//!
//! * [`Breakdown`] — per-module execution-time breakdowns (Figure 7);
//! * [`UtilizationReport`] — average GPU utilization and time-series
//!   (Figures 6 and 9);
//! * [`WarmupReport`] — warm-up vs computation accounting (Table 2 and
//!   the §4.4 ratios);
//! * [`BottleneckClassifier`] — automatic detection of the paper's four
//!   bottleneck classes from a profile;
//! * [`InferenceProfile`] — one-call capture of all of the above from an
//!   [`dgnn_device::Executor`];
//! * [`LatencyStats`] / [`ServicePhases`] — tail-latency order
//!   statistics and per-request phase decomposition for the serving
//!   subsystem (`dgnn-serve`);
//! * [`pipeline`] — schedule re-simulation for the §5 optimization
//!   proposals (e.g. Fig 10's pipelined EvolveGCN);
//! * [`chrome_trace`] — Chrome-trace/Perfetto export of the timeline
//!   (the `.nsys-rep` stand-in);
//! * [`kernel_summary`] — Nsight-style per-kernel statistics.
//!
//! ## Scope convention
//!
//! Models wrap one inference run in a root scope (conventionally
//! `"inference"`), optionally wrap each iteration in a scope named
//! `"iteration"`, and wrap every module of interest (`"sampling"`,
//! `"attention"`, `"memcpy_h2d"`, …) in its own scope directly inside the
//! root or the iteration scope. [`Breakdown::from_scopes`] aggregates by
//! module name across iterations.

#![forbid(unsafe_code)]

mod bottleneck;
mod breakdown;
mod kernels;
mod latency;
pub mod pipeline;
mod report;
mod tablefmt;
mod trace;
mod utilization;
mod warmup;

pub use bottleneck::{BottleneckClassifier, BottleneckFinding, BottleneckKind, Thresholds};
pub use breakdown::{Breakdown, BreakdownEntry};
pub use kernels::{kernel_summary, render_kernel_summary, KernelStat};
pub use latency::{LatencyStats, ServicePhases};
pub use report::InferenceProfile;
pub use tablefmt::TextTable;
pub use trace::chrome_trace;
pub use utilization::UtilizationReport;
pub use warmup::WarmupReport;
