//! Discrete-time snapshot datasets: Bitcoin-Alpha and the Stochastic
//! Block Model (the EvolveGCN evaluation sets).

use dgnn_graph::{Graph, Snapshot, SnapshotSequence};
use dgnn_tensor::{Initializer, TensorRng};

use crate::power_law::PowerLawSampler;
use crate::scale::Scale;
use crate::types::SnapshotDataset;

/// Bitcoin-Alpha trust network: ~3.8k nodes, ~24k signed, weighted edges
/// spread over ~140 weekly snapshots. Edge weights in `[-1, 1]`
/// (normalized trust ratings).
pub fn bitcoin_alpha(scale: Scale, seed: u64) -> SnapshotDataset {
    let n_nodes = scale.apply(3_783, 64);
    let n_steps = scale.apply(138, 12);
    let edges_per_step = scale.apply(24_186, 240) / n_steps.max(1);

    let mut rng = TensorRng::seed(seed);
    let pop = PowerLawSampler::new(n_nodes, 1.1);
    let mut snapshots = Vec::with_capacity(n_steps);
    for step in 0..n_steps {
        let edges: Vec<(usize, usize, f32)> = (0..edges_per_step.max(1))
            .map(|_| {
                let s = pop.sample(&mut rng);
                let mut d = pop.sample(&mut rng);
                if d == s {
                    d = (d + 1) % n_nodes;
                }
                // Ratings skew positive, as in the real network.
                let w = if rng.chance(0.9) {
                    rng.uniform(0.1, 1.0)
                } else {
                    rng.uniform(-1.0, -0.1)
                };
                (s, d, w)
            })
            .collect();
        let graph = Graph::from_weighted_edges(n_nodes, &edges).expect("indices are in range");
        snapshots.push(Snapshot {
            time: step as f64,
            graph,
        });
    }

    let mut trng = TensorRng::seed(seed ^ 0xb5297a4d);
    SnapshotDataset {
        name: "bitcoin_alpha",
        snapshots: SnapshotSequence::new(snapshots).expect("steps are ordered"),
        node_features: trng.init(&[n_nodes, 100], Initializer::Normal(1.0)),
    }
}

/// Stochastic Block Model: 1k nodes in 3 drifting communities over 50
/// snapshots (the synthetic benchmark shipped with EvolveGCN).
pub fn sbm(scale: Scale, seed: u64) -> SnapshotDataset {
    let n_nodes = scale.apply(1_000, 60);
    let n_steps = scale.apply(50, 10);
    let n_blocks = 3usize;
    let p_in = 0.04f64;
    let p_out = 0.002f64;
    // Keep expected edge counts manageable at Full scale.
    let sample_pairs = scale.apply(400_000, 4_000);

    let mut rng = TensorRng::seed(seed);
    let mut membership: Vec<usize> = (0..n_nodes).map(|i| i % n_blocks).collect();
    let mut snapshots = Vec::with_capacity(n_steps);
    for step in 0..n_steps {
        // Community drift: a few nodes switch blocks each step.
        for _ in 0..n_nodes / 50 {
            let v = rng.index(n_nodes);
            membership[v] = rng.index(n_blocks);
        }
        let mut edges = Vec::new();
        for _ in 0..sample_pairs {
            let a = rng.index(n_nodes);
            let b = rng.index(n_nodes);
            if a == b {
                continue;
            }
            let p = if membership[a] == membership[b] {
                p_in
            } else {
                p_out
            };
            if rng.chance(p) {
                edges.push((a, b));
            }
        }
        let graph = Graph::from_edges(n_nodes, &edges).expect("indices are in range");
        snapshots.push(Snapshot {
            time: step as f64,
            graph,
        });
    }

    let mut trng = TensorRng::seed(seed ^ 0x68e31da4);
    SnapshotDataset {
        name: "sbm",
        snapshots: SnapshotSequence::new(snapshots).expect("steps are ordered"),
        node_features: trng.init(&[n_nodes, 64], Initializer::Normal(1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcoin_alpha_has_snapshots_and_features() {
        let d = bitcoin_alpha(Scale::Tiny, 1);
        assert_eq!(d.name, "bitcoin_alpha");
        assert!(d.snapshots.len() >= 12);
        assert_eq!(d.node_dim(), 100);
        assert!(d.snapshots.mean_edges() > 0.0);
    }

    #[test]
    fn bitcoin_alpha_weights_mostly_positive() {
        let d = bitcoin_alpha(Scale::Tiny, 2);
        let mut pos = 0usize;
        let mut neg = 0usize;
        for s in d.snapshots.iter() {
            for (_, _, w) in s.graph.iter_edges() {
                if w > 0.0 {
                    pos += 1;
                } else {
                    neg += 1;
                }
            }
        }
        assert!(pos > 4 * neg, "pos {pos} vs neg {neg}");
    }

    #[test]
    fn sbm_prefers_intra_block_edges() {
        let d = sbm(Scale::Tiny, 3);
        // Blocks drift, but the initial assignment i % 3 remains a decent
        // proxy in the first snapshot.
        let first = &d.snapshots.snapshots()[0].graph;
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (s, t, _) in first.iter_edges() {
            if s % 3 == t % 3 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(sbm(Scale::Tiny, 9).snapshots, sbm(Scale::Tiny, 9).snapshots);
        assert_eq!(
            bitcoin_alpha(Scale::Tiny, 9).snapshots,
            bitcoin_alpha(Scale::Tiny, 9).snapshots
        );
    }
}
