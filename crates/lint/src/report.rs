//! Structured lint diagnostics: findings and the report, mirroring the
//! sanitizer's `Hazard`/`SanitizerReport` shape (rule id/slug,
//! file:line span, offending expression, suggested fix), with a
//! machine-readable JSON rendering for CI.

use std::fmt;

use crate::rules::LintRule;

/// One static finding, with enough provenance to locate and fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: LintRule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the offending expression.
    pub line: usize,
    /// Enclosing function, when known.
    pub function: Option<String>,
    /// The offending expression / token, trimmed.
    pub excerpt: String,
    /// What happened (rule-specific details).
    pub message: String,
    /// Suggested fix (from [`LintRule::suggestion`]).
    pub suggestion: &'static str,
}

impl Finding {
    /// Stable baseline key: rule, file and excerpt — deliberately not
    /// the line number, so unrelated edits above a grandfathered
    /// finding don't churn the baseline.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.rule.id(), self.file, self.excerpt)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}:{}", self.rule, self.file, self.line)?;
        if let Some(func) = &self.function {
            write!(f, " (fn {func})")?;
        }
        write!(f, " — {}", self.message)?;
        if !self.excerpt.is_empty() {
            write!(f, "\n    offending: {}", self.excerpt)?;
        }
        write!(f, "\n    fix: {}", self.suggestion)
    }
}

/// The analyzer's verdict over one workspace scan.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Live findings (not grandfathered), in (file, line) order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by the baseline.
    pub grandfathered: usize,
    /// Source files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether no live finding was detected.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of live findings of one rule.
    pub fn count(&self, rule: LintRule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Machine-readable JSON rendering (hand-rolled: the workspace
    /// builds offline with no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"tool\":\"dgnn-lint\",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"slug\":{},\"file\":{},\"line\":{},\"function\":{},\
                 \"excerpt\":{},\"message\":{},\"suggestion\":{}}}",
                json_str(f.rule.id()),
                json_str(f.rule.slug()),
                json_str(&f.file),
                f.line,
                f.function
                    .as_deref()
                    .map_or_else(|| "null".to_string(), json_str),
                json_str(&f.excerpt),
                json_str(&f.message),
                json_str(f.suggestion),
            ));
        }
        s.push_str(&format!(
            "],\"grandfathered\":{},\"files_scanned\":{},\"clean\":{}}}",
            self.grandfathered,
            self.files_scanned,
            self.is_clean()
        ));
        s
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dgnn-lint: {} finding(s) over {} file(s){}",
            self.findings.len(),
            self.files_scanned,
            if self.grandfathered > 0 {
                format!(" ({} grandfathered by baseline)", self.grandfathered)
            } else {
                String::new()
            }
        )?;
        for rule in LintRule::ALL {
            let n = self.count(rule);
            if n > 0 {
                writeln!(f, "  {rule}: {n}")?;
            }
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: LintRule::HashIteration,
            file: "crates/serve/src/sim.rs".into(),
            line: 42,
            function: Some("step".into()),
            excerpt: "pending.values()".into(),
            message: "iteration over HashMap `pending`".into(),
            suggestion: LintRule::HashIteration.suggestion(),
        }
    }

    #[test]
    fn report_renders_findings_and_counts() {
        let mut r = LintReport {
            files_scanned: 3,
            ..LintReport::default()
        };
        assert!(r.is_clean());
        r.findings.push(finding());
        assert!(!r.is_clean());
        assert_eq!(r.count(LintRule::HashIteration), 1);
        assert_eq!(r.count(LintRule::PricingDiscipline), 0);
        let text = r.to_string();
        assert!(text.contains("LINT1 hash-iteration"));
        assert!(text.contains("crates/serve/src/sim.rs:42"));
        assert!(text.contains("fn step"));
        assert!(text.contains("fix:"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut f = finding();
        f.message = "a \"quoted\"\nthing".into();
        let r = LintReport {
            findings: vec![f],
            grandfathered: 2,
            files_scanned: 7,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"LINT1\""));
        assert!(j.contains("\\\"quoted\\\"\\n"));
        assert!(j.contains("\"grandfathered\":2"));
        assert!(j.contains("\"clean\":false"));
        // Balanced braces outside strings is a cheap sanity proxy.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn baseline_key_is_line_independent() {
        let mut a = finding();
        let mut b = finding();
        a.line = 42;
        b.line = 99;
        assert_eq!(a.baseline_key(), b.baseline_key());
    }
}
