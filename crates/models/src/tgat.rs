//! TGAT — Temporal Graph Attention Network (Xu et al., ICLR'20).
//!
//! Continuous-time model. Per mini-batch of interaction events it:
//! 1. samples a two-hop temporal neighborhood per event **on the CPU**
//!    (bisection + index sorting — the paper's dominant cost, 83–94% of
//!    inference time),
//! 2. ships the gathered node/edge features and time deltas to the GPU
//!    (quadratic in the neighbor count `k`, hence the paper's "data
//!    movement increases rapidly past k≈100"),
//! 3. runs Bochner time encoding and two attention layers,
//! 4. copies the updated target embeddings back.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{Executor, HostWork, KernelDesc, TransferDir};
use dgnn_graph::{NeighborSampler, SampleStrategy, TemporalAdjacency};
use dgnn_nn::{BochnerTimeEncoder, Linear, Module, MultiHeadAttention};
use dgnn_tensor::{Tensor, TensorRng};

use crate::common::{representative, DgnnModel, InferenceConfig, RunSummary};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework-level operations per sampling call: the reference
/// implementation performs temporal neighbor lookup in an interpreted
/// per-node loop (Python `bisect` + list indexing), costing several
/// microseconds per call rather than nanoseconds. Priced against
/// `CpuSpec::host_ops_per_sec` (1600 ops ≈ 8 µs per call).
const SAMPLING_CALL_OPS: u64 = 1_600;

/// TGAT hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgatConfig {
    /// Model dimension.
    pub dim: usize,
    /// Time-encoding dimension.
    pub time_dim: usize,
    /// Attention layers (hops).
    pub n_layers: usize,
    /// Attention heads.
    pub heads: usize,
}

impl Default for TgatConfig {
    fn default() -> Self {
        // The reference runs Wikipedia with 172-dimensional features.
        TgatConfig { dim: 172, time_dim: 172, n_layers: 2, heads: 2 }
    }
}

/// The TGAT model bound to a dataset.
#[derive(Debug)]
pub struct Tgat {
    data: TemporalDataset,
    adj: TemporalAdjacency,
    cfg: TgatConfig,
    feat_proj: Linear,
    edge_proj: Linear,
    time_enc: BochnerTimeEncoder,
    attn: Vec<MultiHeadAttention>,
    merge: Vec<Linear>,
    predictor: Linear,
}

impl Tgat {
    /// Builds TGAT over an interaction dataset.
    pub fn new(data: TemporalDataset, cfg: TgatConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let adj = TemporalAdjacency::from_stream(&data.stream);
        let d = cfg.dim;
        let feat_proj = Linear::new(data.node_dim(), d, &mut rng);
        let edge_proj = Linear::new(data.edge_dim(), d, &mut rng);
        let time_enc = BochnerTimeEncoder::new(cfg.time_dim, &mut rng);
        let attn = (0..cfg.n_layers)
            .map(|_| MultiHeadAttention::new(d, cfg.heads, &mut rng))
            .collect();
        let merge = (0..cfg.n_layers)
            .map(|_| Linear::new(d + cfg.time_dim, d, &mut rng))
            .collect();
        let predictor = Linear::new(2 * d, 1, &mut rng);
        Tgat { data, adj, cfg, feat_proj, edge_proj, time_enc, attn, merge, predictor }
    }

    /// Rows of gathered features per event for neighbor count `k`
    /// (target + first hop + second hop).
    fn rows_per_event(&self, k: usize) -> usize {
        match self.cfg.n_layers {
            0 | 1 => 1 + k,
            _ => 1 + k + k * k,
        }
    }

    /// Edge-feature rows shipped to the GPU per event: one per sampled
    /// interaction (`k` first-hop + `k²` second-hop). Node embeddings are
    /// a learned table resident in GPU memory and are *not* re-shipped —
    /// only edge features and time deltas cross PCIe each batch.
    fn edge_rows_per_event(&self, k: usize) -> usize {
        match self.cfg.n_layers {
            0 | 1 => k,
            _ => k + k * k,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        let mut m: Vec<&dyn Module> = vec![
            &self.feat_proj,
            &self.edge_proj,
            &self.time_enc,
            &self.predictor,
        ];
        for a in &self.attn {
            m.push(a);
        }
        for l in &self.merge {
            m.push(l);
        }
        m
    }

    /// One attention layer priced for `targets` queries with `k`
    /// neighbors each, computed functionally for a representative target.
    fn attention_layer(
        &self,
        ex: &mut Executor,
        layer: usize,
        targets: usize,
        k: usize,
        rep_q: &Tensor,
        rep_neigh: &Tensor,
    ) -> Result<Tensor> {
        let d = self.cfg.dim;
        // Price the full-batch kernels.
        ex.launch(KernelDesc::gemm("attn_proj", targets * (1 + k), d, 3 * d));
        ex.launch(KernelDesc::batched_gemm("attn_scores", targets, 1, d, k));
        ex.launch(KernelDesc::reduce("attn_softmax", targets, k));
        ex.launch(KernelDesc::batched_gemm("attn_context", targets, 1, k, d));
        ex.launch(KernelDesc::gemm("attn_out", targets, d, d));
        // Functional result on the representative rows only: attention
        // math itself (without re-pricing) via the layer's tensors.
        let mut cpu = Executor::new(ex.spec().clone(), dgnn_device::ExecMode::CpuOnly);
        let out = self.attn[layer].forward(&mut cpu, rep_q, rep_neigh, rep_neigh)?;
        Ok(out)
    }
}

impl DgnnModel for Tgat {
    fn name(&self) -> &'static str {
        "tgat"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos().into_iter().find(|i| i.name == "tgat").expect("tgat registered")
    }

    fn param_bytes(&self) -> u64 {
        // Learned node embeddings live on the GPU alongside the weights.
        self.modules().iter().map(|m| m.param_bytes()).sum::<u64>()
            + self.data.node_features.byte_len()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum::<u64>() + 1
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        let rows = cfg.batch_size * self.rows_per_event(cfg.n_neighbors);
        (rows * (self.cfg.dim + self.cfg.time_dim) * 4) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let k = cfg.n_neighbors.max(1);
        let d = self.cfg.dim;
        // Per shipped row: edge features + timestamp + neighbor index.
        let feat_bytes_per_row = ((self.data.edge_dim() + 2) * 4) as u64;
        let mut sampler = NeighborSampler::new(SampleStrategy::Uniform, cfg.seed);
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let time = ex.scope("inference", |ex| -> Result<()> {
            for batch in &batches {
                let bsz = batch.len();
                let rep = representative(bsz);
                let rows = bsz * self.rows_per_event(k);
                let edge_rows = bsz * self.edge_rows_per_event(k);

                // 1. Temporal neighborhood sampling on the CPU.
                let (rep_layers, rep_cost) = ex.scope("sampling", |ex| {
                    let roots: Vec<(usize, f64)> =
                        batch.iter().take(rep).map(|e| (e.src, e.time)).collect();
                    let ks = vec![k; self.cfg.n_layers.max(1)];
                    let (layers, cost) = sampler.sample_khop(&self.adj, &roots, &ks);
                    let scale = (bsz as u64).div_ceil(rep as u64);
                    let calls = (bsz * (1 + k)) as u64;
                    // The reference also sorts the sampled node indices
                    // per batch so the feature gather walks forward.
                    let sorted = (bsz * (1 + k)) as u64;
                    let sort_ops = sorted * (64 - sorted.max(2).leading_zeros() as u64);
                    ex.host(HostWork {
                        label: "temporal_sampling",
                        ops: cost.ops * scale + calls * SAMPLING_CALL_OPS + sort_ops,
                        seq_bytes: 0,
                        irregular_bytes: cost.irregular_bytes * scale,
                    });
                    (layers, cost)
                });
                let _ = rep_cost;

                // 2. Ship gathered edge features + time deltas to the GPU.
                ex.scope("memcpy_h2d", |ex| {
                    ex.transfer(TransferDir::H2D, edge_rows as u64 * feat_bytes_per_row);
                });

                // Representative functional inputs.
                let rep_src: Vec<usize> = batch.iter().take(rep).map(|e| e.src).collect();
                let src_feats = self.data.node_features.gather_rows(&rep_src)?;
                let neigh_ids: Vec<usize> = rep_layers
                    .get(1)
                    .map(|l| l.iter().map(|s| s.node).collect())
                    .unwrap_or_default();
                let neigh_feats = if neigh_ids.is_empty() {
                    Tensor::zeros(&[1, self.data.node_dim()])
                } else {
                    self.data.node_features.gather_rows(&neigh_ids)?
                };

                // 3. Time encoding (priced for all rows).
                let deltas: Vec<f32> = rep_layers
                    .get(1)
                    .map(|l| l.iter().map(|s| s.time as f32).collect())
                    .unwrap_or_else(|| vec![0.0]);
                let rep_time = ex.scope("time_encoding", |ex| {
                    ex.launch(KernelDesc::elementwise(
                        "time_encode",
                        rows * self.cfg.time_dim,
                        3,
                        2,
                    ));
                    let t = Tensor::from_vec(deltas.clone(), &[deltas.len()])?;
                    let mut cpu =
                        Executor::new(ex.spec().clone(), dgnn_device::ExecMode::CpuOnly);
                    self.time_enc.forward(&mut cpu, &t)
                })?;

                // 4. Attention layers.
                let out = ex.scope("attention", |ex| -> Result<Tensor> {
                    let mut cpu =
                        Executor::new(ex.spec().clone(), dgnn_device::ExecMode::CpuOnly);
                    let q = self.feat_proj.forward(&mut cpu, &src_feats)?;
                    let nf = self.feat_proj.forward(&mut cpu, &neigh_feats)?;
                    // Merge time encoding into neighbor representation.
                    let nt = if nf.dims()[0] == rep_time.dims()[0] {
                        self.merge[0].forward(&mut cpu, &nf.concat_cols(&rep_time)?)?
                    } else {
                        nf
                    };
                    let mut h = q;
                    for layer in 0..self.cfg.n_layers {
                        let targets = if layer + 1 == self.cfg.n_layers {
                            bsz
                        } else {
                            bsz * k
                        };
                        h = self.attention_layer(ex, layer, targets, k, &h, &nt)?;
                    }
                    Ok(h)
                })?;

                // 5. Prediction head + copy-back.
                ex.scope("prediction", |ex| -> Result<()> {
                    ex.launch(KernelDesc::gemm("predict", bsz, 2 * d, 1));
                    let mut cpu =
                        Executor::new(ex.spec().clone(), dgnn_device::ExecMode::CpuOnly);
                    let pair = out.concat_cols(&out)?;
                    let score = self.predictor.forward(&mut cpu, &pair)?;
                    checksum += score.sum();
                    Ok(())
                })?;
                ex.scope("memcpy_d2h", |ex| {
                    ex.transfer(TransferDir::D2H, (bsz * d * 4) as u64);
                });
                iterations += 1;
            }
            Ok(())
        });
        time?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{wikipedia, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> Tgat {
        Tgat::new(wikipedia(Scale::Tiny, 1), TgatConfig::default(), 7)
    }

    fn small_cfg() -> InferenceConfig {
        InferenceConfig::default().with_batch_size(50).with_max_units(3)
    }

    #[test]
    fn runs_on_gpu_and_produces_profile() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let summary = model.run(&mut ex, &small_cfg()).unwrap();
        assert_eq!(summary.iterations, 3);
        assert!(summary.checksum.is_finite());
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.breakdown.share_of("sampling") > 0.0);
        assert!(p.pcie_bytes > 0);
    }

    #[test]
    fn sampling_dominates_gpu_inference() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        model.run(&mut ex, &small_cfg().with_batch_size(200)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.breakdown.share_of("sampling") > 0.5,
            "sampling share {:.2} should dominate",
            p.breakdown.share_of("sampling")
        );
    }

    #[test]
    fn gpu_utilization_is_low_single_digit() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        model.run(&mut ex, &small_cfg()).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(p.utilization.average < 0.15, "util {}", p.utilization.average);
    }

    #[test]
    fn cpu_mode_runs_without_transfers() {
        let mut model = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let summary = model.run(&mut ex, &small_cfg()).unwrap();
        assert!(summary.inference_time.as_nanos() > 0);
        let p = InferenceProfile::capture(&ex, "inference");
        assert_eq!(p.pcie_bytes, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut model = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = model.run(&mut ex, &small_cfg()).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_neighbors_means_more_transfer_bytes() {
        let bytes_for = |k: usize| {
            let mut model = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            model.run(&mut ex, &small_cfg().with_neighbors(k)).unwrap();
            ex.timeline().transfer_bytes(None)
        };
        let b20 = bytes_for(20);
        let b100 = bytes_for(100);
        assert!(b100 > 10 * b20, "k=100 ({b100}) should dwarf k=20 ({b20})");
    }

    #[test]
    fn param_accounting_is_positive() {
        let model = build();
        assert!(model.param_bytes() > 10_000);
        assert!(model.param_tensors() > 10);
        assert!(model.activation_bytes(&small_cfg()) > 0);
    }

    #[test]
    fn info_matches_registry() {
        let model = build();
        let info = model.info();
        assert_eq!(info.name, "tgat");
        assert!(info.evolving.edge_features);
    }
}
