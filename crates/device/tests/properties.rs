//! Property-style tests over the simulated platform's invariants,
//! driven by a seeded sweep so the suite builds offline.

use dgnn_device::{
    DurationNs, ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, TransferDir,
};
use dgnn_tensor::TensorRng;

/// Deterministic sweep of (m, k, n) gemm shapes in `1..=max`.
fn dim_cases(rng: &mut TensorRng, max: usize, n_cases: usize) -> Vec<(usize, usize, usize)> {
    (0..n_cases)
        .map(|_| (rng.index(max) + 1, rng.index(max) + 1, rng.index(max) + 1))
        .collect()
}

#[test]
fn kernel_time_is_positive_and_monotone_in_work() {
    let mut rng = TensorRng::seed(0xdec1);
    for (m, k, n) in dim_cases(&mut rng, 255, 32) {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let small = ex.launch(KernelDesc::gemm("s", m, k, n));
        let large = ex.launch(KernelDesc::gemm("l", m * 2, k * 2, n * 2));
        assert!(small > DurationNs::ZERO);
        assert!(large >= small);
    }
}

#[test]
fn clock_equals_span_end_for_sequential_execution() {
    let mut rng = TensorRng::seed(0xdec2);
    for _ in 0..16 {
        let count = rng.index(19) + 1;
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        for (m, k, n) in dim_cases(&mut rng, 63, count) {
            ex.launch(KernelDesc::gemm("k", m, k, n));
        }
        assert_eq!(ex.now(), ex.timeline().span_end());
    }
}

#[test]
fn transfers_scale_with_bytes() {
    let mut rng = TensorRng::seed(0xdec3);
    for _ in 0..32 {
        let b1 = rng.index(1_000_000) as u64 + 1;
        let b2 = rng.index(1_000_000) as u64 + 1;
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let d1 = ex.transfer(TransferDir::H2D, b1.min(b2));
        let d2 = ex.transfer(TransferDir::D2H, b1.max(b2));
        assert!(d2 >= d1);
    }
}

#[test]
fn same_seed_same_schedule() {
    let mut rng = TensorRng::seed(0xdec4);
    for (m, k, n) in dim_cases(&mut rng, 255, 16) {
        let run = || {
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            ex.scope("run", |ex| {
                ex.host(HostWork::irregular("sample", 1000, 8192));
                ex.transfer(TransferDir::H2D, (m * k * 4) as u64);
                ex.launch(KernelDesc::gemm("mm", m, k, n));
                ex.transfer(TransferDir::D2H, (m * n * 4) as u64);
            });
            ex.now()
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn utilization_is_a_fraction() {
    let mut rng = TensorRng::seed(0xdec5);
    for _ in 0..12 {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let count = rng.index(14) + 1;
        for (m, k, n) in dim_cases(&mut rng, 255, count) {
            ex.launch(KernelDesc::gemm("k", m, k, n));
        }
        let u = ex.timeline().gpu_utilization(DurationNs::ZERO, ex.now());
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }
}

#[test]
fn scope_intervals_contain_their_events() {
    let mut rng = TensorRng::seed(0xdec6);
    for _ in 0..12 {
        let count = rng.index(9) + 1;
        let ops = dim_cases(&mut rng, 255, count);
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        ex.scope("outer", |ex| {
            for (m, k, n) in &ops {
                ex.scope("inner", |ex| {
                    ex.launch(KernelDesc::gemm("k", *m, *k, *n));
                });
            }
        });
        let outer = ex
            .scopes()
            .iter()
            .find(|s| s.path == "outer")
            .expect("outer scope recorded")
            .clone();
        for e in ex.timeline().events_in_scope("outer") {
            assert!(e.start >= outer.start && e.end <= outer.end);
        }
    }
}

#[test]
fn cpu_only_mode_never_touches_gpu() {
    let mut rng = TensorRng::seed(0xdec7);
    for _ in 0..12 {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        let count = rng.index(9) + 1;
        for (m, k, n) in dim_cases(&mut rng, 255, count) {
            ex.launch(KernelDesc::gemm("k", m, k, n));
            ex.transfer(TransferDir::H2D, 4096);
        }
        assert_eq!(
            ex.timeline().busy_time(dgnn_device::Place::Gpu),
            DurationNs::ZERO
        );
        assert_eq!(ex.gpu_memory().peak_bytes(), 0);
    }
}
