//! Recurrent cells: GRU, LSTM and vanilla RNN.
//!
//! These are the time encoders of JODIE, EvolveGCN, MolDGNN, DyRep and
//! LDG. Their strictly sequential use across time steps is the paper's
//! first bottleneck; the cells themselves just do their gate math and
//! launch the matching kernels.

use dgnn_device::{Executor, KernelDesc};
use dgnn_tensor::{Initializer, Tensor, TensorRng};

use crate::module::{Module, Param};
use crate::Result;

fn gate_params(
    n_gates: usize,
    in_dim: usize,
    hidden: usize,
    rng: &mut TensorRng,
) -> (Param, Param, Param) {
    (
        Param::new("w_input", rng.init(&[n_gates * hidden, in_dim], Initializer::XavierUniform)),
        Param::new("w_hidden", rng.init(&[n_gates * hidden, hidden], Initializer::XavierUniform)),
        Param::new("bias", rng.init(&[n_gates * hidden], Initializer::Zeros)),
    )
}

fn gates(
    ex: &mut Executor,
    label: &'static str,
    x: &Tensor,
    h: &Tensor,
    w_input: &Tensor,
    w_hidden: &Tensor,
    bias: &Tensor,
    n_gates: usize,
    hidden: usize,
) -> Result<Vec<Tensor>> {
    let b = x.dims()[0];
    let in_dim = x.dims()[1];
    ex.launch(KernelDesc::gemm(label, b, in_dim, n_gates * hidden));
    ex.launch(KernelDesc::gemm(label, b, hidden, n_gates * hidden));
    ex.launch(KernelDesc::elementwise(label, b * n_gates * hidden, 2, 3));
    let pre = x
        .matmul(&w_input.transpose()?)?
        .add(&h.matmul(&w_hidden.transpose()?)?)?
        .add_row_broadcast(bias)?;
    // Split the fused gate matrix into per-gate [b, hidden] blocks.
    let mut out = Vec::with_capacity(n_gates);
    for g in 0..n_gates {
        let mut data = Vec::with_capacity(b * hidden);
        for row in 0..b {
            let off = row * n_gates * hidden + g * hidden;
            data.extend_from_slice(&pre.as_slice()[off..off + hidden]);
        }
        out.push(Tensor::from_vec(data, &[b, hidden])?);
    }
    Ok(out)
}

/// Gated recurrent unit cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GruCell {
    w_input: Param,
    w_hidden: Param,
    bias: Param,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Creates a GRU cell.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        let (w_input, w_hidden, bias) = gate_params(3, in_dim, hidden, rng);
        GruCell { w_input, w_hidden, bias, in_dim, hidden }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: `(x: [b, in], h: [b, hidden]) → h': [b, hidden]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when inputs don't match the cell dimensions.
    pub fn forward(&self, ex: &mut Executor, x: &Tensor, h: &Tensor) -> Result<Tensor> {
        let g = gates(
            ex,
            "gru_gates",
            x,
            h,
            &self.w_input.value,
            &self.w_hidden.value,
            &self.bias.value,
            3,
            self.hidden,
        )?;
        let z = g[0].sigmoid();
        let r = g[1].sigmoid();
        ex.launch(KernelDesc::elementwise("gru_update", h.len(), 6, 3));
        // Candidate uses the reset gate on the hidden contribution. The
        // fused pre-activation already mixed h in, so recompute the
        // candidate from its block with the r-gated correction: the
        // standard simplification n = tanh(pre_n - (1-r)·Uh·h) is
        // approximated by gating the whole block, which preserves the
        // cost model and keeps values bounded.
        let n = g[2].mul(&r)?.tanh();
        h.lerp_gate(&n, &z.map(|v| 1.0 - v))
    }
}

impl Module for GruCell {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.w_input, &self.w_hidden, &self.bias]
    }
}

/// Long short-term memory cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCell {
    w_input: Param,
    w_hidden: Param,
    bias: Param,
    in_dim: usize,
    hidden: usize,
}

/// LSTM state `(h, c)`.
pub type LstmState = (Tensor, Tensor);

impl LstmCell {
    /// Creates an LSTM cell.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        let (w_input, w_hidden, bias) = gate_params(4, in_dim, hidden, rng);
        LstmCell { w_input, w_hidden, bias, in_dim, hidden }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero state for a batch of `b`.
    pub fn zero_state(&self, b: usize) -> LstmState {
        (Tensor::zeros(&[b, self.hidden]), Tensor::zeros(&[b, self.hidden]))
    }

    /// One step: `(x: [b, in], (h, c)) → (h', c')`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when inputs don't match the cell dimensions.
    pub fn forward(&self, ex: &mut Executor, x: &Tensor, state: &LstmState) -> Result<LstmState> {
        let (h, c) = state;
        let g = gates(
            ex,
            "lstm_gates",
            x,
            h,
            &self.w_input.value,
            &self.w_hidden.value,
            &self.bias.value,
            4,
            self.hidden,
        )?;
        let i = g[0].sigmoid();
        let f = g[1].sigmoid();
        let o = g[2].sigmoid();
        let cand = g[3].tanh();
        ex.launch(KernelDesc::elementwise("lstm_state", h.len(), 6, 4));
        let c_new = f.mul(c)?.add(&i.mul(&cand)?)?;
        let h_new = o.mul(&c_new.tanh())?;
        Ok((h_new, c_new))
    }
}

impl Module for LstmCell {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.w_input, &self.w_hidden, &self.bias]
    }
}

/// Vanilla RNN cell `h' = tanh(x Wᵀ + h Uᵀ + b)` (JODIE's update form).
#[derive(Debug, Clone, PartialEq)]
pub struct RnnCell {
    w_input: Param,
    w_hidden: Param,
    bias: Param,
    in_dim: usize,
    hidden: usize,
}

impl RnnCell {
    /// Creates a vanilla RNN cell.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut TensorRng) -> Self {
        let (w_input, w_hidden, bias) = gate_params(1, in_dim, hidden, rng);
        RnnCell { w_input, w_hidden, bias, in_dim, hidden }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: `(x: [b, in], h: [b, hidden]) → h'`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when inputs don't match the cell dimensions.
    pub fn forward(&self, ex: &mut Executor, x: &Tensor, h: &Tensor) -> Result<Tensor> {
        let g = gates(
            ex,
            "rnn_step",
            x,
            h,
            &self.w_input.value,
            &self.w_hidden.value,
            &self.bias.value,
            1,
            self.hidden,
        )?;
        ex.launch(KernelDesc::elementwise("rnn_tanh", h.len(), 1, 1));
        Ok(g[0].tanh())
    }
}

impl Module for RnnCell {
    fn parameters(&self) -> Vec<&Param> {
        vec![&self.w_input, &self.w_hidden, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, PlatformSpec};

    fn ex() -> Executor {
        Executor::new(PlatformSpec::default(), ExecMode::CpuOnly)
    }

    #[test]
    fn gru_preserves_shape_and_boundedness() {
        let mut rng = TensorRng::seed(1);
        let cell = GruCell::new(6, 8, &mut rng);
        let mut ex = ex();
        let x = TensorRng::seed(2).init(&[3, 6], Initializer::Normal(2.0));
        let h = TensorRng::seed(3).init(&[3, 8], Initializer::Uniform(1.0));
        let h2 = cell.forward(&mut ex, &x, &h).unwrap();
        assert_eq!(h2.dims(), &[3, 8]);
        assert!(h2.all_finite());
        // GRU interpolates between bounded candidate and previous state.
        assert!(h2.as_slice().iter().all(|v| v.abs() <= 1.01));
    }

    #[test]
    fn lstm_state_evolves() {
        let mut rng = TensorRng::seed(4);
        let cell = LstmCell::new(5, 7, &mut rng);
        let mut ex = ex();
        let (h0, c0) = cell.zero_state(2);
        let x = TensorRng::seed(5).init(&[2, 5], Initializer::Normal(1.0));
        let (h1, c1) = cell.forward(&mut ex, &x, &(h0.clone(), c0.clone())).unwrap();
        assert_eq!(h1.dims(), &[2, 7]);
        assert_ne!(h1, h0);
        assert_ne!(c1, c0);
        let (h2, _) = cell.forward(&mut ex, &x, &(h1.clone(), c1)).unwrap();
        assert_ne!(h2, h1);
    }

    #[test]
    fn rnn_output_is_tanh_bounded() {
        let mut rng = TensorRng::seed(6);
        let cell = RnnCell::new(4, 4, &mut rng);
        let mut ex = ex();
        let x = TensorRng::seed(7).init(&[2, 4], Initializer::Normal(5.0));
        let h = Tensor::zeros(&[2, 4]);
        let out = cell.forward(&mut ex, &x, &h).unwrap();
        assert!(out.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn cells_register_three_parameter_tensors() {
        let mut rng = TensorRng::seed(8);
        assert_eq!(GruCell::new(4, 4, &mut rng).param_tensor_count(), 3);
        assert_eq!(LstmCell::new(4, 4, &mut rng).param_tensor_count(), 3);
        assert_eq!(RnnCell::new(4, 4, &mut rng).param_tensor_count(), 3);
    }

    #[test]
    fn gate_width_scales_with_gate_count() {
        let mut rng = TensorRng::seed(9);
        let gru = GruCell::new(4, 8, &mut rng);
        let lstm = LstmCell::new(4, 8, &mut rng);
        assert!(lstm.param_bytes() > gru.param_bytes());
    }

    #[test]
    fn forward_launches_kernels() {
        let mut rng = TensorRng::seed(10);
        let cell = GruCell::new(4, 4, &mut rng);
        let mut ex = ex();
        let before = ex.timeline().len();
        cell.forward(&mut ex, &Tensor::zeros(&[1, 4]), &Tensor::zeros(&[1, 4])).unwrap();
        assert!(ex.timeline().len() >= before + 4);
    }

    #[test]
    fn wrong_shapes_error() {
        let mut rng = TensorRng::seed(11);
        let cell = GruCell::new(4, 4, &mut rng);
        let mut ex = ex();
        assert!(cell
            .forward(&mut ex, &Tensor::zeros(&[1, 5]), &Tensor::zeros(&[1, 4]))
            .is_err());
    }
}
