//! The simulated Nsight trace: an ordered list of timeline events with
//! query helpers.

use crate::event::{EventCategory, Place, TimelineEvent};
use crate::kernel::KernelKind;
use crate::time::DurationNs;

/// An append-only record of everything the [`crate::Executor`] did.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when the event's end precedes its start.
    pub fn push(&mut self, event: TimelineEvent) {
        debug_assert!(event.end >= event.start, "event ends before it starts");
        self.events.push(event);
    }

    /// All events, in emission order (which is also start-time order for
    /// the sequential executor).
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// End time of the last-ending event (simulation makespan).
    pub fn span_end(&self) -> DurationNs {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(DurationNs::ZERO)
    }

    /// Total busy time at a place (sum of event durations there).
    pub fn busy_time(&self, place: Place) -> DurationNs {
        self.events
            .iter()
            .filter(|e| e.place == place)
            .map(|e| e.duration())
            .sum()
    }

    /// Total time in a category.
    pub fn category_time(&self, pred: impl Fn(EventCategory) -> bool) -> DurationNs {
        self.events
            .iter()
            .filter(|e| pred(e.category))
            .map(|e| e.duration())
            .sum()
    }

    /// Total bytes transferred over PCIe in the given direction (or both
    /// when `dir` is `None`).
    pub fn transfer_bytes(&self, dir: Option<crate::event::TransferDir>) -> u64 {
        self.events
            .iter()
            .filter(|e| match (e.category, dir) {
                (EventCategory::Transfer(d), Some(want)) => d == want,
                (EventCategory::Transfer(_), None) => true,
                _ => false,
            })
            .map(|e| e.bytes)
            .sum()
    }

    /// Number of priced PCIe transfer events in the given direction (or
    /// both when `dir` is `None`). Together with
    /// [`Timeline::transfer_bytes`] this is the coalescing metric: merging
    /// transfers reduces the count while conserving the bytes.
    pub fn transfer_count(&self, dir: Option<crate::event::TransferDir>) -> usize {
        self.events
            .iter()
            .filter(|e| match (e.category, dir) {
                (EventCategory::Transfer(d), Some(want)) => d == want,
                (EventCategory::Transfer(_), None) => true,
                _ => false,
            })
            .count()
    }

    /// Occupancy-weighted GPU utilization over `[win_start, win_end)`:
    /// `Σ(kernel overlap × occupancy) / window`. This approximates what
    /// `nvidia-smi` reports for the window.
    ///
    /// Returns 0 for an empty window.
    pub fn gpu_utilization(&self, win_start: DurationNs, win_end: DurationNs) -> f64 {
        let window = win_end.saturating_sub(win_start).as_nanos();
        if window == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .events
            .iter()
            .filter(|e| e.category.is_gpu_compute())
            .map(|e| e.overlap(win_start, win_end).as_nanos() as f64 * e.occupancy)
            .sum();
        weighted / window as f64
    }

    /// Kernel-resident fraction of `[win_start, win_end)` on device 0:
    /// the share of the window during which *some* kernel was executing,
    /// ignoring occupancy. This is what `nvidia-smi`'s "GPU utilization"
    /// reports and what the paper's utilization numbers mean. On the
    /// historical single-GPU platform every kernel lives on device 0, so
    /// this is unchanged; see [`Timeline::device_busy_fraction`] for
    /// other devices and [`Timeline::platform_busy_fraction`] for the
    /// aggregate.
    ///
    /// Computed as the interval-union of kernel events clipped to the
    /// window, so kernels that overlap in time (stream forks) are counted
    /// once — summing per-event overlaps would double-count them and
    /// report fractions above 1.
    pub fn gpu_busy_fraction(&self, win_start: DurationNs, win_end: DurationNs) -> f64 {
        self.device_busy_fraction(0, win_start, win_end)
    }

    /// Kernel-resident fraction of `[win_start, win_end)` on one device
    /// (interval union of its kernel events clipped to the window).
    pub fn device_busy_fraction(
        &self,
        device: usize,
        win_start: DurationNs,
        win_end: DurationNs,
    ) -> f64 {
        let window = win_end.saturating_sub(win_start).as_nanos();
        if window == 0 {
            return 0.0;
        }
        let mut intervals: Vec<(u64, u64)> = self
            .events
            .iter()
            .filter(|e| e.category.is_gpu_compute() && e.device == device)
            .filter_map(|e| {
                let s = e.start.max(win_start).as_nanos();
                let t = e.end.min(win_end).as_nanos();
                (t > s).then_some((s, t))
            })
            .collect();
        intervals.sort_unstable();
        let mut busy = 0u64;
        let mut current: Option<(u64, u64)> = None;
        for (s, t) in intervals {
            match current {
                Some((cs, ct)) if s <= ct => current = Some((cs, ct.max(t))),
                Some((cs, ct)) => {
                    busy += ct - cs;
                    current = Some((s, t));
                }
                None => current = Some((s, t)),
            }
        }
        if let Some((cs, ct)) = current {
            busy += ct - cs;
        }
        busy as f64 / window as f64
    }

    /// Number of GPUs the timeline has events for: one more than the
    /// highest device index among GPU-compute events (1 for an empty or
    /// host-only timeline — the platform always has device 0).
    pub fn n_devices(&self) -> usize {
        1 + self
            .events
            .iter()
            .filter(|e| e.category.is_gpu_compute() || e.category == EventCategory::PeerTransfer)
            .map(|e| e.device)
            .max()
            .unwrap_or(0)
    }

    /// Mean of the per-device kernel-resident fractions over
    /// `[win_start, win_end)`, across every device the timeline has
    /// events for — the platform-wide utilization a fleet scheduler
    /// would report. Equal to [`Timeline::gpu_busy_fraction`] on a
    /// single-device timeline.
    pub fn platform_busy_fraction(&self, win_start: DurationNs, win_end: DurationNs) -> f64 {
        let n = self.n_devices();
        (0..n)
            .map(|d| self.device_busy_fraction(d, win_start, win_end))
            .sum::<f64>()
            / n as f64
    }

    /// Total bytes moved by cross-device peer transfers (direct and
    /// host-staged). Zero on single-device timelines.
    pub fn peer_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.category == EventCategory::PeerTransfer)
            .map(|e| e.bytes)
            .sum()
    }

    /// GPU utilization sampled over fixed-width windows spanning the whole
    /// timeline — the Figure 9 time-series.
    pub fn gpu_utilization_series(&self, window: DurationNs) -> Vec<(DurationNs, f64)> {
        assert!(window.as_nanos() > 0, "window must be positive");
        let end = self.span_end();
        let mut out = Vec::new();
        let mut t = DurationNs::ZERO;
        while t < end {
            let next = (t + window).min(end);
            out.push((t, self.gpu_utilization(t, next)));
            t += window;
        }
        out
    }

    /// Per-kernel-family histogram: (kind, count, total time).
    pub fn kernel_histogram(&self) -> Vec<(KernelKind, usize, DurationNs)> {
        let kinds = [
            KernelKind::Gemm,
            KernelKind::Elementwise,
            KernelKind::Reduce,
            KernelKind::Gather,
            KernelKind::Sort,
        ];
        kinds
            .iter()
            .filter_map(|&kind| {
                let mut count = 0usize;
                let mut total = DurationNs::ZERO;
                for e in &self.events {
                    if e.category == EventCategory::Kernel(kind) {
                        count += 1;
                        total += e.duration();
                    }
                }
                (count > 0).then_some((kind, count, total))
            })
            .collect()
    }

    /// Events whose scope path starts with `prefix`.
    pub fn events_in_scope<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a TimelineEvent> {
        self.events
            .iter()
            .filter(move |e| e.scope.starts_with(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TransferDir;

    fn kernel(start: u64, end: u64, occ: f64) -> TimelineEvent {
        kernel_on(0, start, end, occ)
    }

    fn kernel_on(device: usize, start: u64, end: u64, occ: f64) -> TimelineEvent {
        TimelineEvent {
            label: "k",
            scope: "run/attn".to_string(),
            category: EventCategory::Kernel(KernelKind::Gemm),
            place: Place::Gpu,
            start: DurationNs::from_nanos(start),
            end: DurationNs::from_nanos(end),
            occupancy: occ,
            flops: 100,
            bytes: 10,
            stream: None,
            device,
        }
    }

    fn transfer(start: u64, end: u64, bytes: u64, dir: TransferDir) -> TimelineEvent {
        TimelineEvent {
            label: dir.name(),
            scope: "run".to_string(),
            category: EventCategory::Transfer(dir),
            place: Place::Pcie,
            start: DurationNs::from_nanos(start),
            end: DurationNs::from_nanos(end),
            occupancy: 1.0,
            flops: 0,
            bytes,
            stream: None,
            device: 0,
        }
    }

    #[test]
    fn busy_time_sums_by_place() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 10, 1.0));
        tl.push(kernel(20, 35, 1.0));
        tl.push(transfer(10, 20, 64, TransferDir::H2D));
        assert_eq!(tl.busy_time(Place::Gpu).as_nanos(), 25);
        assert_eq!(tl.busy_time(Place::Pcie).as_nanos(), 10);
        assert_eq!(tl.span_end().as_nanos(), 35);
    }

    #[test]
    fn utilization_weights_by_occupancy() {
        let mut tl = Timeline::new();
        // Kernel busy half the window at 50% occupancy → 25% utilization.
        tl.push(kernel(0, 50, 0.5));
        let u = tl.gpu_utilization(DurationNs::ZERO, DurationNs::from_nanos(100));
        assert!((u - 0.25).abs() < 1e-9);
    }

    #[test]
    fn utilization_ignores_transfers() {
        let mut tl = Timeline::new();
        tl.push(transfer(0, 100, 1000, TransferDir::H2D));
        assert_eq!(
            tl.gpu_utilization(DurationNs::ZERO, DurationNs::from_nanos(100)),
            0.0
        );
    }

    #[test]
    fn utilization_series_covers_span() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 10, 1.0));
        tl.push(kernel(90, 100, 1.0));
        let series = tl.gpu_utilization_series(DurationNs::from_nanos(50));
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 0.2).abs() < 1e-9);
        assert!((series[1].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn transfer_bytes_filters_direction() {
        let mut tl = Timeline::new();
        tl.push(transfer(0, 10, 100, TransferDir::H2D));
        tl.push(transfer(10, 20, 40, TransferDir::D2H));
        assert_eq!(tl.transfer_bytes(Some(TransferDir::H2D)), 100);
        assert_eq!(tl.transfer_bytes(Some(TransferDir::D2H)), 40);
        assert_eq!(tl.transfer_bytes(None), 140);
        assert_eq!(tl.transfer_count(Some(TransferDir::H2D)), 1);
        assert_eq!(tl.transfer_count(Some(TransferDir::D2H)), 1);
        assert_eq!(tl.transfer_count(None), 2);
    }

    #[test]
    fn busy_fraction_counts_overlapping_kernels_once() {
        let mut tl = Timeline::new();
        // Two kernels overlapping on [20, 40): union is [0, 40) ∪ [50, 60).
        tl.push(kernel(0, 40, 1.0));
        tl.push(kernel(20, 60, 1.0));
        tl.push(kernel(50, 60, 1.0));
        let f = tl.gpu_busy_fraction(DurationNs::ZERO, DurationNs::from_nanos(100));
        assert!(
            (f - 0.6).abs() < 1e-9,
            "union of [0,40)+[20,60)+[50,60) over 100ns is 0.6, got {f}"
        );
        // A naive per-event sum would claim (40 + 40 + 10) / 100 = 0.9.
    }

    #[test]
    fn busy_fraction_never_exceeds_one() {
        let mut tl = Timeline::new();
        for _ in 0..4 {
            tl.push(kernel(0, 100, 1.0));
        }
        let f = tl.gpu_busy_fraction(DurationNs::ZERO, DurationNs::from_nanos(100));
        assert!((f - 1.0).abs() < 1e-9, "four coincident kernels: {f}");
    }

    #[test]
    fn busy_fraction_serial_matches_event_sum() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 10, 1.0));
        tl.push(kernel(30, 45, 1.0));
        let f = tl.gpu_busy_fraction(DurationNs::ZERO, DurationNs::from_nanos(100));
        assert!((f - 0.25).abs() < 1e-9);
        // Clipping to a window that cuts both events.
        let clipped = tl.gpu_busy_fraction(DurationNs::from_nanos(5), DurationNs::from_nanos(35));
        assert!((clipped - 10.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn busy_fractions_separate_devices_on_a_two_device_timeline() {
        let mut tl = Timeline::new();
        // Device 0 busy [0, 60); device 1 busy [0, 20) — overlapping in
        // wall time because the devices run concurrently.
        tl.push(kernel_on(0, 0, 40, 1.0));
        tl.push(kernel_on(0, 30, 60, 1.0));
        tl.push(kernel_on(1, 0, 20, 1.0));
        let w0 = DurationNs::ZERO;
        let w1 = DurationNs::from_nanos(100);
        assert_eq!(tl.n_devices(), 2);
        // gpu_busy_fraction is device 0 only: concurrent device-1 work
        // must not inflate it past the single-lane union.
        assert!((tl.gpu_busy_fraction(w0, w1) - 0.6).abs() < 1e-9);
        assert!((tl.device_busy_fraction(0, w0, w1) - 0.6).abs() < 1e-9);
        assert!((tl.device_busy_fraction(1, w0, w1) - 0.2).abs() < 1e-9);
        // Aggregate = mean over devices present.
        assert!((tl.platform_busy_fraction(w0, w1) - 0.4).abs() < 1e-9);
        // Devices beyond the timeline report idle.
        assert_eq!(tl.device_busy_fraction(7, w0, w1), 0.0);
    }

    #[test]
    fn platform_busy_fraction_matches_gpu_on_single_device() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 40, 1.0));
        tl.push(kernel(30, 60, 1.0));
        let w0 = DurationNs::ZERO;
        let w1 = DurationNs::from_nanos(100);
        assert_eq!(tl.n_devices(), 1);
        assert_eq!(
            tl.platform_busy_fraction(w0, w1),
            tl.gpu_busy_fraction(w0, w1)
        );
    }

    #[test]
    fn peer_bytes_counts_only_peer_transfers() {
        let mut tl = Timeline::new();
        tl.push(transfer(0, 10, 100, TransferDir::H2D));
        let mut peer = kernel_on(1, 10, 20, 1.0);
        peer.category = EventCategory::PeerTransfer;
        peer.place = Place::Pcie;
        peer.bytes = 64;
        tl.push(peer);
        assert_eq!(tl.peer_bytes(), 64);
        // Peer traffic is not PCIe host traffic…
        assert_eq!(tl.transfer_bytes(None), 100);
        assert_eq!(tl.transfer_count(None), 1);
        // …but its device index counts toward the device census.
        assert_eq!(tl.n_devices(), 2);
    }

    #[test]
    fn kernel_histogram_groups() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 10, 1.0));
        tl.push(kernel(10, 30, 1.0));
        let h = tl.kernel_histogram();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].0, KernelKind::Gemm);
        assert_eq!(h[0].1, 2);
        assert_eq!(h[0].2.as_nanos(), 30);
    }

    #[test]
    fn scope_filter_matches_prefix() {
        let mut tl = Timeline::new();
        tl.push(kernel(0, 10, 1.0));
        tl.push(transfer(10, 20, 8, TransferDir::H2D));
        assert_eq!(tl.events_in_scope("run/attn").count(), 1);
        assert_eq!(tl.events_in_scope("run").count(), 2);
    }
}
