//! Parameter registration shared by all layers.

use dgnn_tensor::Tensor;

/// One named parameter tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (unique within its module).
    pub name: String,
    /// Parameter value.
    pub value: Tensor,
}

impl Param {
    /// Creates a named parameter.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param {
            name: name.into(),
            value,
        }
    }
}

/// A neural module exposing its parameters.
///
/// The suite uses the registry for the warm-up model: GPU model
/// initialization cost scales with [`Module::param_bytes`] and
/// [`Module::param_tensor_count`].
pub trait Module {
    /// All parameters of this module (including nested submodules).
    fn parameters(&self) -> Vec<&Param>;

    /// Total parameter payload in bytes.
    fn param_bytes(&self) -> u64 {
        self.parameters().iter().map(|p| p.value.byte_len()).sum()
    }

    /// Number of parameter tensors.
    fn param_tensor_count(&self) -> u64 {
        self.parameters().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Module for Toy {
        fn parameters(&self) -> Vec<&Param> {
            vec![&self.a, &self.b]
        }
    }

    #[test]
    fn bytes_and_counts_aggregate() {
        let t = Toy {
            a: Param::new("a", Tensor::zeros(&[4, 4])),
            b: Param::new("b", Tensor::zeros(&[4])),
        };
        assert_eq!(t.param_bytes(), (16 + 4) * 4);
        assert_eq!(t.param_tensor_count(), 2);
    }
}
