//! LINT4 adversarial fixture (3/4): `dead_knob` is never exercised by
//! any bench bin or ablation.

pub struct InferenceConfig {
    pub batch_size: usize,
    pub dead_knob: bool,
}
