//! LDG (Knyazev et al., 2021) — Latent Dynamic Graph: DyRep's temporal
//! point process plus an NRI-style encoder that infers latent edges and
//! a bilinear decoder (Fig 4b).
//!
//! The per-event update/intensity alternation is inherited from DyRep,
//! so LDG shares its serialization bottleneck: GPU inference does not
//! outperform the CPU and utilization stays under 2% for both the MLP
//! and the bilinear encoder variants.

use dgnn_datasets::TemporalDataset;
use dgnn_device::{DeviceTensor, Dispatcher, Executor, HostWork};
use dgnn_nn::{EmbeddingTable, Linear, Mlp, Module, RnnCell};
use dgnn_tensor::{Tensor, TensorRng};

use crate::common::{DgnnModel, InferenceConfig, RunSummary};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per event in the interpreted event loop (as DyRep, plus
/// latent-graph bookkeeping).
const EVENT_LOOP_OPS: u64 = 500_000;

/// Which NRI encoder LDG uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LdgEncoder {
    /// Two-layer MLP over node-pair embeddings.
    Mlp,
    /// Bilinear form over node-pair embeddings.
    Bilinear,
}

/// LDG hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdgConfig {
    /// Node-embedding dimension.
    pub dim: usize,
    /// Encoder variant.
    pub encoder: LdgEncoder,
}

impl Default for LdgConfig {
    fn default() -> Self {
        LdgConfig {
            dim: 32,
            encoder: LdgEncoder::Bilinear,
        }
    }
}

/// The LDG model bound to a dataset.
#[derive(Debug)]
pub struct Ldg {
    data: TemporalDataset,
    cfg: LdgConfig,
    embeddings: EmbeddingTable,
    update_rnn: RnnCell,
    encoder_mlp: Mlp,
    encoder_bilinear: Linear,
    decoder: Linear,
}

impl Ldg {
    /// Builds LDG over an event dataset.
    pub fn new(data: TemporalDataset, cfg: LdgConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let d = cfg.dim;
        Ldg {
            embeddings: EmbeddingTable::new(data.stream.n_nodes(), d, &mut rng),
            update_rnn: RnnCell::new(3 * d, d, &mut rng),
            encoder_mlp: Mlp::new(&[2 * d, 2 * d, d], &mut rng),
            encoder_bilinear: Linear::new(2 * d, d, &mut rng),
            decoder: Linear::new(2 * d, 1, &mut rng),
            data,
            cfg,
        }
    }

    /// The configured encoder variant.
    pub fn encoder(&self) -> LdgEncoder {
        self.cfg.encoder
    }

    fn modules(&self) -> Vec<&dyn Module> {
        vec![
            &self.embeddings,
            &self.update_rnn,
            &self.encoder_mlp,
            &self.encoder_bilinear,
            &self.decoder,
        ]
    }
}

impl DgnnModel for Ldg {
    fn name(&self) -> &'static str {
        match self.cfg.encoder {
            LdgEncoder::Mlp => "ldg_mlp",
            LdgEncoder::Bilinear => "ldg_bilinear",
        }
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "ldg")
            .expect("ldg registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        (cfg.batch_size * self.cfg.dim * 4 * 5) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let d = self.cfg.dim;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        let batches: Vec<Vec<dgnn_graph::TemporalEvent>> = self
            .data
            .stream
            .batches(cfg.batch_size)
            .take(cfg.max_units.max(1))
            .map(|b| b.to_vec())
            .collect();

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::new(ex);
            for batch in &batches {
                let payload = DeviceTensor::host_scaled(
                    Tensor::zeros(&[1, self.data.edge_dim() + 4]),
                    batch.len() as f64,
                );
                dx.scope("memcpy_h2d", |dx| dx.ensure_resident(&payload));

                for e in batch.iter() {
                    dx.scope("event_loop", |dx| {
                        dx.host(HostWork {
                            label: "event_bookkeeping",
                            ops: EVENT_LOOP_OPS,
                            seq_bytes: 512,
                            irregular_bytes: (5 * d * 4) as u64,
                            parallelism: 1,
                        });
                    });

                    // NRI encoder over the event's node pair.
                    let pair_emb = dx.scope("encoder", |dx| -> Result<DeviceTensor> {
                        let emb = self.embeddings.lookup(dx, &[e.src, e.dst])?;
                        let x = dx.adopt(emb.data().reshape(&[1, 2 * d])?, 1.0);
                        match self.cfg.encoder {
                            LdgEncoder::Mlp => self.encoder_mlp.forward(dx, &x).map_err(Into::into),
                            LdgEncoder::Bilinear => {
                                self.encoder_bilinear.forward(dx, &x).map_err(Into::into)
                            }
                        }
                    })?;

                    // DyRep-style embedding update driven by the latent
                    // edge representation.
                    dx.scope("embedding_update", |dx| -> Result<()> {
                        let pair = [e.src, e.dst];
                        let emb = self.embeddings.lookup(dx, &pair)?;
                        let drive = pair_emb.data().concat_rows(pair_emb.data())?;
                        let x = dx.adopt(
                            emb.data().concat_cols(emb.data())?.concat_cols(&drive)?,
                            1.0,
                        );
                        let new = self.update_rnn.forward(dx, &x, &emb)?;
                        self.embeddings.update(dx, &pair, &new)?;
                        Ok(())
                    })?;

                    // Bilinear decoder scores the interaction.
                    dx.scope("decoder", |dx| -> Result<()> {
                        let emb = self.embeddings.lookup(dx, &[e.src, e.dst])?;
                        let x = dx.adopt(emb.data().reshape(&[1, 2 * d])?, 1.0);
                        let score = self.decoder.forward(dx, &x)?;
                        let prob = dx.activation("sigmoid", &score, Tensor::sigmoid);
                        checksum += prob.data().sum();
                        Ok(())
                    })?;
                }

                let readback = dx.adopt(Tensor::zeros(&[1, d]), batch.len() as f64);
                dx.scope("memcpy_d2h", |dx| dx.download(&readback));
                iterations += 1;
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{github, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build(encoder: LdgEncoder) -> Ldg {
        Ldg::new(github(Scale::Tiny, 1), LdgConfig { dim: 32, encoder }, 7)
    }

    fn cfg(bs: usize) -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(bs)
            .with_max_units(2)
    }

    #[test]
    fn both_encoders_run() {
        for enc in [LdgEncoder::Mlp, LdgEncoder::Bilinear] {
            let mut m = build(enc);
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(48)).unwrap();
            assert_eq!(s.iterations, 2);
            assert!(s.checksum.is_finite());
        }
    }

    #[test]
    fn mlp_encoder_costs_more_than_bilinear() {
        let time = |enc| {
            let mut m = build(enc);
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg(48)).unwrap().inference_time
        };
        assert!(time(LdgEncoder::Mlp) > time(LdgEncoder::Bilinear));
    }

    #[test]
    fn gpu_never_beats_cpu() {
        let time = |mode| {
            let mut m = build(LdgEncoder::Bilinear);
            let mut ex = Executor::new(PlatformSpec::default(), mode);
            m.run(&mut ex, &cfg(48)).unwrap().inference_time
        };
        assert!(time(ExecMode::Gpu) >= time(ExecMode::CpuOnly));
    }

    #[test]
    fn utilization_under_two_percent_scale() {
        let mut m = build(LdgEncoder::Mlp);
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(48)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        assert!(
            p.utilization.busy_fraction < 0.05,
            "LDG util {}",
            p.utilization.busy_fraction
        );
    }

    #[test]
    fn names_distinguish_encoders() {
        assert_eq!(build(LdgEncoder::Mlp).name(), "ldg_mlp");
        assert_eq!(build(LdgEncoder::Bilinear).name(), "ldg_bilinear");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build(LdgEncoder::Bilinear);
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(32)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }
}
