//! Domain scenario: traffic forecasting with ASTGNN on a PeMS-style
//! sensor network.
//!
//! Demonstrates the batch-size trade-off of Figure 9: small batches
//! leave the GPU idle around the prediction step; large batches saturate
//! it but delay the decoder. Prints the utilization time-series per
//! batch size plus a CPU-vs-GPU comparison.
//!
//! Run with: `cargo run --example traffic_astgnn`

use dgnn_suite::datasets::{pems, Scale};
use dgnn_suite::device::{DurationNs, ExecMode, Executor, PlatformSpec};
use dgnn_suite::models::{Astgnn, AstgnnConfig, DgnnModel, InferenceConfig};
use dgnn_suite::profile::UtilizationReport;

fn main() {
    let data = pems(Scale::Tiny, 3);
    println!(
        "sensor network: {} sensors, {} edges, {} five-minute slots",
        data.n_sensors(),
        data.sensor_graph.n_edges(),
        data.n_steps()
    );

    for bs in [4usize, 8, 16] {
        let cfg = InferenceConfig::default()
            .with_batch_size(bs)
            .with_max_units(2);

        // GPU run with a utilization timeline.
        let mut model = Astgnn::new(data.clone(), AstgnnConfig::default(), 3);
        let mut gpu = Executor::new(PlatformSpec::paper_testbed(), ExecMode::Gpu);
        let summary = model.run(&mut gpu, &cfg).expect("gpu inference");
        let inference = gpu
            .scopes()
            .iter()
            .find(|s| s.path == "inference")
            .expect("inference scope")
            .clone();
        let window =
            DurationNs::from_nanos(((inference.end - inference.start).as_nanos() / 24).max(1));
        let series: Vec<_> =
            UtilizationReport::series(gpu.timeline(), inference.start, inference.end, window)
                .into_iter()
                .map(|(t, u)| (t - inference.start, u))
                .collect();

        // CPU comparison.
        let mut model = Astgnn::new(data.clone(), AstgnnConfig::default(), 3);
        let mut cpu = Executor::new(PlatformSpec::paper_testbed(), ExecMode::CpuOnly);
        let cpu_summary = model.run(&mut cpu, &cfg).expect("cpu inference");

        println!(
            "\nbatch {bs}: gpu {} vs cpu {} ({:.2}x speedup)",
            summary.inference_time,
            cpu_summary.inference_time,
            cpu_summary.inference_time.as_nanos() as f64
                / summary.inference_time.as_nanos().max(1) as f64,
        );
        print!(
            "{}",
            UtilizationReport::render_series(&series, &format!("GPU utilization, batch {bs}"))
        );
    }
}
