//! Device memory accounting (live and peak bytes).

/// Tracks simulated memory consumption on one device.
///
/// The paper's Figure 6 plots GPU memory usage against batch size and
/// neighbor count; this tracker supplies those numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryTracker {
    live: u64,
    peak: u64,
    alloc_count: u64,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MemoryTracker::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: u64) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
        self.alloc_count += 1;
    }

    /// Records a free of `bytes`, saturating at zero (frees of untracked
    /// memory are clamped rather than underflowing, mirroring how caching
    /// allocators blur exact lifetimes).
    pub fn free(&mut self, bytes: u64) {
        self.live = self.live.saturating_sub(bytes);
    }

    /// Currently live bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// High-water mark in bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Number of allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Peak memory in MiB (convenience for reports).
    pub fn peak_mib(&self) -> f64 {
        self.peak as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new();
        m.alloc(100);
        m.alloc(50);
        m.free(120);
        m.alloc(10);
        assert_eq!(m.live_bytes(), 40);
        assert_eq!(m.peak_bytes(), 150);
        assert_eq!(m.alloc_count(), 3);
    }

    #[test]
    fn free_saturates() {
        let mut m = MemoryTracker::new();
        m.alloc(10);
        m.free(100);
        assert_eq!(m.live_bytes(), 0);
    }

    #[test]
    fn peak_mib_converts() {
        let mut m = MemoryTracker::new();
        m.alloc(2 * 1024 * 1024);
        assert!((m.peak_mib() - 2.0).abs() < 1e-9);
    }
}
