//! ASTGNN (Guo et al., TKDE'21) — attention-based spatio-temporal GNN
//! for traffic forecasting.
//!
//! Encoder–decoder over traffic signal windows: each encoder layer is a
//! temporal self-attention block plus a spatial dynamic-GCN block; each
//! decoder layer is two temporal attention blocks plus a GCN block. The
//! temporal attention dominates (>3× the spatial GCN, Fig 7c); small
//! batches leave the GPU idle between stages while large batches congest
//! PCIe and delay the decoder (Fig 9).

use dgnn_datasets::TimeSeriesDataset;
use dgnn_device::{DeviceTensor, Dispatcher, Executor, HostWork};
use dgnn_nn::{GcnLayer, LayerNorm, Linear, Module, MultiHeadAttention};
use dgnn_tensor::{OpDescriptor, Tensor, TensorRng};

use crate::common::{representative, DgnnModel, InferenceConfig, RunSummary};
use crate::registry::{all_model_infos, ModelInfo};
use crate::Result;

/// Framework ops per subgraph window for slicing/normalizing the signal.
const WINDOW_PREP_OPS: u64 = 2_000;

/// ASTGNN hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstgnnConfig {
    /// Model dimension.
    pub dim: usize,
    /// Input window length (5-minute slots).
    pub t_in: usize,
    /// Forecast horizon.
    pub t_out: usize,
    /// Encoder/decoder layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
}

impl Default for AstgnnConfig {
    fn default() -> Self {
        AstgnnConfig {
            dim: 64,
            t_in: 12,
            t_out: 12,
            layers: 2,
            heads: 4,
        }
    }
}

/// The ASTGNN model bound to a sensor dataset.
#[derive(Debug)]
pub struct Astgnn {
    data: TimeSeriesDataset,
    cfg: AstgnnConfig,
    input_proj: Linear,
    enc_attn: Vec<MultiHeadAttention>,
    enc_gcn: Vec<GcnLayer>,
    dec_attn: Vec<MultiHeadAttention>,
    dec_gcn: Vec<GcnLayer>,
    norm: LayerNorm,
    output_proj: Linear,
    adj: Tensor,
}

impl Astgnn {
    /// Builds ASTGNN over a traffic dataset.
    pub fn new(data: TimeSeriesDataset, cfg: AstgnnConfig, seed: u64) -> Self {
        let mut rng = TensorRng::seed(seed);
        let d = cfg.dim;
        let adj = Tensor::from_vec(
            data.sensor_graph.normalized_adjacency(),
            &[data.n_sensors(), data.n_sensors()],
        )
        .expect("square adjacency");
        Astgnn {
            input_proj: Linear::new(data.n_channels(), d, &mut rng),
            enc_attn: (0..cfg.layers)
                .map(|_| MultiHeadAttention::new(d, cfg.heads, &mut rng))
                .collect(),
            enc_gcn: (0..cfg.layers)
                .map(|_| GcnLayer::new(d, d, &mut rng))
                .collect(),
            dec_attn: (0..2 * cfg.layers)
                .map(|_| MultiHeadAttention::new(d, cfg.heads, &mut rng))
                .collect(),
            dec_gcn: (0..cfg.layers)
                .map(|_| GcnLayer::new(d, d, &mut rng))
                .collect(),
            norm: LayerNorm::new(d, &mut rng),
            output_proj: Linear::new(d, 1, &mut rng),
            adj,
            data,
            cfg,
        }
    }

    fn modules(&self) -> Vec<&dyn Module> {
        let mut m: Vec<&dyn Module> = vec![&self.input_proj, &self.norm, &self.output_proj];
        for a in self.enc_attn.iter().chain(&self.dec_attn) {
            m.push(a);
        }
        for g in self.enc_gcn.iter().chain(&self.dec_gcn) {
            m.push(g);
        }
        m
    }

    /// One temporal-attention block. The representative sequence holds
    /// `seq` physical rows standing in for all `batch × n_sensors`
    /// per-sensor windows; the attention layer both computes and prices
    /// the block at that scale. The reference implementation's
    /// permute/mask/dropout/residual copies have no functional
    /// counterpart and are charged directly.
    fn temporal_attention(
        &self,
        dx: &mut Dispatcher,
        attn: &MultiHeadAttention,
        batch: usize,
        seq: usize,
        rep_seq: &DeviceTensor,
    ) -> Result<DeviceTensor> {
        let n = self.data.n_sensors();
        let d = self.cfg.dim;
        let rows = batch * n * seq;
        let out = attn.forward(dx, rep_seq, rep_seq, rep_seq)?;
        dx.charge(
            OpDescriptor::elementwise("tattn_permute", rows * d, 1, 1),
            1.0,
        );
        dx.charge(
            OpDescriptor::elementwise("tattn_mask", batch * n * seq * seq, 1, 1),
            1.0,
        );
        dx.charge(
            OpDescriptor::elementwise("tattn_dropout", rows * d, 2, 1),
            1.0,
        );
        dx.charge(
            OpDescriptor::elementwise("tattn_residual", rows * d, 1, 2),
            1.0,
        );
        Ok(out)
    }

    /// One spatial-GCN block computed on a representative sensor subset.
    /// The adjacency's scale prices the transform and ReLU for all
    /// `batch × seq` windows at the full sensor count (the quadratic
    /// propagate is under-priced at rep size — conservative for the
    /// paper's "temporal attention dominates" claim).
    fn spatial_gcn(
        &self,
        dx: &mut Dispatcher,
        gcn: &GcnLayer,
        batch: usize,
        seq: usize,
        rep_x: &Tensor,
        rep_adj: &Tensor,
    ) -> Result<Tensor> {
        let n = self.data.n_sensors();
        let rep_n = rep_adj.dims()[0];
        let scale = (batch * seq) as f64 * n as f64 / rep_n as f64;
        let adj = dx.adopt(rep_adj.clone(), scale);
        let x = dx.adopt(rep_x.clone(), scale);
        let out = gcn.forward(dx, &adj, &x)?;
        Ok(out.data().clone())
    }
}

impl DgnnModel for Astgnn {
    fn name(&self) -> &'static str {
        "astgnn"
    }

    fn info(&self) -> ModelInfo {
        all_model_infos()
            .into_iter()
            .find(|i| i.name == "astgnn")
            .expect("astgnn registered")
    }

    fn param_bytes(&self) -> u64 {
        self.modules().iter().map(|m| m.param_bytes()).sum()
    }

    fn param_tensors(&self) -> u64 {
        self.modules().iter().map(|m| m.param_tensor_count()).sum()
    }

    fn activation_bytes(&self, cfg: &InferenceConfig) -> u64 {
        (cfg.batch_size
            * self.data.n_sensors()
            * (self.cfg.t_in + self.cfg.t_out)
            * self.cfg.dim
            * 4) as u64
    }

    fn infer(&mut self, ex: &mut Executor, cfg: &InferenceConfig) -> Result<RunSummary> {
        let b = cfg.batch_size.max(1);
        let n = self.data.n_sensors();
        let (t_in, t_out) = (self.cfg.t_in, self.cfg.t_out);
        let rep_n = representative(n);
        let window_scale = (b * n) as f64;
        let mut checksum = 0.0f32;
        let mut iterations = 0usize;

        // Representative inputs: one window, leading sensors.
        let rep_adj = {
            let mut sub = Vec::with_capacity(rep_n * rep_n);
            for i in 0..rep_n {
                for j in 0..rep_n {
                    sub.push(self.adj.at(&[i, j])?);
                }
            }
            Tensor::from_vec(sub, &[rep_n, rep_n])?
        };

        let run: Result<()> = ex.scope("inference", |ex| {
            let mut dx = Dispatcher::new(ex);
            for iter in 0..cfg.max_units.max(1) {
                dx.scope("iteration", |dx| -> Result<()> {
                    // Window assembly on the CPU, then H2D.
                    dx.scope("data_prep", |dx| {
                        dx.host(HostWork::sequential(
                            "slice_windows",
                            b as u64 * WINDOW_PREP_OPS,
                            (b * n * t_in * self.data.n_channels() * 4) as u64,
                        ));
                    });
                    let upload = DeviceTensor::host_scaled(
                        Tensor::zeros(&[1, self.data.n_channels()]),
                        (b * n * t_in) as f64,
                    );
                    dx.scope("memcpy_h2d", |dx| dx.ensure_resident(&upload));

                    // Representative signal: window `iter`, one sensor's
                    // sequence stands in for every (window, sensor) pair.
                    let t0 = (iter * t_in) % (self.data.n_steps() - t_in).max(1);
                    let mut rep_sig = Vec::with_capacity(t_in * self.data.n_channels());
                    for t in 0..t_in {
                        for c in 0..self.data.n_channels() {
                            rep_sig.push(self.data.signal.at(&[t0 + t, 0, c])?);
                        }
                    }
                    let rep_window = dx.adopt(
                        Tensor::from_vec(rep_sig, &[t_in, self.data.n_channels()])?,
                        window_scale,
                    );
                    let mut h = self.input_proj.forward(dx, &rep_window)?;

                    // Encoder.
                    let mut rep_spatial = Tensor::ones(&[rep_n, self.cfg.dim]);
                    let enc = dx.scope("encoder", |dx| -> Result<DeviceTensor> {
                        for l in 0..self.cfg.layers {
                            h = dx.scope("temporal_attention", |dx| {
                                self.temporal_attention(dx, &self.enc_attn[l], b, t_in, &h)
                            })?;
                            rep_spatial = dx.scope("spatial_gcn", |dx| {
                                self.spatial_gcn(
                                    dx,
                                    &self.enc_gcn[l],
                                    b,
                                    t_in,
                                    &rep_spatial,
                                    &rep_adj,
                                )
                            })?;
                        }
                        self.norm.forward(dx, &h).map_err(Into::into)
                    })?;

                    // CPU-side preparation of the prediction step; at
                    // small batch sizes this fixed cost leaves the GPU
                    // idle between encoder and decoder (Fig 9a).
                    dx.scope("prediction_prep", |dx| {
                        dx.host(HostWork::sequential(
                            "decoder_input_prep",
                            300_000,
                            (b * n * t_out * 4) as u64,
                        ));
                    });

                    // Decoder: two temporal attention blocks + GCN per layer.
                    let mut dec_h = enc.clone();
                    dx.scope("decoder", |dx| -> Result<()> {
                        for l in 0..self.cfg.layers {
                            dec_h = dx.scope("temporal_attention", |dx| {
                                self.temporal_attention(dx, &self.dec_attn[2 * l], b, t_out, &dec_h)
                            })?;
                            dec_h = dx.scope("temporal_attention", |dx| {
                                self.temporal_attention(
                                    dx,
                                    &self.dec_attn[2 * l + 1],
                                    b,
                                    t_out,
                                    &dec_h,
                                )
                            })?;
                            rep_spatial = dx.scope("spatial_gcn", |dx| {
                                self.spatial_gcn(
                                    dx,
                                    &self.dec_gcn[l],
                                    b,
                                    t_out,
                                    &rep_spatial,
                                    &rep_adj,
                                )
                            })?;
                        }
                        Ok(())
                    })?;

                    // Output + sync + D2H (the paper observes CUDA sync
                    // delays at larger batch sizes).
                    dx.scope("prediction", |dx| -> Result<()> {
                        let out = self.output_proj.forward(dx, &dec_h)?;
                        checksum += out.data().sum();
                        Ok(())
                    })?;
                    dx.synchronize();
                    let readback = dx.adopt(Tensor::zeros(&[1, 1]), (b * n * t_out) as f64);
                    dx.scope("memcpy_d2h", |dx| dx.download(&readback));
                    iterations += 1;
                    Ok(())
                })?;
            }
            Ok(())
        });
        run?;

        let inference_time = ex
            .scopes()
            .iter()
            .rev()
            .find(|s| s.path == "inference")
            .map(|s| s.duration())
            .unwrap_or_default();
        Ok(RunSummary::new(iterations, inference_time, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_datasets::{pems, Scale};
    use dgnn_device::{ExecMode, PlatformSpec};
    use dgnn_profile::InferenceProfile;

    fn build() -> Astgnn {
        Astgnn::new(pems(Scale::Tiny, 1), AstgnnConfig::default(), 7)
    }

    fn cfg(bs: usize) -> InferenceConfig {
        InferenceConfig::default()
            .with_batch_size(bs)
            .with_max_units(2)
    }

    #[test]
    fn runs_two_iterations() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        let s = m.run(&mut ex, &cfg(4)).unwrap();
        assert_eq!(s.iterations, 2);
        assert!(s.checksum.is_finite());
    }

    #[test]
    fn temporal_attention_exceeds_three_times_spatial_gcn() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        m.run(&mut ex, &cfg(8)).unwrap();
        let p = InferenceProfile::capture(&ex, "inference");
        // Module scopes are nested under encoder/decoder; aggregate from
        // raw scopes.
        let total_of = |name: &str| -> u64 {
            ex.scopes()
                .iter()
                .filter(|s| s.path.ends_with(name))
                .map(|s| s.duration().as_nanos())
                .sum()
        };
        let tattn = total_of("temporal_attention");
        let sgcn = total_of("spatial_gcn");
        assert!(tattn > 3 * sgcn, "temporal {tattn} vs spatial {sgcn}");
        let _ = p;
    }

    #[test]
    fn larger_batches_raise_utilization() {
        let util = |bs| {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            m.run(&mut ex, &cfg(bs)).unwrap();
            InferenceProfile::capture(&ex, "inference")
                .utilization
                .busy_fraction
        };
        let u4 = util(4);
        let u16 = util(16);
        assert!(u16 > u4, "util should grow with batch: {u4} -> {u16}");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = build();
            let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
            let s = m.run(&mut ex, &cfg(4)).unwrap();
            (s.checksum, ex.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cpu_mode_runs() {
        let mut m = build();
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::CpuOnly);
        assert!(m.run(&mut ex, &cfg(4)).is_ok());
    }
}
