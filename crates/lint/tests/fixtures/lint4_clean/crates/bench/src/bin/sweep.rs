//! LINT4 clean twin (4/4): every knob is exercised — `batch_size` by
//! name, `n_neighbors` via the `with_neighbors` builder.

fn main() {
    let cfg = InferenceConfig::default().with_neighbors(20);
    let rows = cfg.batch_size * 2;
    run(cfg, rows);
}
