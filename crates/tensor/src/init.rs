//! Seeded random tensor initialization.
//!
//! All randomness in the suite flows through [`TensorRng`] so that every
//! experiment is reproducible bit-for-bit from its seed. The generator is
//! a self-contained xoshiro256++ (seeded through SplitMix64), so the
//! workspace builds with no external crates and the stream is stable
//! across toolchains.

use crate::Tensor;

/// Weight-initialization schemes used by the DGNN layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Uniform over `[-a, a]`.
    Uniform(f32),
    /// Gaussian with the given standard deviation.
    Normal(f32),
    /// Xavier/Glorot uniform: `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// All zeros (bias default).
    Zeros,
}

/// Deterministic random number source for tensor initialization.
///
/// ```
/// use dgnn_tensor::{Initializer, TensorRng};
///
/// let mut rng = TensorRng::seed(42);
/// let w = rng.init(&[4, 3], Initializer::XavierUniform);
/// assert_eq!(w.dims(), &[4, 3]);
/// assert!(w.all_finite());
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    state: [u64; 4],
}

impl TensorRng {
    /// Creates a generator from a fixed seed.
    pub fn seed(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors; guarantees a non-zero state.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TensorRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit_f32()
    }

    /// Draws a uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli draw: true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Draws a standard-normal `f32` via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1 = self.unit_f32().max(f32::EPSILON);
        let u2 = self.unit_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Draws a uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "high 64 bits of a 128-bit product"
    )]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 for the
        // small ranges used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Initializes a tensor with the given scheme. For
    /// [`Initializer::XavierUniform`] the first dimension is treated as
    /// fan-out and the second (or 1) as fan-in.
    pub fn init(&mut self, dims: &[usize], scheme: Initializer) -> Tensor {
        let len: usize = dims.iter().product();
        let data = match scheme {
            Initializer::Zeros => vec![0.0; len],
            Initializer::Uniform(a) => (0..len).map(|_| self.uniform(-a, a)).collect(),
            Initializer::Normal(std) => (0..len).map(|_| self.normal() * std).collect(),
            Initializer::XavierUniform => {
                let fan_out = dims.first().copied().unwrap_or(1);
                let fan_in = dims.get(1).copied().unwrap_or(1);
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                (0..len).map(|_| self.uniform(-a, a)).collect()
            }
        };
        Tensor::from_vec(data, dims).expect("init produces matching length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = TensorRng::seed(7).init(&[3, 3], Initializer::Normal(1.0));
        let b = TensorRng::seed(7).init(&[3, 3], Initializer::Normal(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::seed(1).init(&[16], Initializer::Uniform(1.0));
        let b = TensorRng::seed(2).init(&[16], Initializer::Uniform(1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_bound_respected() {
        let w = TensorRng::seed(3).init(&[10, 20], Initializer::XavierUniform);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zeros_scheme_is_zero() {
        let w = TensorRng::seed(4).init(&[5], Initializer::Zeros);
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = TensorRng::seed(5);
        let samples: Vec<f32> = (0..4000).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut rng = TensorRng::seed(6);
        for _ in 0..10_000 {
            let f = rng.unit_f32();
            assert!((0.0..1.0).contains(&f));
            let d = rng.unit_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn index_covers_range_without_bias_holes() {
        let mut rng = TensorRng::seed(8);
        let mut counts = [0usize; 7];
        for _ in 0..7_000 {
            counts[rng.index(7)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "{counts:?}");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = TensorRng::seed(9);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
