//! Regenerates Figure 6: GPU memory usage and utilization.
//!
//! * panel a — TGAT vs sampled-neighbor count (both rise);
//! * panel b — TGAT vs mini-batch size (utilization flat, memory rises);
//! * panel c — TGN vs batch size (utilization falls, memory rises);
//! * panel d — MolDGNN vs batch size (utilization flat, memory rises).
//!
//! Usage: `fig6_mem_util [--scale tiny|small|full] [--panel a|b|c|d]`

use dgnn_bench::{build_model, flag_value, measure, parse_opts};
use dgnn_device::ExecMode;
use dgnn_models::InferenceConfig;
use dgnn_profile::TextTable;

fn main() {
    let opts = parse_opts();
    let panel = flag_value(&opts.rest, "--panel");
    let run_panel = |p: &str| panel.is_none() || panel == Some(p);

    if run_panel("a") {
        let mut t = TextTable::new(
            "Fig 6a — TGAT: utilization & memory vs sampled neighbors (bs=200)",
            &["n_neighbors", "gpu util", "gpu mem (MiB)"],
        );
        for k in [10usize, 20, 50, 100, 200] {
            let mut m = build_model("tgat", opts.scale, opts.seed);
            let cfg = InferenceConfig::default()
                .with_batch_size(200)
                .with_neighbors(k)
                .with_max_units(3);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            t.row(&[
                k.to_string(),
                format!("{:.2}%", r.profile.utilization.busy_fraction * 100.0),
                format!("{:.1}", r.profile.gpu_peak_mib()),
            ]);
        }
        print!("{}", t.render());
    }

    if run_panel("b") {
        let mut t = TextTable::new(
            "Fig 6b — TGAT: utilization & memory vs mini-batch size (k=20)",
            &["batch size", "gpu util", "gpu mem (MiB)"],
        );
        for bs in [200usize, 1_000, 2_000, 4_000] {
            let mut m = build_model("tgat", opts.scale, opts.seed);
            let cfg = InferenceConfig::default()
                .with_batch_size(bs)
                .with_neighbors(20)
                .with_max_units(3);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            t.row(&[
                bs.to_string(),
                format!("{:.2}%", r.profile.utilization.busy_fraction * 100.0),
                format!("{:.1}", r.profile.gpu_peak_mib()),
            ]);
        }
        print!("{}", t.render());
    }

    if run_panel("c") {
        let mut t = TextTable::new(
            "Fig 6c — TGN: utilization & memory vs batch size",
            &["batch size", "gpu util", "gpu mem (MiB)"],
        );
        for bs in [1_024usize, 4_096, 16_384, 65_536] {
            let mut m = build_model("tgn", opts.scale, opts.seed);
            let cfg = InferenceConfig::default()
                .with_batch_size(bs)
                .with_neighbors(10)
                .with_max_units(2);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            t.row(&[
                bs.to_string(),
                format!("{:.2}%", r.profile.utilization.busy_fraction * 100.0),
                format!("{:.1}", r.profile.gpu_peak_mib()),
            ]);
        }
        print!("{}", t.render());
    }

    if run_panel("d") {
        let mut t = TextTable::new(
            "Fig 6d — MolDGNN: utilization & memory vs batch size",
            &["batch size", "gpu util", "gpu mem (MiB)"],
        );
        for bs in [8usize, 32, 128, 512, 2_048, 8_192] {
            let mut m = build_model("moldgnn", opts.scale, opts.seed);
            let cfg = InferenceConfig::default()
                .with_batch_size(bs)
                .with_max_units(1);
            let r = measure(m.as_mut(), ExecMode::Gpu, &cfg);
            t.row(&[
                bs.to_string(),
                format!("{:.2}%", r.profile.utilization.busy_fraction * 100.0),
                format!("{:.1}", r.profile.gpu_peak_mib()),
            ]);
        }
        print!("{}", t.render());
    }
}
