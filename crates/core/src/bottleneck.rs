//! Automatic bottleneck classification — the paper's four classes.

use std::fmt;

use dgnn_device::{DurationNs, EventCategory, Place, Timeline};

/// The four DGNN hardware bottlenecks of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BottleneckKind {
    /// §4.1 — serialized stages and event ordering leave the GPU idle.
    TemporalDependency,
    /// §4.2 — CPU-side preprocessing (sampling) starves the GPU.
    WorkloadImbalance,
    /// §4.3 — CPU↔GPU transfers dominate.
    DataMovement,
    /// §4.4 — warm-up (context/model-init/allocation) dominates.
    GpuWarmup,
}

impl fmt::Display for BottleneckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BottleneckKind::TemporalDependency => "temporal data dependency",
            BottleneckKind::WorkloadImbalance => "workload imbalance (CPU preprocessing)",
            BottleneckKind::DataMovement => "data movement (CPU<->GPU)",
            BottleneckKind::GpuWarmup => "GPU warm-up",
        };
        f.write_str(s)
    }
}

/// One detected bottleneck with a severity score and evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckFinding {
    /// Which bottleneck class fired.
    pub kind: BottleneckKind,
    /// Severity in `[0, 1]`: how far past the threshold the metric is.
    pub severity: f64,
    /// Human-readable evidence string.
    pub evidence: String,
}

/// Detection thresholds. Defaults follow the paper's qualitative bars
/// (e.g. "GPU utilization below a few percent", "sampling takes most of
/// the inference time").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// GPU utilization below this flags temporal dependency.
    pub max_healthy_utilization: f64,
    /// Host share of wall time above this flags workload imbalance.
    pub max_healthy_host_share: f64,
    /// Transfer share of wall time above this flags data movement.
    pub max_healthy_transfer_share: f64,
    /// Warm-up share of total time above this flags warm-up.
    pub max_healthy_warmup_share: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_healthy_utilization: 0.10,
            max_healthy_host_share: 0.40,
            max_healthy_transfer_share: 0.25,
            max_healthy_warmup_share: 0.30,
        }
    }
}

/// Classifies a profiled run against the four bottleneck classes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BottleneckClassifier {
    thresholds: Thresholds,
}

impl BottleneckClassifier {
    /// Classifier with default thresholds.
    pub fn new() -> Self {
        BottleneckClassifier::default()
    }

    /// Classifier with custom thresholds.
    pub fn with_thresholds(thresholds: Thresholds) -> Self {
        BottleneckClassifier { thresholds }
    }

    /// Analyzes `timeline` over the measurement window `[start, end)`
    /// (typically the inference root scope, excluding one-time warm-up)
    /// together with `total_span` (including warm-up) and returns the
    /// findings, most severe first.
    pub fn classify(
        &self,
        timeline: &Timeline,
        start: DurationNs,
        end: DurationNs,
        total_span: DurationNs,
    ) -> Vec<BottleneckFinding> {
        let mut findings = Vec::new();
        let window = end.saturating_sub(start).as_nanos().max(1) as f64;
        let th = &self.thresholds;

        // Temporal dependency shows up two ways: idle gaps between
        // serialized stages (low kernel-resident utilization, the
        // nvidia-smi metric) or wall-to-wall launch-bound tiny kernels
        // (low occupancy-weighted utilization).
        let busy = timeline.gpu_busy_fraction(start, end);
        let weighted = timeline.gpu_utilization(start, end);
        let util = busy.min(weighted * 4.0);
        let gpu_events = timeline
            .events()
            .iter()
            .filter(|e| e.category.is_gpu_compute() && e.start >= start && e.end <= end)
            .count();
        if gpu_events > 0 && util < th.max_healthy_utilization {
            findings.push(BottleneckFinding {
                kind: BottleneckKind::TemporalDependency,
                severity: (1.0 - util / th.max_healthy_utilization).clamp(0.0, 1.0),
                evidence: format!(
                    "GPU utilization {:.2}% over the inference window ({} kernels, serialized)",
                    util * 100.0,
                    gpu_events
                ),
            });
        }

        // Workload imbalance: host time share in the window.
        let host: u64 = timeline
            .events()
            .iter()
            .filter(|e| e.place == Place::Cpu && e.category == EventCategory::Host)
            .map(|e| e.overlap(start, end).as_nanos())
            .sum();
        let host_share = host as f64 / window;
        if host_share > th.max_healthy_host_share {
            findings.push(BottleneckFinding {
                kind: BottleneckKind::WorkloadImbalance,
                severity: ((host_share - th.max_healthy_host_share)
                    / (1.0 - th.max_healthy_host_share))
                    .clamp(0.0, 1.0),
                evidence: format!(
                    "CPU preprocessing occupies {:.1}% of inference time; GPU waits",
                    host_share * 100.0
                ),
            });
        }

        // Data movement: PCIe share in the window.
        let pcie: u64 = timeline
            .events()
            .iter()
            .filter(|e| e.place == Place::Pcie)
            .map(|e| e.overlap(start, end).as_nanos())
            .sum();
        let pcie_share = pcie as f64 / window;
        if pcie_share > th.max_healthy_transfer_share {
            findings.push(BottleneckFinding {
                kind: BottleneckKind::DataMovement,
                severity: ((pcie_share - th.max_healthy_transfer_share)
                    / (1.0 - th.max_healthy_transfer_share))
                    .clamp(0.0, 1.0),
                evidence: format!(
                    "CPU<->GPU transfers occupy {:.1}% of inference time ({} bytes moved)",
                    pcie_share * 100.0,
                    timeline.transfer_bytes(None)
                ),
            });
        }

        // Warm-up: share of the *total* span including one-time costs.
        let warmup = timeline.category_time(EventCategory::is_warmup);
        let warmup_share = warmup.as_nanos() as f64 / total_span.as_nanos().max(1) as f64;
        if warmup_share > th.max_healthy_warmup_share {
            findings.push(BottleneckFinding {
                kind: BottleneckKind::GpuWarmup,
                severity: ((warmup_share - th.max_healthy_warmup_share)
                    / (1.0 - th.max_healthy_warmup_share))
                    .clamp(0.0, 1.0),
                evidence: format!(
                    "warm-up is {:.1}% of end-to-end time ({:.1} ms)",
                    warmup_share * 100.0,
                    warmup.as_millis_f64()
                ),
            });
        }

        findings.sort_by(|a, b| b.severity.total_cmp(&a.severity));
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_device::{ExecMode, Executor, HostWork, KernelDesc, PlatformSpec, TransferDir};

    #[test]
    fn serialized_tiny_kernels_flag_temporal_dependency() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let start = ex.now();
        for _ in 0..100 {
            ex.launch(KernelDesc::gemm("tiny", 16, 16, 16));
        }
        let findings =
            BottleneckClassifier::new().classify(ex.timeline(), start, ex.now(), ex.now());
        assert!(findings
            .iter()
            .any(|f| f.kind == BottleneckKind::TemporalDependency));
    }

    #[test]
    fn host_dominated_runs_flag_workload_imbalance() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let start = ex.now();
        for _ in 0..10 {
            ex.host(HostWork::irregular("sampling", 2_000_000, 10 << 20));
            ex.launch(KernelDesc::gemm("k", 64, 64, 64));
        }
        let findings =
            BottleneckClassifier::new().classify(ex.timeline(), start, ex.now(), ex.now());
        assert!(findings
            .iter()
            .any(|f| f.kind == BottleneckKind::WorkloadImbalance));
    }

    #[test]
    fn transfer_dominated_runs_flag_data_movement() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let start = ex.now();
        for _ in 0..10 {
            ex.transfer(TransferDir::H2D, 100 << 20);
            ex.launch(KernelDesc::gemm("k", 64, 64, 64));
            ex.transfer(TransferDir::D2H, 100 << 20);
        }
        let findings =
            BottleneckClassifier::new().classify(ex.timeline(), start, ex.now(), ex.now());
        assert!(findings
            .iter()
            .any(|f| f.kind == BottleneckKind::DataMovement));
        let dm = findings
            .iter()
            .find(|f| f.kind == BottleneckKind::DataMovement)
            .unwrap();
        assert!(dm.evidence.contains("bytes"));
    }

    #[test]
    fn warmup_dominates_short_runs() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.model_init(1 << 20, 10);
        let start = ex.now();
        ex.launch(KernelDesc::gemm("k", 64, 64, 64));
        let findings =
            BottleneckClassifier::new().classify(ex.timeline(), start, ex.now(), ex.now());
        assert!(findings.iter().any(|f| f.kind == BottleneckKind::GpuWarmup));
    }

    #[test]
    fn healthy_run_produces_no_findings() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.ensure_context();
        let start = ex.now();
        for _ in 0..10 {
            ex.launch(KernelDesc::gemm("big", 4096, 4096, 4096));
        }
        let end = ex.now();
        // Measure only the kernel window and pretend total span is huge so
        // warm-up share is negligible.
        let findings = BottleneckClassifier::new().classify(
            ex.timeline(),
            start,
            end,
            DurationNs::from_secs_f64(10_000.0),
        );
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn severities_are_sorted_and_bounded() {
        let mut ex = Executor::new(PlatformSpec::default(), ExecMode::Gpu);
        ex.model_init(1 << 24, 50);
        let start = ex.now();
        for _ in 0..5 {
            ex.host(HostWork::irregular("sampling", 5_000_000, 50 << 20));
            ex.transfer(TransferDir::H2D, 200 << 20);
            ex.launch(KernelDesc::gemm("tiny", 8, 8, 8));
        }
        let findings =
            BottleneckClassifier::new().classify(ex.timeline(), start, ex.now(), ex.now());
        assert!(findings.len() >= 2);
        for w in findings.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
        assert!(findings.iter().all(|f| (0.0..=1.0).contains(&f.severity)));
    }
}
