//! GPU warm-up cost model (Section 4.4 of the paper).
//!
//! The paper decomposes warm-up into (i) lazy CUDA context creation,
//! (ii) model initialization — weight upload over PCIe, per-tensor
//! allocation/registration and stream capture — and (iii) per-run
//! activation allocation that grows with batch size (Table 2).

use crate::spec::{CpuSpec, GpuSpec, PcieSpec};
use crate::time::DurationNs;

/// Computes warm-up durations from the platform specification.
///
/// Stateless; methods are associated functions grouped here for
/// discoverability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmupModel;

impl WarmupModel {
    /// One-time lazy CUDA context initialization.
    pub fn context(gpu: &GpuSpec) -> DurationNs {
        DurationNs::from_nanos(gpu.context_init_ns)
    }

    /// GPU model initialization: fixed stream-capture/plan cost, plus the
    /// weight upload over PCIe, plus a per-parameter-tensor allocation
    /// and registration cost.
    #[expect(clippy::cast_possible_truncation, reason = "rounded ns count fits u64")]
    pub fn model_init_gpu(
        gpu: &GpuSpec,
        pcie: &PcieSpec,
        weight_bytes: u64,
        n_param_tensors: u64,
    ) -> DurationNs {
        let upload = pcie.latency_ns as f64 * n_param_tensors as f64
            + weight_bytes as f64 / pcie.bandwidth * 1e9;
        DurationNs::from_nanos(
            gpu.model_init_base_ns
                + gpu.model_init_per_tensor_ns * n_param_tensors
                + upload.round() as u64,
        )
    }

    /// CPU model initialization: just materializing the weights in host
    /// memory. This is the denominator of the paper's "model
    /// initialization on GPU takes 40×–937× compared to CPU" claim.
    #[expect(clippy::cast_possible_truncation, reason = "rounded ns count fits u64")]
    pub fn model_init_cpu(cpu: &CpuSpec, weight_bytes: u64, n_param_tensors: u64) -> DurationNs {
        let copy = weight_bytes as f64 / cpu.mem_bw * 1e9;
        DurationNs::from_nanos(cpu.model_init_per_tensor_ns * n_param_tensors + copy.round() as u64)
    }

    /// Per-run activation allocation warm-up: constant base plus a term
    /// proportional to the peak activation footprint. Reproduces Table 2's
    /// growth of warm-up share with batch size.
    #[expect(clippy::cast_possible_truncation, reason = "rounded ns count fits u64")]
    pub fn alloc(gpu: &GpuSpec, activation_bytes: u64) -> DurationNs {
        DurationNs::from_nanos(
            gpu.alloc_base_ns + (gpu.alloc_per_byte_ns * activation_bytes as f64).round() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlatformSpec;

    #[test]
    fn gpu_model_init_dwarfs_cpu() {
        let p = PlatformSpec::default();
        let weights = 4 * 1024 * 1024; // 4 MiB of parameters
        let gpu = WarmupModel::model_init_gpu(&p.gpu, &p.pcie, weights, 20);
        let cpu = WarmupModel::model_init_cpu(&p.cpu, weights, 20);
        let ratio = gpu.as_nanos() as f64 / cpu.as_nanos() as f64;
        assert!(ratio > 30.0, "gpu/cpu init ratio {ratio}");
    }

    #[test]
    fn alloc_warmup_grows_with_footprint() {
        let p = PlatformSpec::default();
        let small = WarmupModel::alloc(&p.gpu, 1 << 20);
        let large = WarmupModel::alloc(&p.gpu, 1 << 27);
        assert!(large > small);
        // The constant base keeps small-batch warm-up non-trivial.
        assert!(small.as_nanos() >= p.gpu.alloc_base_ns);
    }

    #[test]
    fn context_cost_is_seconds_scale() {
        let p = PlatformSpec::default();
        let c = WarmupModel::context(&p.gpu);
        assert!(c.as_secs_f64() > 1.0);
    }

    #[test]
    fn model_init_scales_with_tensor_count() {
        let p = PlatformSpec::default();
        let few = WarmupModel::model_init_gpu(&p.gpu, &p.pcie, 1024, 2);
        let many = WarmupModel::model_init_gpu(&p.gpu, &p.pcie, 1024, 200);
        assert!(many > few);
    }
}
